"""The MAL intermediate representation.

MAL (MonetDB Assembly Language) is "the primary textual interface to
the MonetDB kernel" and the target language of every query compiler
front-end (paper, Section 3).  A MAL program is a linear sequence of
instructions

    (r1, r2, ...) := module.function(arg1, arg2, ...);

over single-assignment variables.  We reproduce the IR faithfully
enough for the paper's pipeline: typed variables, constant arguments,
a pretty printer matching MAL surface syntax, and helpers the
optimizer passes rely on (def/use chains, side-effect classification).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.errors import MALError
from repro.gdk.atoms import Atom


@dataclass(frozen=True)
class MALType:
    """A MAL type: a scalar atom, a BAT of an atom, or ``any``."""

    kind: str  # "scalar" | "bat" | "any"
    atom: Atom | None = None

    def __str__(self) -> str:
        if self.kind == "bat":
            atom = self.atom.value if self.atom else "any"
            return f"bat[:oid,:{atom}]"
        if self.kind == "scalar" and self.atom:
            return f":{self.atom.value}"
        return ":any"


def scalar_type(atom: Atom) -> MALType:
    """MAL type of a scalar of *atom*."""
    return MALType("scalar", atom)


def bat_type(atom: Atom | None = None) -> MALType:
    """MAL type of a void-headed BAT with the given tail atom."""
    return MALType("bat", atom)


ANY = MALType("any")


@dataclass(frozen=True)
class Constant:
    """A literal argument embedded in an instruction."""

    value: Any
    atom: Atom | None = None

    def __str__(self) -> str:
        if self.value is None:
            return "nil"
        if isinstance(self.value, str):
            escaped = self.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        if isinstance(self.value, bool):
            return "true" if self.value else "false"
        return repr(self.value)


@dataclass(frozen=True)
class Param:
    """A late-bound statement parameter embedded in an instruction.

    ``key`` names the binding: an ``int`` for positional ``?`` markers,
    a ``str`` for ``:name`` markers.  The interpreter resolves the
    operand against the execution's parameter bindings, so one compiled
    program (a prepared statement) re-executes under fresh values
    without re-entering the compiler.
    """

    key: Any  # int (positional) | str (named)
    atom: Atom | None = None

    def __str__(self) -> str:
        return f"?{self.key}" if isinstance(self.key, int) else f":{self.key}"


@dataclass(frozen=True)
class Var:
    """A reference to a MAL variable by name."""

    name: str

    def __str__(self) -> str:
        return self.name


Argument = Var | Constant | Param

#: (module, function) pairs whose execution has observable side effects
#: (catalog/storage mutation, result delivery) — never eliminated.
SIDE_EFFECT_OPS = {
    ("sql", "append"),
    ("sql", "update"),
    ("sql", "delete"),
    ("sql", "clear_table"),
    ("sql", "resultSet"),
    ("sql", "createArray"),
    ("sql", "createTable"),
    ("sql", "dropObject"),
    ("sql", "alterDimension"),
    ("sql", "setVariable"),
    ("sql", "affected"),
    ("language", "raise"),
    ("language", "free"),
}

#: the subset of :data:`SIDE_EFFECT_OPS` that mutates catalog/storage
#: state.  Their first argument is always the (constant) object name;
#: the engine uses this to route a program through a transaction and to
#: track which objects the transaction wrote (first-committer-wins
#: conflict detection at commit).
WRITE_OPS = {
    ("sql", "append"),
    ("sql", "update"),
    ("sql", "delete"),
    ("sql", "clear_table"),
    ("sql", "createArray"),
    ("sql", "createTable"),
    ("sql", "dropObject"),
    ("sql", "alterDimension"),
}


@dataclass
class Instruction:
    """One MAL statement: results := module.function(args)."""

    module: str
    function: str
    results: list[str]
    args: list[Argument]
    comment: str = ""

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.args)
        call = f"{self.module}.{self.function}({args});"
        if self.results:
            lhs = ", ".join(self.results)
            if len(self.results) > 1:
                lhs = f"({lhs})"
            call = f"{lhs} := {call}"
        if self.comment:
            call = f"{call}  # {self.comment}"
        return call

    @property
    def has_side_effects(self) -> bool:
        """True when the instruction must survive dead-code elimination."""
        return (self.module, self.function) in SIDE_EFFECT_OPS

    def used_vars(self) -> list[str]:
        """Names of variables read by this instruction."""
        return [a.name for a in self.args if isinstance(a, Var)]

    def signature(self) -> tuple:
        """Hashable identity used by common-term elimination."""
        key_args: list[Any] = []
        for arg in self.args:
            if isinstance(arg, Var):
                key_args.append(("v", arg.name))
            elif isinstance(arg, Param):
                # Same key ⇒ same runtime value, so CSE stays sound.
                key_args.append(("p", arg.key))
            else:
                key_args.append(("c", arg.atom, arg.value))
        return (self.module, self.function, tuple(key_args))


class MALProgram:
    """A typed, single-assignment MAL program."""

    def __init__(self, name: str = "user.main"):
        self.name = name
        self.instructions: list[Instruction] = []
        self.types: dict[str, MALType] = {}
        self._counter = itertools.count()
        #: name -> variable holding a query result column (set by malgen).
        self.result_columns: list[tuple[str, str]] = []
        #: metadata describing the result shape ("table" | "array").
        self.result_kind: str = "table"
        #: names of variables that must survive garbage collection.
        self.pinned: set[str] = set()
        #: bind-parameter keys of the source statement in occurrence
        #: order (set by the connection; drives arity checking).
        self.param_keys: tuple = ()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def fresh(self, mtype: MALType, prefix: str = "X") -> str:
        """Allocate a new variable name of the given type."""
        name = f"{prefix}_{next(self._counter)}"
        self.types[name] = mtype
        return name

    def emit(
        self,
        module: str,
        function: str,
        args: Iterable[Any],
        result_types: Iterable[MALType] = (),
        comment: str = "",
        prefix: str = "X",
    ) -> list[str]:
        """Append an instruction; auto-wrap raw Python literals as constants.

        Returns the freshly allocated result variable names.
        """
        wrapped: list[Argument] = []
        for arg in args:
            if isinstance(arg, (Var, Constant, Param)):
                wrapped.append(arg)
            elif isinstance(arg, str) and arg in self.types:
                wrapped.append(Var(arg))
            else:
                wrapped.append(Constant(arg))
        results = [self.fresh(t, prefix) for t in result_types]
        self.instructions.append(Instruction(module, function, results, wrapped, comment))
        return results

    def emit1(
        self,
        module: str,
        function: str,
        args: Iterable[Any],
        result_type: MALType,
        comment: str = "",
        prefix: str = "X",
    ) -> str:
        """Like :meth:`emit` for single-result instructions."""
        return self.emit(module, function, args, [result_type], comment, prefix)[0]

    def pin(self, name: str) -> None:
        """Protect a variable from garbage collection / dead-code removal."""
        self.pinned.add(name)

    def type_of(self, name: str) -> MALType:
        """Declared type of a variable."""
        try:
            return self.types[name]
        except KeyError:
            raise MALError(f"unknown MAL variable {name!r}") from None

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def to_text(self) -> str:
        """Render MAL surface syntax (used by EXPLAIN and tests)."""
        lines = [f"function {self.name}();"]
        for instruction in self.instructions:
            lines.append(f"    {instruction}")
        lines.append(f"end {self.name};")
        return "\n".join(lines)

    def defined_vars(self) -> set[str]:
        """All variables assigned anywhere in the program."""
        out: set[str] = set()
        for instruction in self.instructions:
            out.update(instruction.results)
        return out

    def write_targets(self) -> frozenset[str]:
        """Lowercased names of the catalog objects this program mutates.

        Empty for pure queries; the engine runs any program with a
        non-empty set inside a (possibly implicit) transaction.
        """
        targets: set[str] = set()
        for instruction in self.instructions:
            if (instruction.module, instruction.function) not in WRITE_OPS:
                continue
            first = instruction.args[0] if instruction.args else None
            if isinstance(first, Constant) and isinstance(first.value, str):
                targets.add(first.value.lower())
        return frozenset(targets)

    # ------------------------------------------------------------------
    # dataflow graph
    # ------------------------------------------------------------------
    def dependencies(self) -> list[set[int]]:
        """Def/use dependency edges: ``deps[i]`` holds the indexes of the
        instructions that must complete before instruction *i* may run.

        Three edge sources, mirroring MonetDB's dataflow admission rules:

        * data edges — the producer of every variable an instruction
          reads (``language.free`` pseudo-ops additionally read the
          variables they release);
        * consumer edges into ``language.free`` — a variable may only be
          released once every reader has finished;
        * side-effect barriers — instructions in
          :data:`SIDE_EFFECT_OPS` order against *everything* before
          them, and everything after orders against the barrier, so
          catalog mutation and result delivery keep program order.
        """
        producer: dict[str, int] = {}
        consumers: dict[str, list[int]] = {}
        deps: list[set[int]] = []
        last_barrier = -1
        for index, instruction in enumerate(self.instructions):
            edges: set[int] = set()
            is_free = (
                instruction.module == "language"
                and instruction.function == "free"
            )
            if is_free:
                for arg in instruction.args:
                    if isinstance(arg, Constant) and isinstance(arg.value, str):
                        if arg.value in producer:
                            edges.add(producer[arg.value])
                        edges.update(consumers.get(arg.value, ()))
            for used in instruction.used_vars():
                if used in producer:
                    edges.add(producer[used])
                consumers.setdefault(used, []).append(index)
            # language.free is nominally side-effecting (it must survive
            # dead-code elimination) but releasing an environment entry
            # only needs its precise producer/consumer edges — treating
            # it as a barrier would serialize the whole dataflow graph.
            if instruction.has_side_effects and not is_free:
                edges.update(range(index))
                last_barrier = index
            elif last_barrier >= 0:
                edges.add(last_barrier)
            edges.discard(index)
            deps.append(edges)
            for result in instruction.results:
                producer[result] = index
        return deps

    def topological_levels(self) -> list[list[int]]:
        """Instruction indexes grouped into dataflow levels.

        Level *k* holds every instruction whose longest dependency chain
        has length *k*; instructions within one level are mutually
        independent and may execute concurrently.
        """
        deps = self.dependencies()
        level_of: list[int] = []
        levels: list[list[int]] = []
        for index, edges in enumerate(deps):
            level = 1 + max((level_of[d] for d in edges), default=-1)
            level_of.append(level)
            while len(levels) <= level:
                levels.append([])
            levels[level].append(index)
        return levels

    def validate(self) -> None:
        """Check single-assignment and def-before-use properties."""
        defined: set[str] = set()
        for instruction in self.instructions:
            for used in instruction.used_vars():
                if used not in defined:
                    raise MALError(
                        f"variable {used!r} used before definition in {instruction}"
                    )
            for result in instruction.results:
                if result in defined:
                    raise MALError(f"variable {result!r} assigned twice")
                if result not in self.types:
                    raise MALError(f"variable {result!r} has no declared type")
                defined.add(result)
