"""Static analysis over MAL programs.

The package provides the plan verifier wired into the optimizer
pipeline (``REPRO_VERIFY_PLANS=1``), the op-signature registry it
checks against, the shared def/use analysis the ``dead_code`` pass is
built on, and the EXPLAIN annotation helpers (stable plan digest +
fragment-group summary).

New MAL ops declare their signature at registration time::

    @mal_op("algebra", "select", sig="bat(bit), cand? -> cand")

See :mod:`repro.mal.analysis.signatures` for the grammar and
:mod:`repro.mal.analysis.verifier` for the checks performed.
"""

from repro.mal.analysis.defuse import def_use, live_instructions
from repro.mal.analysis.explain import annotate_program, fragment_groups, plan_digest
from repro.mal.analysis.signatures import (
    OpSignature,
    check_completeness,
    signature_table,
)
from repro.mal.analysis.verifier import VerificationReport, verify_program

__all__ = [
    "OpSignature",
    "VerificationReport",
    "annotate_program",
    "check_completeness",
    "def_use",
    "fragment_groups",
    "live_instructions",
    "plan_digest",
    "signature_table",
    "verify_program",
]
