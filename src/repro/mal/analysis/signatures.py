"""The op-signature registry: grammar, parser, completeness check.

Each MAL operator declares a one-line signature at registration time
(``@mal_op(..., sig="bat, scalar, str, cand? -> cand")``).  The
grammar:

* the operand list and the result list are separated by ``->``; either
  may be empty (``language.free`` produces nothing);
* operand kinds::

      any      anything at all
      val      a BAT or a scalar (element-wise ops accept both)
      bat      any BAT
      bat(T)   a BAT whose declared tail atom is T (e.g. ``bat(bit)``)
      cand     a candidate list: oid BAT, provably sorted + unique
      oids     an oid BAT (duplicates allowed — join results)
      scalar   a scalar value (constant, Param or calc result)
      int/str/bool   a scalar of that shape
      json     a constant string that parses as JSON
      name     a constant string naming a catalog object or variable

* an operand may carry a modifier: ``?`` (optional), ``*`` (zero or
  more), ``+`` (one or more);
* result kinds are ``any``/``bat``/``bat(T)``/``cand``/``oids``/
  ``scalar`` — they both constrain the declared type of the result
  variable and seed the provenance lattice (a ``cand`` result may feed
  ``cand`` operands downstream, a plain ``oids`` result may not).

The side-effect class (``none``/``read``/``write``/``result``/``free``)
is cross-checked against ``WRITE_OPS``/``SIDE_EFFECT_OPS`` so the
declaration can never drift from what the interpreter barriers on.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.gdk.atoms import Atom
from repro.mal.program import SIDE_EFFECT_OPS, WRITE_OPS

OPERAND_KINDS = frozenset(
    {"any", "val", "bat", "cand", "oids", "scalar", "int", "str", "bool", "json", "name"}
)
RESULT_KINDS = frozenset({"any", "bat", "cand", "oids", "scalar"})
EFFECTS = frozenset({"none", "read", "write", "result", "free"})


@dataclass(frozen=True)
class Operand:
    """One operand slot: kind, optional atom constraint, multiplicity."""

    kind: str
    atom: Atom | None = None
    optional: bool = False
    variadic: bool = False
    min_count: int = 1

    def __str__(self) -> str:
        text = self.kind if self.atom is None else f"{self.kind}({self.atom.value})"
        if self.variadic:
            return text + ("*" if self.min_count == 0 else "+")
        return text + ("?" if self.optional else "")


@dataclass(frozen=True)
class OpSignature:
    """The parsed static signature of one MAL operator."""

    module: str
    function: str
    operands: tuple[Operand, ...]
    results: tuple[Operand, ...]
    effect: str

    def __str__(self) -> str:
        left = ", ".join(str(o) for o in self.operands)
        right = ", ".join(str(r) for r in self.results)
        return f"{self.module}.{self.function}: {left} -> {right}"


def _parse_token(module: str, function: str, token: str, result: bool) -> Operand:
    token = token.strip()
    optional = variadic = False
    min_count = 1
    if token.endswith("?"):
        optional, token = True, token[:-1]
    elif token.endswith("*"):
        variadic, min_count, token = True, 0, token[:-1]
    elif token.endswith("+"):
        variadic, token = True, token[:-1]
    atom = None
    if token.endswith(")") and "(" in token:
        token, _, atom_text = token[:-1].partition("(")
        try:
            atom = Atom(atom_text)
        except ValueError:
            raise ValueError(
                f"{module}.{function}: unknown atom {atom_text!r} in signature"
            ) from None
    allowed = RESULT_KINDS if result else OPERAND_KINDS
    if token not in allowed:
        raise ValueError(
            f"{module}.{function}: unknown {'result' if result else 'operand'} "
            f"kind {token!r} in signature"
        )
    if result and (optional or variadic):
        raise ValueError(f"{module}.{function}: result kinds take no modifiers")
    return Operand(token, atom, optional, variadic, min_count)


def parse_signature(module: str, function: str, sig: str, effect: str) -> OpSignature:
    """Parse one declaration into an :class:`OpSignature`."""
    if effect not in EFFECTS:
        raise ValueError(f"{module}.{function}: unknown effect class {effect!r}")
    if "->" not in sig:
        raise ValueError(f"{module}.{function}: signature {sig!r} lacks '->'")
    left, _, right = sig.partition("->")
    operands = tuple(
        _parse_token(module, function, tok, result=False)
        for tok in left.split(",")
        if tok.strip()
    )
    results = tuple(
        _parse_token(module, function, tok, result=True)
        for tok in right.split(",")
        if tok.strip()
    )
    for operand in operands[:-1]:
        if operand.variadic:
            raise ValueError(
                f"{module}.{function}: only the last operand may be variadic"
            )
    key = (module, function)
    side_effect = key in SIDE_EFFECT_OPS
    if side_effect and effect == "none":
        raise ValueError(
            f"{module}.{function} is in SIDE_EFFECT_OPS but declares effect 'none'"
        )
    if not side_effect and effect in ("write", "result", "free"):
        raise ValueError(
            f"{module}.{function} declares effect {effect!r} but is not in "
            "SIDE_EFFECT_OPS"
        )
    if (key in WRITE_OPS) != (effect == "write"):
        raise ValueError(
            f"{module}.{function}: effect {effect!r} disagrees with WRITE_OPS"
        )
    return OpSignature(module, function, operands, results, effect)


@functools.lru_cache(maxsize=1)
def signature_table() -> dict[tuple[str, str], OpSignature]:
    """Every declared signature, parsed and effect-checked."""
    from repro.mal.modules import SIGNATURE_DECLS, load_all

    load_all()
    table = {}
    for (module, function), (sig, effect) in SIGNATURE_DECLS.items():
        table[(module, function)] = parse_signature(module, function, sig, effect)
    return table


def check_completeness() -> list[str]:
    """Registered implementations lacking a signature declaration.

    Empty means every interpreted op is statically verifiable; the CI
    lint leg asserts exactly that (parse errors in declarations raise
    here as well).
    """
    from repro.mal.modules import REGISTRY, load_all

    load_all()
    table = signature_table()
    return sorted(
        f"{module}.{function}"
        for module, function in REGISTRY
        if (module, function) not in table
    )
