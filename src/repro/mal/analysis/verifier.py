"""The MAL plan verifier.

One linear scan over the program checks, per instruction:

* a signature is registered for the op and the arguments match it
  (arity, operand kinds, atom constraints, JSON constants parse);
* single assignment and def-before-use, with every result variable
  carrying a declared type whose kind agrees with the signature;
* no use after ``language.free`` (the static mirror of the
  interpreter's free-after-last-reader discipline), no double free, no
  free of a pinned variable;
* candidate-list provenance: an operand declared ``cand`` only accepts
  variables produced by candidate-generating ops (select family, dense
  sequences, ``bat.mergecand``, group extents, ...), never e.g. a join
  result whose oids may repeat;
* side-effect ordering: writes and result delivery appear in a sane
  barrier order (no catalog write after the result set is emitted, at
  most one result set);
* the fragment invariants of :mod:`repro.mal.analysis.invariants`.

``verify_program`` raises :class:`~repro.errors.PlanVerificationError`
naming the phase (optimizer pass) and offending instruction, and
returns a :class:`VerificationReport` on success.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.errors import PlanVerificationError
from repro.gdk.atoms import Atom
from repro.mal.analysis.invariants import FragmentState
from repro.mal.analysis.signatures import Operand, OpSignature, signature_table
from repro.mal.program import Constant, Instruction, MALProgram, Param, Var


@dataclass
class VerificationReport:
    """Summary of one successful verification."""

    phase: str
    instructions: int
    checked_ops: int
    frees: int
    fragment_groups: list[tuple[str, int]] = field(default_factory=list)


#: var-kind lattice values tracked per variable.
_CAND = "cand"
_OIDS = "oids"
_BAT = "bat"
_SCALAR = "scalar"

#: ops whose bat-kind result inherits the provenance of their first
#: argument (a slice of a sorted/unique list stays sorted/unique).
_KIND_PRESERVING = {("mat", "partition"), ("bat", "slice")}


class _Checker:
    def __init__(self, program: MALProgram, phase: str):
        self.program = program
        self.phase = phase
        self.table = signature_table()
        self.defined: dict[str, int] = {}
        self.freed: dict[str, int] = {}
        self.var_kinds: dict[str, str | None] = {}
        self.index = 0
        self.instruction: Instruction | None = None
        self.frees = 0
        self.result_delivered = False
        self.fragments = FragmentState(self.fail)

    # ------------------------------------------------------------------
    def fail(self, message: str) -> None:
        raise PlanVerificationError(
            message,
            phase=self.phase,
            index=self.index,
            instruction=str(self.instruction) if self.instruction else "",
        )

    # ------------------------------------------------------------------
    # operand kind checking
    # ------------------------------------------------------------------
    def _kind_error(self, operand: Operand, arg) -> str | None:
        """Why *arg* cannot fill *operand* (``None`` when it can)."""
        kind = operand.kind
        if kind == "any":
            return None
        if isinstance(arg, Param):
            if kind in ("val", "scalar", "int", "str", "bool"):
                return None
            return f"a bind parameter cannot fill a {kind} operand"
        if isinstance(arg, Constant):
            value = arg.value
            if kind in ("val", "scalar"):
                return None
            if value is None and kind in ("int", "str", "bool", "name"):
                return None  # nil is a polymorphic scalar constant
            if kind == "int":
                if isinstance(value, int) and not isinstance(value, bool):
                    return None
                return f"expected an integer constant, got {value!r}"
            if kind == "bool":
                if isinstance(value, (bool, int)):
                    return None
                return f"expected a boolean constant, got {value!r}"
            if kind in ("str", "name"):
                if isinstance(value, str):
                    return None
                return f"expected a string constant, got {value!r}"
            if kind == "json":
                if not isinstance(value, str):
                    return f"expected a JSON constant, got {value!r}"
                try:
                    json.loads(value)
                except ValueError:
                    return f"constant {value!r} is not valid JSON"
                return None
            return f"a constant cannot fill a {kind} operand"
        if isinstance(arg, Var):
            mtype = self.program.types.get(arg.name)
            if mtype is None or mtype.kind == "any":
                return None
            if kind == "val":
                return None
            if kind in ("scalar", "int", "str", "bool", "name", "json"):
                if mtype.kind == "scalar":
                    return None
                return f"{arg.name!r} is a BAT where a scalar is expected"
            if mtype.kind != "bat":
                return f"{arg.name!r} is a scalar where a BAT is expected"
            if operand.atom is not None and mtype.atom not in (None, operand.atom):
                return (
                    f"{arg.name!r} has tail atom {mtype.atom.value}, "
                    f"expected {operand.atom.value}"
                )
            if kind == "bat":
                return None
            # oids / cand: the declared tail must be oid.
            if mtype.atom not in (None, Atom.OID):
                return (
                    f"{arg.name!r} has tail atom {mtype.atom.value} where an "
                    "oid list is expected"
                )
            if kind == "oids":
                return None
            if self.var_kinds.get(arg.name) != _CAND:
                return (
                    f"{arg.name!r} is not provably a sorted/unique candidate "
                    "list (produced by a non-candidate op)"
                )
            return None
        return f"unsupported argument {arg!r}"

    def _match_args(self, sig: OpSignature, args: list) -> None:
        operands = sig.operands

        def rec(i: int, j: int) -> bool:
            if i == len(operands):
                return j == len(args)
            operand = operands[i]
            if operand.variadic:
                count = 0
                while (
                    j + count < len(args)
                    and self._kind_error(operand, args[j + count]) is None
                ):
                    count += 1
                for take in range(count, operand.min_count - 1, -1):
                    if rec(i + 1, j + take):
                        return True
                return False
            if j < len(args) and self._kind_error(operand, args[j]) is None:
                if rec(i + 1, j + 1):
                    return True
            if operand.optional:
                return rec(i + 1, j)
            return False

        if rec(0, 0):
            return
        # Re-walk left-to-right without backtracking for a useful message.
        j = 0
        for position, operand in enumerate(operands):
            if j >= len(args):
                if operand.optional or (operand.variadic and operand.min_count == 0):
                    continue
                self.fail(
                    f"too few arguments for signature '{sig}' "
                    f"(missing operand {position + 1}: {operand})"
                )
            reason = self._kind_error(operand, args[j])
            if reason is not None:
                if operand.optional:
                    continue
                self.fail(
                    f"operand {position + 1} ({operand}) of '{sig}': {reason}"
                )
            j += 1
            if operand.variadic:
                while j < len(args) and self._kind_error(operand, args[j]) is None:
                    j += 1
        self.fail(f"arguments do not match signature '{sig}'")

    # ------------------------------------------------------------------
    # per-instruction checks
    # ------------------------------------------------------------------
    def _check_free(self, instruction: Instruction) -> None:
        self.frees += 1
        for arg in instruction.args:
            if not isinstance(arg, Constant) or not isinstance(arg.value, str):
                self.fail("language.free arguments must be variable-name constants")
            name = arg.value
            if name not in self.defined:
                self.fail(f"language.free of undefined variable {name!r}")
            if name in self.freed:
                self.fail(
                    f"variable {name!r} freed twice "
                    f"(first at instruction #{self.freed[name]})"
                )
            if name in self.program.pinned:
                self.fail(f"language.free of pinned variable {name!r}")
            self.freed[name] = self.index

    def _check_effects(self, sig: OpSignature) -> None:
        if sig.effect == "result":
            if (sig.module, sig.function) == ("sql", "resultSet"):
                if self.result_delivered:
                    self.fail("plan delivers two result sets")
                self.result_delivered = True
        elif sig.effect == "write" and self.result_delivered:
            self.fail(
                f"{sig.module}.{sig.function} mutates the catalog after the "
                "result set was delivered — side-effect barrier order violated"
            )

    def _check_name_counts(self, instruction: Instruction) -> None:
        """sql.append/resultSet: declared column names must match BATs."""
        key = (instruction.module, instruction.function)
        if key == ("sql", "append"):
            names_index, first_bat = 1, 2
        elif key == ("sql", "resultSet"):
            names_index, first_bat = 1, 3
        else:
            return
        if len(instruction.args) <= names_index:
            return
        names_arg = instruction.args[names_index]
        if not isinstance(names_arg, Constant) or not isinstance(
            names_arg.value, str
        ):
            return
        try:
            names = json.loads(names_arg.value)
        except ValueError:
            return  # already rejected by the json operand kind
        bats = len(instruction.args) - first_bat
        if isinstance(names, list) and len(names) != bats:
            self.fail(
                f"{instruction.module}.{instruction.function} declares "
                f"{len(names)} columns but receives {bats} BATs"
            )

    def _record_results(self, instruction: Instruction, sig: OpSignature) -> None:
        if len(instruction.results) != len(sig.results):
            self.fail(
                f"{sig.module}.{sig.function} produces {len(sig.results)} "
                f"results, instruction assigns {len(instruction.results)}"
            )
        inherit = None
        if (sig.module, sig.function) in _KIND_PRESERVING:
            first = instruction.args[0] if instruction.args else None
            if isinstance(first, Var):
                inherit = self.var_kinds.get(first.name)
        for result, declared in zip(instruction.results, sig.results):
            if result in self.defined:
                self.fail(f"variable {result!r} assigned twice")
            mtype = self.program.types.get(result)
            if mtype is None:
                self.fail(f"variable {result!r} has no declared type")
            if declared.kind in (_BAT, _CAND, _OIDS) and mtype.kind == "scalar":
                self.fail(
                    f"{sig.module}.{sig.function} produces a BAT but "
                    f"{result!r} is declared {mtype}"
                )
            if declared.kind == _SCALAR and mtype.kind == "bat":
                self.fail(
                    f"{sig.module}.{sig.function} produces a scalar but "
                    f"{result!r} is declared {mtype}"
                )
            self.defined[result] = self.index
            if declared.kind == _BAT and inherit in (_CAND, _OIDS):
                self.var_kinds[result] = inherit
            elif declared.kind == "any":
                self.var_kinds[result] = None
            else:
                self.var_kinds[result] = declared.kind

    # ------------------------------------------------------------------
    def run(self) -> VerificationReport:
        checked = 0
        for index, instruction in enumerate(self.program.instructions):
            self.index = index
            self.instruction = instruction
            key = (instruction.module, instruction.function)
            for used in instruction.used_vars():
                if used not in self.defined:
                    self.fail(f"variable {used!r} used before definition")
                if used in self.freed:
                    self.fail(
                        f"variable {used!r} used after language.free "
                        f"(freed at instruction #{self.freed[used]})"
                    )
            sig = self.table.get(key)
            if sig is None:
                self.fail(
                    f"no signature registered for {key[0]}.{key[1]} — "
                    "declare one via @mal_op(..., sig=...)"
                )
            if key == ("language", "free"):
                self._check_free(instruction)
                continue
            self._match_args(sig, instruction.args)
            self._check_effects(sig)
            self._check_name_counts(instruction)
            self._record_results(instruction, sig)
            self.fragments.observe(instruction)
            checked += 1
        self.index = len(self.program.instructions)
        self.instruction = None
        self.fragments.finish()
        return VerificationReport(
            phase=self.phase,
            instructions=len(self.program.instructions),
            checked_ops=checked,
            frees=self.frees,
            fragment_groups=sorted(self.fragments.group_pieces.items()),
        )


def verify_program(program: MALProgram, phase: str = "plan") -> VerificationReport:
    """Statically verify *program*; raise :class:`PlanVerificationError`.

    ``phase`` names the pipeline stage that produced the program
    (``"malgen"`` or an optimizer pass name) and is carried into the
    error for precise blame.
    """
    return _Checker(program, phase).run()
