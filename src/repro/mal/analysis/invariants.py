"""Structural invariants for fragment-parallel plans.

The checks here encode what ``mitosis``/``mergetable``/``zonemaps``
promise each other and what the kernels silently assume:

* every ``mat.partition`` fragment group covers its source disjointly
  (indexes exactly ``0..pieces-1``, each exactly once per group);
* whenever a ``mat.pack``/``bat.mergecand`` reassembles per-fragment
  results, it consumes one complete group in ascending fragment order
  (candidate concatenation is only sorted if fragments concatenate
  canonically) and no fragment is packed twice;
* instructions never mix two different fragments of the same source
  (an ``algebra.*selectzm`` candidate chain must stay within one
  fragment's bounds);
* ``array.tilepart`` halo slabs carry a sane index/pieces pair and
  parseable tile metadata.

Provenance is tracked as a set of ``(source, index)`` fragment tags per
variable: ``mat.partition`` seeds a tag, element-wise/select/join ops
propagate the union of their argument tags, and merging ops
(``mat.pack``, ``bat.mergecand``, ``mat.packgroups``, ``aggr.merge*``)
clear them.
"""

from __future__ import annotations

import json
from typing import Callable

from repro.mal.program import Constant, Instruction, Var

#: ops that legitimately combine several fragments of one source.
_MERGING = {("mat", "pack"), ("mat", "packgroups"), ("bat", "mergecand")}

FragTag = tuple[str, int]


def _is_merge(module: str, function: str) -> bool:
    return (module, function) in _MERGING or (
        module == "aggr" and function.startswith("merge")
    )


class FragmentState:
    """Per-program fragment bookkeeping driven by the verifier's scan."""

    def __init__(self, fail: Callable[[str], None]):
        self._fail = fail
        #: source var -> pieces declared by its partition group.
        self.group_pieces: dict[str, int] = {}
        #: (source, index) pairs seen, to reject duplicate coverage.
        self._seen: set[FragTag] = set()
        #: partition-result var -> its (source, index) tag.
        self.partition_of: dict[str, FragTag] = {}
        #: var -> fragment tags flowing into it.
        self.tags: dict[str, frozenset[FragTag]] = {}
        #: partition vars already consumed by a reassembling pack.
        self._packed: set[str] = set()

    # ------------------------------------------------------------------
    # per-instruction hooks
    # ------------------------------------------------------------------
    def observe(self, instruction: Instruction) -> None:
        module, function = instruction.module, instruction.function
        if (module, function) == ("mat", "partition"):
            self._observe_partition(instruction)
            return
        if (module, function) in (("mat", "pack"), ("bat", "mergecand")):
            self._observe_reassembly(instruction)
        if (module, function) == ("mat", "packgroups"):
            self._observe_packgroups(instruction)
        if (module, function) == ("array", "tilepart"):
            self._observe_tilepart(instruction)
        self._propagate(instruction)

    def _observe_partition(self, instruction: Instruction) -> None:
        if len(instruction.args) != 3:
            self._fail("mat.partition expects (source, index, pieces)")
        source, index_arg, pieces_arg = instruction.args
        index = index_arg.value if isinstance(index_arg, Constant) else None
        pieces = pieces_arg.value if isinstance(pieces_arg, Constant) else None
        if not isinstance(index, int) or not isinstance(pieces, int):
            self._fail("mat.partition index/pieces must be integer constants")
        if pieces < 1 or not 0 <= index < pieces:
            self._fail(
                f"mat.partition index {index} outside fragment group of {pieces}"
            )
        if not isinstance(source, Var):
            self._fail("mat.partition source must be a variable")
        declared = self.group_pieces.setdefault(source.name, pieces)
        if declared != pieces:
            self._fail(
                f"fragment group of {source.name!r} declared with both "
                f"{declared} and {pieces} pieces"
            )
        tag = (source.name, index)
        if tag in self._seen:
            self._fail(
                f"fragment {index} of {source.name!r} partitioned twice — "
                "group no longer covers its source disjointly"
            )
        self._seen.add(tag)
        result = instruction.results[0]
        self.partition_of[result] = tag
        self.tags[result] = frozenset((tag,))

    def _fragment_sequence(self, instruction: Instruction) -> list[FragTag] | None:
        """Per-arg singleton fragment tags over one source, or ``None``.

        A reassembly is only checkable when every argument carries
        exactly one fragment tag and all tags share a source — exactly
        the shape ``mergetable`` emits.  Anything else (already-merged
        inputs, whole-column packs) is left alone.
        """
        sequence: list[FragTag] = []
        for arg in instruction.args:
            if not isinstance(arg, Var):
                return None
            tags = self.tags.get(arg.name, frozenset())
            if len(tags) != 1:
                return None
            sequence.append(next(iter(tags)))
        sources = {source for source, _ in sequence}
        if len(sources) != 1:
            return None
        return sequence

    def _observe_reassembly(self, instruction: Instruction) -> None:
        op = f"{instruction.module}.{instruction.function}"
        # Direct partition results must be packed exactly once and as a
        # complete, ordered group.
        direct = [
            arg.name
            for arg in instruction.args
            if isinstance(arg, Var) and arg.name in self.partition_of
        ]
        for name in direct:
            if name in self._packed:
                self._fail(f"{op} packs fragment {name!r} twice")
            self._packed.add(name)
        sequence = self._fragment_sequence(instruction)
        if sequence is None:
            if direct and len(direct) != len(instruction.args):
                self._fail(
                    f"{op} mixes raw fragments with non-fragment inputs"
                )
            return
        source = sequence[0][0]
        pieces = self.group_pieces.get(source)
        indexes = [index for _, index in sequence]
        if pieces is not None:
            if indexes != list(range(pieces)):
                self._fail(
                    f"{op} reassembles fragments of {source!r} as {indexes}; "
                    f"a complete group is [0..{pieces - 1}] in order"
                )

    def _observe_packgroups(self, instruction: Instruction) -> None:
        count_arg = instruction.args[0] if instruction.args else None
        if not isinstance(count_arg, Constant) or not isinstance(
            count_arg.value, int
        ):
            self._fail("mat.packgroups expects a leading fragment count constant")
        count = count_arg.value
        if count < 1 or len(instruction.args) - 1 != 2 * count:
            self._fail(
                f"mat.packgroups declares {count} fragments but carries "
                f"{len(instruction.args) - 1} trailing args (want {2 * count})"
            )

    def _observe_tilepart(self, instruction: Instruction) -> None:
        if len(instruction.args) != 5:
            self._fail("array.tilepart expects (values, aggregate, meta, i, n)")
        _, _, meta_arg, index_arg, pieces_arg = instruction.args
        index = index_arg.value if isinstance(index_arg, Constant) else None
        pieces = pieces_arg.value if isinstance(pieces_arg, Constant) else None
        if not isinstance(index, int) or not isinstance(pieces, int):
            self._fail("array.tilepart index/pieces must be integer constants")
        if pieces < 1 or not 0 <= index < pieces:
            self._fail(
                f"array.tilepart slab {index} outside its group of {pieces} — "
                "the halo slab would fall outside the heap"
            )
        if not isinstance(meta_arg, Constant) or not isinstance(meta_arg.value, str):
            self._fail("array.tilepart tile metadata must be a JSON constant")
        try:
            meta = json.loads(meta_arg.value)
        except ValueError:
            self._fail("array.tilepart tile metadata is not valid JSON")
            return
        if not isinstance(meta, dict) or "shape" not in meta or "offsets" not in meta:
            self._fail("array.tilepart tile metadata lacks shape/offsets")

    def _propagate(self, instruction: Instruction) -> None:
        merged: set[FragTag] = set()
        for arg in instruction.args:
            if isinstance(arg, Var):
                merged.update(self.tags.get(arg.name, ()))
        if not merged:
            return
        if not _is_merge(instruction.module, instruction.function):
            by_source: dict[str, int] = {}
            for source, index in merged:
                prior = by_source.setdefault(source, index)
                if prior != index:
                    self._fail(
                        f"{instruction.module}.{instruction.function} mixes "
                        f"fragments {prior} and {index} of {source!r} — "
                        "candidate chains must stay within one fragment"
                    )
            tags = frozenset(merged)
            for result in instruction.results:
                self.tags[result] = tags

    # ------------------------------------------------------------------
    # whole-program checks
    # ------------------------------------------------------------------
    def finish(self) -> None:
        for source, pieces in self.group_pieces.items():
            indexes = {i for s, i in self._seen if s == source}
            if indexes != set(range(pieces)):
                missing = sorted(set(range(pieces)) - indexes)
                self._fail(
                    f"fragment group of {source!r} does not cover its source: "
                    f"missing pieces {missing}"
                )
