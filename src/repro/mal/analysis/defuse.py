"""Def/use analysis shared by the verifier and the ``dead_code`` pass."""

from __future__ import annotations

from repro.mal.program import MALProgram


def def_use(
    program: MALProgram,
) -> tuple[dict[str, int], dict[str, list[int]]]:
    """``(producers, uses)``: defining index and use indexes per variable.

    ``language.free`` arguments are *not* uses — they name variables by
    constant string and mark release, which the verifier tracks
    separately.
    """
    producers: dict[str, int] = {}
    uses: dict[str, list[int]] = {}
    for index, instruction in enumerate(program.instructions):
        for used in instruction.used_vars():
            uses.setdefault(used, []).append(index)
        for result in instruction.results:
            producers.setdefault(result, index)
    return producers, uses


def live_instructions(program: MALProgram) -> list[bool]:
    """Backward liveness: which instructions feed a side effect or result.

    An instruction is live when it has side effects or any of its
    results is (transitively) consumed by a live instruction, a result
    column, or a pinned variable.  This is the analysis behind the
    ``dead_code`` optimizer pass; the verifier reuses it to report how
    much of a plan is dead weight.
    """
    live_vars: set[str] = set(program.pinned)
    live_vars.update(var for _, var in program.result_columns)
    keep = [False] * len(program.instructions)
    for index in range(len(program.instructions) - 1, -1, -1):
        instruction = program.instructions[index]
        needed = instruction.has_side_effects or any(
            result in live_vars for result in instruction.results
        )
        if needed:
            keep[index] = True
            live_vars.update(instruction.used_vars())
    return keep
