"""EXPLAIN annotations: stable plan digest + fragment-group summary.

``annotate_program`` renders the canonical ``to_text()`` listing
prefixed with comment lines that make plan-shape regressions diff
cleanly in tests: a short content digest (any rewrite changes it, so a
golden test needs to record one line, not the whole plan) and one line
per mitosis fragment group.
"""

from __future__ import annotations

import hashlib

from repro.mal.program import Constant, MALProgram, Var


def plan_digest(program: MALProgram) -> str:
    """A short, stable content hash of the canonical plan text."""
    text = program.to_text()
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:12]


def fragment_groups(program: MALProgram) -> list[tuple[str, int]]:
    """``(source, pieces)`` per mitosis fragment group, in plan order."""
    seen: dict[str, int] = {}
    for instruction in program.instructions:
        if (instruction.module, instruction.function) != ("mat", "partition"):
            continue
        if len(instruction.args) != 3:
            continue
        source, _, pieces = instruction.args
        if isinstance(source, Var) and isinstance(pieces, Constant):
            seen.setdefault(source.name, pieces.value)
    return list(seen.items())


def annotate_program(program: MALProgram) -> str:
    """The plan text with digest + fragment-group comments.

    The comments sit just below the ``function user.main`` header so
    the listing still opens with the function signature.
    """
    annotations = [f"# plan digest {plan_digest(program)}"]
    for source, pieces in fragment_groups(program):
        annotations.append(f"# fragment group {source} x{pieces}")
    lines = program.to_text().splitlines()
    return "\n".join(lines[:1] + annotations + lines[1:])
