"""MAL module ``sql`` — the glue between MAL plans and the catalog.

These operators carry every side effect a query plan can have: binding
persistent BATs, appending/updating/deleting, DDL, and delivering the
result set.  They are the operators :data:`~repro.mal.program.SIDE_EFFECT_OPS`
protects from dead-code elimination, and the mutating subset
(:data:`~repro.mal.program.WRITE_OPS`) is what routes a compiled
program through a transaction.

Snapshot contract: every operator resolves names through
``ctx.catalog`` — the *execution context's* catalog, which the engine
sets per run to the session's transaction fork or the committed head
snapshot.  Nothing here touches global state, so one compiled program
(shared through the cross-session plan cache) executes concurrently
against any number of snapshots.
"""

from __future__ import annotations

import json

import numpy as np

from repro.errors import MALError
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.catalog.objects import Array, ColumnDef, DimensionDef
from repro.mal.modules import cached_loads, mal_op


def _column_defs(defs_json: str) -> list[ColumnDef]:
    return [
        ColumnDef(d["name"], Atom(d["atom"]), d.get("default"), d.get("has_default", False))
        for d in json.loads(defs_json)
    ]


def _dimension_defs(dims_json: str) -> list[DimensionDef]:
    return [
        DimensionDef(d["name"], Atom(d["atom"]), d["start"], d["step"], d["stop"])
        for d in json.loads(dims_json)
    ]


@mal_op("sql", "bind", sig="str, str -> bat", effect="read")
def _bind(ctx, name: str, column: str):
    """The storage BAT of ``object.column``."""
    return ctx.catalog.get(name).bind(column)


@mal_op("sql", "count", sig="str -> scalar", effect="read")
def _count(ctx, name: str):
    return ctx.catalog.get(name).count


@mal_op("sql", "createTable", sig="str, json, bool? -> scalar", effect="write")
def _create_table(ctx, name: str, defs_json: str, if_not_exists=False):
    if if_not_exists and name.lower() in ctx.catalog:
        return 0
    ctx.catalog.create_table(name, _column_defs(defs_json))
    return 0


@mal_op("sql", "createArray", sig="str, json, json, bool? -> scalar", effect="write")
def _create_array(ctx, name: str, dims_json: str, attrs_json: str, if_not_exists=False):
    if if_not_exists and name.lower() in ctx.catalog:
        return 0
    ctx.catalog.create_array(name, _dimension_defs(dims_json), _column_defs(attrs_json))
    return 0


@mal_op("sql", "dropObject", sig="str, bool -> scalar", effect="write")
def _drop(ctx, name: str, if_exists):
    ctx.catalog.drop(name, bool(if_exists))
    return 0


@mal_op("sql", "alterDimension", sig="str, str, scalar, scalar, scalar -> scalar", effect="write")
def _alter_dimension(ctx, name: str, dimension: str, start, step, stop):
    array = ctx.catalog.get_array(name)
    array.alter_dimension(dimension, int(start), int(step), int(stop))
    return 0


@mal_op("sql", "append", sig="str, json, bat* -> scalar", effect="write")
def _append(ctx, name: str, columns_json: str, *bats: BAT):
    """Bulk-append aligned columns to a table."""
    table = ctx.catalog.get_table(name)
    names = json.loads(columns_json)
    if len(names) != len(bats):
        raise MALError("sql.append: column/BAT arity mismatch")
    return table.append_rows({n: b.tail for n, b in zip(names, bats)})


@mal_op("sql", "update", sig="str, str, oids, bat -> scalar", effect="write")
def _update(ctx, name: str, column: str, oids: BAT, values: BAT):
    """Point-update one column/attribute at the given oids."""
    obj = ctx.catalog.get(name)
    positions = oids.tail.values
    if len(positions) != len(values):
        raise MALError("sql.update: oid/value arity mismatch")
    keep = positions >= 0
    obj.replace_values(column, positions[keep], values.tail.take(np.flatnonzero(keep)))
    return int(keep.sum())


@mal_op("sql", "delete", sig="str, oids -> scalar", effect="write")
def _delete(ctx, name: str, oids: BAT):
    """DELETE: physical removal for tables, hole-punching for arrays."""
    obj = ctx.catalog.get(name)
    positions = oids.tail.values
    positions = positions[positions >= 0]
    if isinstance(obj, Array):
        obj.delete_cells(positions)
    else:
        obj.delete_rows(positions)
    return len(positions)


@mal_op("sql", "clear_table", sig="str -> scalar", effect="write")
def _clear(ctx, name: str):
    table = ctx.catalog.get_table(name)
    count = table.count
    table.clear()
    return count


class InternalResult:
    """Result set assembled by ``sql.resultSet`` before engine wrapping."""

    def __init__(self, kind: str, names: list[str], bats: list[BAT], meta: dict):
        self.kind = kind
        self.names = names
        self.bats = bats
        self.meta = meta


@mal_op("sql", "resultSet", sig="str, json, json, bat* -> scalar", effect="result")
def _result_set(ctx, kind: str, names_json: str, meta_json: str, *bats: BAT):
    names = list(cached_loads(names_json))
    if len(names) != len(bats):
        raise MALError("sql.resultSet: name/BAT arity mismatch")
    lengths = {len(b) for b in bats}
    if len(lengths) > 1:
        raise MALError(f"sql.resultSet: misaligned result columns {sorted(lengths)}")
    ctx.result = InternalResult(kind, names, list(bats), dict(cached_loads(meta_json)))
    return 0


@mal_op("sql", "setVariable", sig="str, any -> scalar", effect="result")
def _set_variable(ctx, name: str, value):
    ctx.variables[name] = value
    return 0


@mal_op("sql", "affected", sig="scalar -> scalar", effect="result")
def _affected(ctx, count):
    """Record the affected-row count of a DML statement."""
    ctx.affected = int(count) if count is not None else 0
    return ctx.affected
