"""MAL module ``batcalc`` — bulk element-wise computation on BATs."""

from __future__ import annotations

from repro.errors import MALError
from repro.gdk import calc
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.mal.modules import mal_op


def _unwrap(operand):
    """BAT -> Column, scalars pass through."""
    if isinstance(operand, BAT):
        return operand.tail
    return operand


def _wrap(column: Column, *operands) -> BAT:
    """Wrap a result column, inheriting the head range of the inputs.

    Element-wise kernels preserve the head, so the result keeps the
    first BAT operand's ``hseqbase`` — fragment slices produced by
    ``mat.partition`` stay in the global oid space through arbitrary
    ``batcalc`` chains and a subsequent ``algebra.select`` emits
    globally valid candidate oids.
    """
    for operand in operands:
        if isinstance(operand, BAT):
            return BAT(column, operand.hseqbase)
    return BAT(column)


def _register_arith(symbol: str, name: str) -> None:
    @mal_op("batcalc", name, sig="val, val -> bat")
    def _op(ctx, left, right, _symbol=symbol):
        return _wrap(calc.arithmetic(_symbol, _unwrap(left), _unwrap(right)), left, right)


for _symbol, _name in (("+", "add"), ("-", "sub"), ("*", "mul"), ("/", "div"), ("%", "mod")):
    _register_arith(_symbol, _name)


def _register_compare(symbol: str, name: str) -> None:
    @mal_op("batcalc", name, sig="val, val -> bat(bit)")
    def _op(ctx, left, right, _symbol=symbol):
        return _wrap(calc.compare(_symbol, _unwrap(left), _unwrap(right)), left, right)


for _symbol, _name in (
    ("==", "eq"),
    ("!=", "ne"),
    ("<", "lt"),
    ("<=", "le"),
    (">", "gt"),
    (">=", "ge"),
):
    _register_compare(_symbol, _name)


@mal_op("batcalc", "and", sig="val, val -> bat(bit)")
def _and(ctx, left, right):
    return _wrap(calc.logical_and(_unwrap(left), _unwrap(right)), left, right)


@mal_op("batcalc", "or", sig="val, val -> bat(bit)")
def _or(ctx, left, right):
    return _wrap(calc.logical_or(_unwrap(left), _unwrap(right)), left, right)


@mal_op("batcalc", "not", sig="bat -> bat(bit)")
def _not(ctx, operand):
    column = _unwrap(operand)
    if not isinstance(column, Column):
        raise MALError("batcalc.not needs a BAT")
    return _wrap(calc.logical_not(column), operand)


@mal_op("batcalc", "isnil", sig="bat -> bat(bit)")
def _isnil(ctx, operand):
    column = _unwrap(operand)
    if not isinstance(column, Column):
        raise MALError("batcalc.isnil needs a BAT")
    return _wrap(calc.isnull(column), operand)


@mal_op("batcalc", "ifthenelse", sig="bat, val, val -> bat")
def _ifthenelse(ctx, condition, then_value, else_value):
    cond = _unwrap(condition)
    if not isinstance(cond, Column):
        raise MALError("batcalc.ifthenelse needs a BAT condition")
    return _wrap(calc.ifthenelse(cond, _unwrap(then_value), _unwrap(else_value)), condition, then_value, else_value)


@mal_op("batcalc", "negate", sig="bat -> bat")
def _negate(ctx, operand):
    return _wrap(calc.negate(_unwrap(operand)), operand)


@mal_op("batcalc", "abs", sig="bat -> bat")
def _abs(ctx, operand):
    return _wrap(calc.absolute(_unwrap(operand)), operand)


@mal_op("batcalc", "math", sig="str, bat -> bat")
def _math(ctx, name: str, operand):
    return _wrap(calc.apply_unary_math(name, _unwrap(operand)), operand)


@mal_op("batcalc", "concat", sig="val, val -> bat")
def _concat(ctx, left, right):
    return _wrap(calc.concat_str(_unwrap(left), _unwrap(right)), left, right)


@mal_op("batcalc", "cast", sig="bat, str -> bat")
def _cast(ctx, operand, atom_name: str):
    column = _unwrap(operand)
    if not isinstance(column, Column):
        raise MALError("batcalc.cast needs a BAT")
    return _wrap(column.cast(Atom(atom_name)), operand)


@mal_op("batcalc", "fillnulls", sig="bat, scalar -> bat")
def _fillnulls(ctx, operand, value):
    column = _unwrap(operand)
    if not isinstance(column, Column):
        raise MALError("batcalc.fillnulls needs a BAT")
    return _wrap(column.fill_nulls(value), operand)


# ----------------------------------------------------------------------
# string kernels
# ----------------------------------------------------------------------
from repro.gdk import strings as _strings


@mal_op("batcalc", "lower", sig="bat -> bat")
def _lower(ctx, operand):
    return _wrap(_strings.lower(_unwrap(operand)), operand)


@mal_op("batcalc", "upper", sig="bat -> bat")
def _upper(ctx, operand):
    return _wrap(_strings.upper(_unwrap(operand)), operand)


@mal_op("batcalc", "length", sig="bat -> bat")
def _length(ctx, operand):
    return _wrap(_strings.length(_unwrap(operand)), operand)


@mal_op("batcalc", "trim", sig="bat -> bat")
def _trim(ctx, operand):
    return _wrap(_strings.trim(_unwrap(operand)), operand)


@mal_op("batcalc", "substring", sig="bat, int, int? -> bat")
def _substring(ctx, operand, start, count=None):
    return _wrap(_strings.substring(
        _unwrap(operand),
        int(start),
        None if count is None else int(count),
    ), operand)


@mal_op("batcalc", "like", sig="bat, scalar -> bat(bit)")
def _like(ctx, operand, pattern):
    return _wrap(_strings.like(_unwrap(operand), pattern), operand)
