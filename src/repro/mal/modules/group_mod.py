"""MAL module ``group`` — grouping for value-based GROUP BY."""

from __future__ import annotations

from repro.errors import MALError
from repro.gdk import group as group_kernel
from repro.gdk.bat import BAT
from repro.mal.modules import mal_op


@mal_op("group", "group", sig="bat -> oids, cand, bat")
def _group(ctx, b: BAT):
    """Returns (groups, extents, histogram) — MonetDB's triple."""
    grouping = group_kernel.group(b.tail)
    return (
        BAT(grouping.groups),
        BAT.from_oids(grouping.extents + b.hseqbase),
        # Zero-copy wrap: the histogram is rarely consumed, and a
        # tolist()/from_pylist round-trip per call is measurable on
        # fragmented plans (one group call per fragment).
        BAT.from_oids(grouping.histogram),
    )


@mal_op("group", "subgroup", sig="bat, oids -> oids, cand, bat")
def _subgroup(ctx, b: BAT, groups: BAT):
    """Refine existing group ids by another column."""
    if len(b) != len(groups):
        raise MALError("group.subgroup: misaligned inputs")
    previous = group_kernel.grouping_view(
        groups.tail.values, int(groups.tail.values.max()) + 1 if len(groups) else 0
    )
    grouping = group_kernel.subgroup(b.tail, previous)
    return (
        BAT(grouping.groups),
        BAT.from_oids(grouping.extents + b.hseqbase),
        BAT.from_oids(grouping.histogram),
    )
