"""MAL module ``calc`` — scalar computation (constants, fold targets)."""

from __future__ import annotations

from repro.errors import MALError
from repro.mal.modules import mal_op


def _both_null(left, right) -> bool:
    return left is None or right is None


def _register_arith(symbol: str, name: str) -> None:
    @mal_op("calc", name, sig="scalar, scalar -> scalar")
    def _op(ctx, left, right, _symbol=symbol):
        if _both_null(left, right):
            return None
        if _symbol == "+":
            return left + right
        if _symbol == "-":
            return left - right
        if _symbol == "*":
            return left * right
        if _symbol == "/":
            if right == 0:
                return None
            if isinstance(left, int) and isinstance(right, int):
                quotient = abs(left) // abs(right)
                return -quotient if (left < 0) != (right < 0) else quotient
            return left / right
        # modulo, C truncation semantics
        if right == 0:
            return None
        if isinstance(left, int) and isinstance(right, int):
            quotient = abs(left) // abs(right)
            quotient = -quotient if (left < 0) != (right < 0) else quotient
            return left - quotient * right
        import math

        return math.fmod(left, right)


for _symbol, _name in (("+", "add"), ("-", "sub"), ("*", "mul"), ("/", "div"), ("%", "mod")):
    _register_arith(_symbol, _name)


_COMPARATORS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}


def _register_compare(name: str) -> None:
    @mal_op("calc", name, sig="scalar, scalar -> scalar")
    def _op(ctx, left, right, _name=name):
        if _both_null(left, right):
            return None
        return _COMPARATORS[_name](left, right)


for _name in _COMPARATORS:
    _register_compare(_name)


@mal_op("calc", "and", sig="scalar, scalar -> scalar")
def _and(ctx, left, right):
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


@mal_op("calc", "or", sig="scalar, scalar -> scalar")
def _or(ctx, left, right):
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


@mal_op("calc", "not", sig="scalar -> scalar")
def _not(ctx, operand):
    if operand is None:
        return None
    return not bool(operand)


@mal_op("calc", "isnil", sig="scalar -> scalar")
def _isnil(ctx, operand):
    return operand is None


@mal_op("calc", "negate", sig="scalar -> scalar")
def _negate(ctx, operand):
    return None if operand is None else -operand


@mal_op("calc", "abs", sig="scalar -> scalar")
def _abs(ctx, operand):
    return None if operand is None else abs(operand)


@mal_op("calc", "ifthenelse", sig="scalar, scalar, scalar -> scalar")
def _ifthenelse(ctx, condition, then_value, else_value):
    return then_value if condition else else_value


@mal_op("calc", "cast", sig="scalar, str -> scalar")
def _cast(ctx, operand, atom_name: str):
    from repro.gdk.atoms import Atom, coerce_scalar

    if operand is None:
        return None
    return coerce_scalar(operand, Atom(atom_name))


@mal_op("calc", "concat", sig="scalar, scalar -> scalar")
def _concat(ctx, left, right):
    if _both_null(left, right):
        return None
    return str(left) + str(right)


@mal_op("calc", "math", sig="str, scalar -> scalar")
def _math(ctx, name: str, operand):
    import math

    if operand is None:
        return None
    functions = {
        "sqrt": math.sqrt,
        "floor": math.floor,
        "ceil": math.ceil,
        "ceiling": math.ceil,
        "round": round,
        "exp": math.exp,
        "log": math.log,
        "ln": math.log,
        "log10": math.log10,
        "sin": math.sin,
        "cos": math.cos,
        "tan": math.tan,
    }
    try:
        fn = functions[name.lower()]
    except KeyError:
        raise MALError(f"unknown math function {name!r}") from None
    try:
        return fn(operand)
    except ValueError:
        return None


# ----------------------------------------------------------------------
# scalar string functions
# ----------------------------------------------------------------------
@mal_op("calc", "lower", sig="scalar -> scalar")
def _lower(ctx, operand):
    return None if operand is None else str(operand).lower()


@mal_op("calc", "upper", sig="scalar -> scalar")
def _upper(ctx, operand):
    return None if operand is None else str(operand).upper()


@mal_op("calc", "length", sig="scalar -> scalar")
def _length(ctx, operand):
    return None if operand is None else len(str(operand))


@mal_op("calc", "trim", sig="scalar -> scalar")
def _trim(ctx, operand):
    return None if operand is None else str(operand).strip()


@mal_op("calc", "substring", sig="scalar, int, int? -> scalar")
def _substring(ctx, operand, start, count=None):
    if operand is None:
        return None
    begin = max(0, int(start) - 1)
    text = str(operand)
    if count is None:
        return text[begin:]
    return text[begin : begin + int(count)]


@mal_op("calc", "like", sig="scalar, scalar -> scalar")
def _like(ctx, operand, pattern):
    from repro.gdk.strings import scalar_like

    return scalar_like(operand, pattern)
