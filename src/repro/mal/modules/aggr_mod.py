"""MAL module ``aggr`` — scalar and grouped aggregation."""

from __future__ import annotations

from repro.errors import MALError
from repro.gdk import aggregate as aggregate_kernel
from repro.gdk import group as group_kernel
from repro.gdk.bat import BAT
from repro.mal.modules import mal_op


def _grouping(groups: BAT, ngroups) -> group_kernel.GroupView:
    # The aggregation kernels only read (ids, ngroups); the cheap view
    # skips the per-call extents sort of ``explicit_grouping``.
    return group_kernel.grouping_view(groups.tail.values, int(ngroups))


def _register_scalar(name: str) -> None:
    @mal_op("aggr", name, sig="bat -> scalar")
    def _op(ctx, b: BAT, _name=name):
        if not isinstance(b, BAT):
            raise MALError(f"aggr.{_name} expects a BAT")
        return aggregate_kernel.scalar(_name, b.tail)


for _name in ("sum", "avg", "min", "max", "count", "stddev", "median"):
    _register_scalar(_name)


def _register_grouped(name: str) -> None:
    @mal_op("aggr", f"sub{name}", sig="bat, oids, scalar -> bat")
    def _op(ctx, b: BAT, groups: BAT, ngroups, _name=name):
        if not isinstance(b, BAT) or not isinstance(groups, BAT):
            raise MALError(f"aggr.sub{_name} expects BATs")
        grouping = _grouping(groups, ngroups)
        return BAT(aggregate_kernel.grouped(_name, b.tail, grouping))


for _name in ("sum", "prod", "avg", "min", "max", "count", "stddev", "median"):
    _register_grouped(_name)


@mal_op("aggr", "subcountstar", sig="oids, scalar -> bat")
def _subcountstar(ctx, groups: BAT, ngroups):
    grouping = _grouping(groups, ngroups)
    return BAT(aggregate_kernel.grouped_count_star(grouping))


@mal_op("aggr", "subcountdistinct", sig="bat, oids, scalar -> bat")
def _subcountdistinct(ctx, b: BAT, groups: BAT, ngroups):
    grouping = _grouping(groups, ngroups)
    return BAT(aggregate_kernel.grouped_count_distinct(b.tail, grouping))


@mal_op("aggr", "countdistinct", sig="bat -> scalar")
def _countdistinct(ctx, b: BAT):
    return aggregate_kernel.scalar_count_distinct(b.tail)


def _register_merge(name: str) -> None:
    @mal_op("aggr", f"merge{name}", sig="bat, oids, scalar -> bat")
    def _op(ctx, partials: BAT, groups: BAT, ngroups, _name=name):
        """Fold per-fragment partials into the global per-group result."""
        if not isinstance(partials, BAT) or not isinstance(groups, BAT):
            raise MALError(f"aggr.merge{_name} expects BATs")
        grouping = _grouping(groups, ngroups)
        return BAT(aggregate_kernel.merge_partials(_name, partials.tail, grouping))


for _name in sorted(aggregate_kernel.MERGEABLE):
    _register_merge(_name)


@mal_op("aggr", "mergeavg", sig="bat, bat, oids, scalar -> bat")
def _mergeavg(ctx, sums: BAT, counts: BAT, groups: BAT, ngroups):
    """Merge (sum, count) partials into the global per-group mean."""
    if not all(isinstance(b, BAT) for b in (sums, counts, groups)):
        raise MALError("aggr.mergeavg expects BATs")
    grouping = _grouping(groups, ngroups)
    return BAT(aggregate_kernel.merge_avg(sums.tail, counts.tail, grouping))


@mal_op("aggr", "firstocc", sig="oids, scalar -> cand")
def _firstocc(ctx, groups: BAT, ngroups):
    """Reconstruct grouping extents from row-aligned global group ids."""
    if not isinstance(groups, BAT):
        raise MALError("aggr.firstocc expects a BAT")
    positions = aggregate_kernel.first_occurrence(groups.tail, int(ngroups))
    return BAT.from_oids(positions + groups.hseqbase)
