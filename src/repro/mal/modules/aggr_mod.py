"""MAL module ``aggr`` — scalar and grouped aggregation."""

from __future__ import annotations

from repro.errors import MALError
from repro.gdk import aggregate as aggregate_kernel
from repro.gdk import group as group_kernel
from repro.gdk.bat import BAT
from repro.mal.modules import mal_op


def _grouping(groups: BAT, ngroups) -> group_kernel.Grouping:
    return group_kernel.explicit_grouping(groups.tail.values, int(ngroups))


def _register_scalar(name: str) -> None:
    @mal_op("aggr", name)
    def _op(ctx, b: BAT, _name=name):
        if not isinstance(b, BAT):
            raise MALError(f"aggr.{_name} expects a BAT")
        return aggregate_kernel.scalar(_name, b.tail)


for _name in ("sum", "avg", "min", "max", "count", "stddev", "median"):
    _register_scalar(_name)


def _register_grouped(name: str) -> None:
    @mal_op("aggr", f"sub{name}")
    def _op(ctx, b: BAT, groups: BAT, ngroups, _name=name):
        if not isinstance(b, BAT) or not isinstance(groups, BAT):
            raise MALError(f"aggr.sub{_name} expects BATs")
        grouping = _grouping(groups, ngroups)
        return BAT(aggregate_kernel.grouped(_name, b.tail, grouping))


for _name in ("sum", "prod", "avg", "min", "max", "count", "stddev", "median"):
    _register_grouped(_name)


@mal_op("aggr", "subcountstar")
def _subcountstar(ctx, groups: BAT, ngroups):
    grouping = _grouping(groups, ngroups)
    return BAT(aggregate_kernel.grouped_count_star(grouping))


@mal_op("aggr", "subcountdistinct")
def _subcountdistinct(ctx, b: BAT, groups: BAT, ngroups):
    grouping = _grouping(groups, ngroups)
    return BAT(aggregate_kernel.grouped_count_distinct(b.tail, grouping))


@mal_op("aggr", "countdistinct")
def _countdistinct(ctx, b: BAT):
    return aggregate_kernel.scalar_count_distinct(b.tail)
