"""MAL module ``algebra`` — selections, projections, joins, sorting."""

from __future__ import annotations

import numpy as np

from repro.errors import MALError
from repro.gdk import join as join_kernel
from repro.gdk import select as select_kernel
from repro.gdk import sort as sort_kernel
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.mal.modules import mal_op


@mal_op("algebra", "select", sig="bat(bit), cand? -> cand")
def _select(ctx, b: BAT, candidates=None):
    """Candidate list of oids whose bit tail is TRUE."""
    return select_kernel.select_true(b, candidates)


@mal_op("algebra", "thetaselect", sig="bat, scalar, str, cand? -> cand")
def _thetaselect(ctx, b: BAT, value, op: str, candidates=None):
    return select_kernel.thetaselect(b, value, op, candidates)


@mal_op("algebra", "rangeselect", sig="bat, scalar, scalar, bool, bool, bool, cand? -> cand")
def _rangeselect(ctx, b: BAT, low, high, li, hi, anti, candidates=None):
    return select_kernel.rangeselect(b, low, high, bool(li), bool(hi), bool(anti), candidates)


@mal_op("algebra", "isnilselect", sig="bat, bool, cand? -> cand")
def _isnilselect(ctx, b: BAT, want_null, candidates=None):
    return select_kernel.isnull_select(b, bool(want_null), candidates)


# Zone-map twins of the select family.  The ``zonemaps`` optimizer pass
# renames fragment-level selects to these after mitosis; they run the
# identical kernels but with fragment pruning armed, so a fragment whose
# zone statistics prove all-match / no-match never touches its payload.
@mal_op("algebra", "selectzm", sig="bat(bit), cand? -> cand")
def _selectzm(ctx, b: BAT, candidates=None):
    return select_kernel.select_true(b, candidates, prune=True)


@mal_op("algebra", "thetaselectzm", sig="bat, scalar, str, cand? -> cand")
def _thetaselectzm(ctx, b: BAT, value, op: str, candidates=None):
    return select_kernel.thetaselect(b, value, op, candidates, prune=True)


@mal_op("algebra", "rangeselectzm", sig="bat, scalar, scalar, bool, bool, bool, cand? -> cand")
def _rangeselectzm(ctx, b: BAT, low, high, li, hi, anti, candidates=None):
    return select_kernel.rangeselect(
        b, low, high, bool(li), bool(hi), bool(anti), candidates, prune=True
    )


@mal_op("algebra", "isnilselectzm", sig="bat, bool, cand? -> cand")
def _isnilselectzm(ctx, b: BAT, want_null, candidates=None):
    return select_kernel.isnull_select(b, bool(want_null), candidates, prune=True)


@mal_op("algebra", "inselectzm", sig="bat, json, cand? -> cand")
def _inselectzm(ctx, b: BAT, values_json: str, candidates=None):
    import json

    return select_kernel.in_select(b, json.loads(values_json), candidates, prune=True)


@mal_op("algebra", "projection", sig="oids, bat -> bat")
def _projection(ctx, candidates: BAT, b: BAT):
    """Fetch-join: tail values of *b* at the candidate oids."""
    return b.project(candidates)


@mal_op("algebra", "projectionsafe", sig="oids, bat -> bat")
def _projectionsafe(ctx, candidates: BAT, b: BAT):
    """Like projection but oid -1 yields NULL (outer-join fetch)."""
    if candidates.atom is not Atom.OID:
        raise MALError("projection candidates must be oids")
    positions = candidates.tail.values - b.hseqbase
    positions = np.where(candidates.tail.values < 0, -1, positions)
    return BAT(b.tail.take_with_invalid(positions))


@mal_op("algebra", "join", sig="bat, bat, bool?, cand?, cand? -> oids, oids")
def _join(ctx, left: BAT, right: BAT, nil_matches=False, lcand=None, rcand=None):
    return join_kernel.join(left, right, bool(nil_matches), lcand, rcand)


@mal_op("algebra", "leftjoin", sig="bat, bat, cand?, cand? -> oids, oids")
def _leftjoin(ctx, left: BAT, right: BAT, lcand=None, rcand=None):
    return join_kernel.leftjoin(left, right, lcand, rcand)


@mal_op("algebra", "thetajoin", sig="bat, bat, str -> oids, oids")
def _thetajoin(ctx, left: BAT, right: BAT, op: str):
    return join_kernel.thetajoin(left, right, op)


@mal_op("algebra", "crossproduct", sig="int, int -> oids, oids")
def _crossproduct(ctx, left_count, right_count):
    return join_kernel.crossproduct(int(left_count), int(right_count))


@mal_op("algebra", "semijoin", sig="bat, bat, cand?, cand? -> cand")
def _semijoin(ctx, left: BAT, right: BAT, lcand=None, rcand=None):
    return join_kernel.semijoin(left, right, lcand, rcand)


@mal_op("algebra", "antijoin", sig="bat, bat, cand?, cand? -> cand")
def _antijoin(ctx, left: BAT, right: BAT, lcand=None, rcand=None):
    return join_kernel.antijoin(left, right, lcand, rcand)


@mal_op("algebra", "intersect", sig="cand, cand -> cand")
def _intersect(ctx, a: BAT, b: BAT):
    return select_kernel.intersect_candidates(a, b)


@mal_op("algebra", "union", sig="cand, cand -> cand")
def _union(ctx, a: BAT, b: BAT):
    return select_kernel.union_candidates(a, b)


@mal_op("algebra", "difference", sig="cand, cand -> cand")
def _difference(ctx, a: BAT, b: BAT):
    return select_kernel.difference_candidates(a, b)


@mal_op("algebra", "firstn", sig="cand, int -> cand")
def _firstn(ctx, candidates: BAT, n):
    return select_kernel.firstn(candidates, int(n))


@mal_op("algebra", "sort", sig="bat, bool? -> bat, oids")
def _sort(ctx, b: BAT, descending=False):
    """Returns (sorted-tail BAT, order oid BAT)."""
    order = sort_kernel.sort_order(b.tail, bool(descending))
    return BAT(b.tail.take(order)), BAT.from_oids(order + b.hseqbase)


@mal_op("algebra", "sortmulti", sig="json, bat+ -> oids")
def _sortmulti(ctx, flags_json: str, *bats: BAT):
    """Multi-key sort; flags encode descending per key. Returns order."""
    import json

    flags = json.loads(flags_json)
    columns = [b.tail for b in bats]
    order = sort_kernel.sort_order_multi(columns, [bool(f) for f in flags])
    return BAT.from_oids(order)


@mal_op("algebra", "inselect", sig="bat, json, cand? -> cand")
def _inselect(ctx, b: BAT, values_json: str, candidates=None):
    import json

    return select_kernel.in_select(b, json.loads(values_json), candidates)


@mal_op("algebra", "rowmembership", sig="int, bat+ -> bat(bit)")
def _rowmembership(ctx, count, *bats: BAT):
    """bit BAT over the first *count* BATs (left rows) marking rows that
    also appear in the remaining *count* BATs (right rows)."""
    from repro.gdk.atoms import Atom as _Atom
    from repro.gdk.column import Column as _Column
    from repro.gdk.join import rows_membership

    count = int(count)
    if len(bats) != 2 * count:
        raise MALError("algebra.rowmembership: arity mismatch")
    left = [b.tail for b in bats[:count]]
    right = [b.tail for b in bats[count:]]
    return BAT(_Column(_Atom.BIT, rows_membership(left, right)))
