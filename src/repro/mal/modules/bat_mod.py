"""MAL module ``bat`` — BAT lifecycle and structural operations."""

from __future__ import annotations

import numpy as np

from repro.errors import MALError
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.mal.modules import mal_op


@mal_op("bat", "new", sig="str -> bat")
def _new(ctx, atom_name: str):
    return BAT.empty(Atom(atom_name))


@mal_op("bat", "densebat", sig="int -> cand")
def _densebat(ctx, count):
    return BAT.dense(0, int(count))


@mal_op("bat", "mirror", sig="bat -> cand")
def _mirror(ctx, b: BAT):
    return b.mirror()


@mal_op("bat", "append", sig="bat, bat -> bat")
def _append(ctx, target: BAT, source: BAT):
    return target.append(source)


@mal_op("bat", "replace", sig="bat, oids, bat -> bat")
def _replace(ctx, target: BAT, oids: BAT, values: BAT):
    if oids.atom is not Atom.OID:
        raise MALError("bat.replace positions must be oids")
    return target.replace(oids.tail.values, values.tail)


@mal_op("bat", "slice", sig="bat, int, int -> bat")
def _slice(ctx, b: BAT, start, stop):
    return b.slice(int(start), int(stop))


@mal_op("bat", "pack", sig="scalar* -> bat")
def _pack(ctx, *values):
    """Materialise scalars into a single-column BAT (VALUES rows)."""
    if not values:
        raise MALError("bat.pack needs at least one value")
    sample = next((v for v in values if v is not None), None)
    if sample is None:
        return BAT(Column.nulls(Atom.INT, len(values)))
    from repro.gdk.atoms import atom_for_python

    atom = atom_for_python(sample)
    return BAT(Column.from_pylist(atom, list(values)))


@mal_op("bat", "getcount", sig="bat -> scalar")
def _getcount(ctx, b: BAT):
    return len(b)


@mal_op("bat", "fetch", sig="bat, int -> scalar")
def _fetch(ctx, b: BAT, position):
    """Scalar tail value at a physical position (0-based)."""
    index = int(position)
    if index < 0 or index >= len(b):
        raise MALError(f"bat.fetch position {index} out of range")
    return b.tail.get(index)


@mal_op("bat", "project_const", sig="bat, scalar, str? -> bat")
def _project_const(ctx, b: BAT, value, atom_name: str | None = None):
    """Constant column aligned with *b* (MAL's ``algebra.project`` w/ const).

    Without an explicit atom (untyped bind parameters) the atom is
    inferred from the runtime value.
    """
    if value is None:
        return BAT(Column.nulls(Atom(atom_name) if atom_name else Atom.INT, len(b)))
    from repro.gdk.atoms import atom_for_python

    atom = Atom(atom_name) if atom_name else atom_for_python(value)
    return BAT(Column.constant(atom, value, len(b)))


@mal_op("bat", "cast", sig="bat, str -> bat")
def _cast(ctx, b: BAT, atom_name: str):
    return BAT(b.tail.cast(Atom(atom_name)), b.hseqbase)


@mal_op("bat", "mergecand", sig="cand+ -> cand")
def _mergecand(ctx, *parts: BAT):
    """Ordered union of per-fragment candidate lists (mergetable rejoin)."""
    from repro.gdk.bat import merge_candidates

    if not parts or not all(isinstance(p, BAT) for p in parts):
        raise MALError("bat.mergecand expects candidate BATs")
    return merge_candidates(parts)


@mal_op("bat", "negative_oids", sig="oids -> cand")
def _negative_oids(ctx, b: BAT):
    """Positions of -1 entries in an oid BAT (invalid cell markers)."""
    if b.atom is not Atom.OID:
        raise MALError("bat.negative_oids needs an oid BAT")
    return BAT.from_oids(np.flatnonzero(b.tail.values < 0).astype(np.int64))
