"""MAL operator modules.

Each module registers ``module.function`` implementations into the
global :data:`REGISTRY`, mirroring how MonetDB loads MAL modules into
the interpreter's symbol table.
"""

from __future__ import annotations

import functools
import json
from typing import Any, Callable

#: (module, function) -> implementation.  Implementations receive the
#: execution context followed by evaluated argument values and return a
#: tuple of results (or a single value for single-result ops).
REGISTRY: dict[tuple[str, str], Callable] = {}


@functools.lru_cache(maxsize=1024)
def cached_loads(text: str) -> Any:
    """Memoized ``json.loads`` for instruction metadata constants.

    Compiled plans embed small JSON blobs (result names, shapes, tile
    offsets) as constant arguments; prepared re-execution would parse
    the same strings on every run.  The returned object is shared —
    callers must treat it as read-only or copy before mutating.
    """
    return json.loads(text)


def mal_op(module: str, function: str):
    """Decorator registering a MAL operator implementation."""

    def decorate(fn: Callable) -> Callable:
        REGISTRY[(module, function)] = fn
        return fn

    return decorate


def load_all() -> None:
    """Import every module so its operators register."""
    from repro.mal.modules import (  # noqa: F401
        aggr_mod,
        algebra_mod,
        array_mod,
        bat_mod,
        batcalc_mod,
        calc_mod,
        group_mod,
        mat_mod,
        sql_mod,
    )
