"""MAL operator modules.

Each module registers ``module.function`` implementations into the
global :data:`REGISTRY`, mirroring how MonetDB loads MAL modules into
the interpreter's symbol table.
"""

from __future__ import annotations

import functools
import json
from typing import Any, Callable

#: (module, function) -> implementation.  Implementations receive the
#: execution context followed by evaluated argument values and return a
#: tuple of results (or a single value for single-result ops).
REGISTRY: dict[tuple[str, str], Callable] = {}

#: (module, function) -> (signature text, side-effect class).  Parsed
#: and type-checked by ``repro.mal.analysis.signatures``; the grammar is
#: documented there.  Every entry in :data:`REGISTRY` must have one
#: (enforced by the signature-completeness check in CI), and pseudo-ops
#: the interpreter special-cases (``language.*``) declare theirs via
#: :func:`declare_op`.
SIGNATURE_DECLS: dict[tuple[str, str], tuple[str, str]] = {}


def declare_op(module: str, function: str, sig: str, effect: str = "none") -> None:
    """Declare a signature for an op without a REGISTRY implementation."""
    SIGNATURE_DECLS[(module, function)] = (sig, effect)


@functools.lru_cache(maxsize=1024)
def cached_loads(text: str) -> Any:
    """Memoized ``json.loads`` for instruction metadata constants.

    Compiled plans embed small JSON blobs (result names, shapes, tile
    offsets) as constant arguments; prepared re-execution would parse
    the same strings on every run.  The returned object is shared —
    callers must treat it as read-only or copy before mutating.
    """
    return json.loads(text)


def mal_op(module: str, function: str, sig: str | None = None, effect: str = "none"):
    """Decorator registering a MAL operator implementation.

    ``sig`` declares the op's static signature for the plan verifier
    (e.g. ``"bat, scalar, str, cand? -> cand"``); ``effect`` its
    side-effect class (``none``/``read``/``write``/``result``/``free``).
    """

    def decorate(fn: Callable) -> Callable:
        REGISTRY[(module, function)] = fn
        if sig is not None:
            SIGNATURE_DECLS[(module, function)] = (sig, effect)
        return fn

    return decorate


# Pseudo-ops without REGISTRY implementations: the interpreter
# special-cases ``language.free`` (environment eviction barrier) and
# ``language.raise`` never executes in well-formed plans.
declare_op("language", "free", "name* ->", effect="free")
declare_op("language", "raise", "any* ->", effect="result")


def load_all() -> None:
    """Import every module so its operators register."""
    from repro.mal.modules import (  # noqa: F401
        aggr_mod,
        algebra_mod,
        array_mod,
        bat_mod,
        batcalc_mod,
        calc_mod,
        group_mod,
        mat_mod,
        sql_mod,
    )
