"""MAL module ``mat`` — horizontal fragmentation (mitosis/mergetable).

MonetDB's mitosis optimizer splits large scans into horizontal
fragments and the mergetable optimizer propagates the fragment groups
through the plan, re-merging them with ``mat.pack`` where fragments
rejoin.  The same three primitives back our reproduction:

* ``mat.partition(b, i, n)`` — fragment *i* of *n* equal slices of a
  BAT, bounds computed from the *runtime* row count (cached plans stay
  correct when tables grow) and the global head range preserved;
* ``mat.pack(b1, ..., bn)`` — concatenate value fragments back into one
  BAT;
* candidate-list merging lives in ``bat.mergecand`` (ordered union).
"""

from __future__ import annotations

from repro.errors import MALError
from repro.gdk.bat import BAT, pack_bats, partition
from repro.mal.modules import mal_op


@mal_op("mat", "partition", sig="bat, int, int -> bat")
def _partition(ctx, b: BAT, index, pieces):
    if not isinstance(b, BAT):
        raise MALError("mat.partition expects a BAT")
    return partition(b, int(index), int(pieces))


@mal_op("mat", "pack", sig="bat+ -> bat")
def _pack(ctx, *parts: BAT):
    if not parts or not all(isinstance(p, BAT) for p in parts):
        raise MALError("mat.pack expects BAT fragments")
    return pack_bats(parts)


@mal_op("mat", "packgroups", sig="int, any* -> oids")
def _packgroups(ctx, count, *args):
    """Concatenate per-fragment local group ids into one shifted id BAT.

    ``args`` holds *count* group-id BATs followed by *count* per-fragment
    group counts; fragment *i*'s ids are offset by the total number of
    groups in fragments ``0..i-1``.  Projecting the result through the
    merged grouping's id BAT yields row-aligned *global* group ids.
    """
    import numpy as np

    count = int(count)
    if len(args) != 2 * count or count < 1:
        raise MALError("mat.packgroups: arity mismatch")
    groups, counts = args[:count], args[count:]
    shifted = []
    offset = 0
    for g, n in zip(groups, counts):
        if not isinstance(g, BAT):
            raise MALError("mat.packgroups expects group-id BATs")
        shifted.append(g.tail.values + offset)
        offset += int(n)
    return BAT.from_oids(np.concatenate(shifted))
