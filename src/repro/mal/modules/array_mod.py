"""MAL module ``array`` — the SciQL-specific kernel primitives.

Section 3 of the paper introduces exactly two new primitives for array
materialisation, reproduced here with their signatures:

    command array.series(start:int, step:int, stop:int, N:int, M:int)
        :bat[:oid,:int]
    pattern array.filler(cnt:lng, v:any_1) :bat[:oid,:any_1]

plus the tiling kernels the structural GROUP BY compiles into
(``array.tileagg`` and its halo-fragment sibling ``array.tilepart``)
and a relative-cell-access gather (``array.shift``) used for
expressions like ``A[x-1][y]``.

Tiling ops carry one JSON metadata constant ``{"shape": [...],
"offsets": [[...], ...]}`` — the tile spec the optimizer passes read to
compute halo extents and fragment viability.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import GDKError, MALError
from repro.gdk.atoms import Atom, atom_for_python, coerce_scalar
from repro.gdk.bat import BAT, partition_bounds
from repro.gdk.column import Column
from repro.core.tiling import TileSpec, tile_aggregate, tile_aggregate_fragment
from repro.mal.modules import cached_loads, mal_op


def series_column(start: int, step: int, stop: int, inner: int, outer: int) -> Column:
    """The ``array.series`` value pattern as a column.

    Generates the dimension values ``start, start+step, ... < stop``,
    repeating each value ``inner`` (N) times consecutively, and the
    whole sequence ``outer`` (M) times (paper, Section 3).
    """
    if step <= 0:
        raise GDKError("array.series needs a positive step")
    if inner <= 0 or outer <= 0:
        raise GDKError("array.series repetition factors must be positive")
    base = np.arange(start, stop, step, dtype=np.int64)
    values = np.tile(np.repeat(base, inner), outer)
    return Column(Atom.LNG, values)


def filler_column(count: int, value: Any, atom: Atom | None = None) -> Column:
    """The ``array.filler`` pattern as a column.

    Creates ``count`` entries of ``value``; a ``None`` value produces
    NULLs (an array attribute without a DEFAULT starts as holes).
    """
    if count < 0:
        raise GDKError("array.filler needs a non-negative count")
    if value is None:
        return Column.nulls(atom or Atom.INT, count)
    resolved = atom or atom_for_python(value)
    return Column.constant(resolved, coerce_scalar(value, resolved), count)


@mal_op("array", "series", sig="scalar, scalar, scalar, int, int -> bat")
def _series(ctx, start, step, stop, inner, outer):
    return BAT(series_column(int(start), int(step), int(stop), int(inner), int(outer)))


@mal_op("array", "filler", sig="int, scalar, str? -> bat")
def _filler(ctx, count, value, atom_name=None):
    atom = Atom(atom_name) if atom_name else None
    return BAT(filler_column(int(count), value, atom))


def _tile_meta(meta_json: str) -> tuple[tuple[int, ...], TileSpec]:
    """Decode the tile metadata constant malgen puts on tiling ops."""
    meta = cached_loads(meta_json)
    shape = tuple(meta["shape"])
    spec = TileSpec(tuple(tuple(per_dim) for per_dim in meta["offsets"]))
    return shape, spec


@mal_op("array", "tileagg", sig="bat, str, json -> bat")
def _tileagg(ctx, values: BAT, aggregate: str, meta_json: str):
    """Aggregate every anchor's tile over a cell-aligned value BAT.

    ``meta_json`` holds the dimension sizes (``shape``) and the tile
    pattern's per-dimension rank offsets (``offsets``).
    """
    if not isinstance(values, BAT):
        raise MALError("array.tileagg expects a BAT of cell values")
    shape, spec = _tile_meta(meta_json)
    return BAT(tile_aggregate(values.tail, shape, spec, aggregate))


@mal_op("array", "tilepart", sig="bat, str, json, int, int -> bat")
def _tilepart(ctx, values: BAT, aggregate: str, meta_json: str, index, pieces):
    """Halo fragment *index* of *pieces* of a tile aggregate.

    Takes the *whole* cell-aligned value BAT and computes the aggregate
    for the anchors of fragment ``index`` only — the same runtime
    ``[start, stop)`` bounds ``mat.partition`` assigns, so tilepart
    results live in the fragmented source's row space and rejoin with a
    plain ``mat.pack``.  The kernel reads a zero-copy slab widened by
    the tile's dim-0 halo, making per-fragment results byte-identical
    to the matching slice of the sequential aggregate.
    """
    if not isinstance(values, BAT):
        raise MALError("array.tilepart expects a BAT of cell values")
    shape, spec = _tile_meta(meta_json)
    start, stop = partition_bounds(len(values), int(index), int(pieces))
    fragment = tile_aggregate_fragment(
        values.tail, shape, spec, aggregate, start, stop
    )
    return BAT(fragment, hseqbase=values.hseqbase + start)


@mal_op("array", "shift", sig="bat, json, json -> bat")
def _shift(ctx, values: BAT, shape_json: str, deltas_json: str):
    """Relative cell access: entry *a* becomes ``values[a + deltas]``.

    Cells whose shifted position falls outside the array become NULL —
    the gather behind expressions such as ``A[x-1][y]`` (EdgeDetection,
    Scenario II).
    """
    if not isinstance(values, BAT):
        raise MALError("array.shift expects a BAT of cell values")
    shape = tuple(cached_loads(shape_json))
    deltas = tuple(cached_loads(deltas_json))
    if len(deltas) != len(shape):
        raise MALError("array.shift: deltas rank differs from shape")
    cell_count = int(np.prod(shape))
    if len(values) != cell_count:
        raise MALError("array.shift: value BAT not cell-aligned")
    # Compute source linear positions; -1 marks out-of-bounds.
    positions = np.arange(cell_count, dtype=np.int64)
    sources = np.zeros(cell_count, dtype=np.int64)
    valid = np.ones(cell_count, dtype=np.bool_)
    remaining = positions
    stride = cell_count
    for size, delta in zip(shape, deltas):
        stride //= size
        rank = remaining // stride
        remaining = remaining % stride
        target = rank + delta
        valid &= (target >= 0) & (target < size)
        sources += np.where(valid, target, 0) * stride
    sources = np.where(valid, sources, -1)
    return BAT(values.tail.take_with_invalid(sources))


@mal_op("array", "cellindex", sig="json, json, bat+ -> oids")
def _cellindex(ctx, shape_json: str, dims_json: str, *coordinate_bats: BAT):
    """Linear cell oids for coordinate columns; -1 for out-of-domain.

    ``dims_json`` holds ``[start, step, stop]`` per dimension so ranks
    can be derived from raw dimension values.
    """
    shape = tuple(cached_loads(shape_json))
    dims = cached_loads(dims_json)
    if len(coordinate_bats) != len(shape):
        raise MALError("array.cellindex: coordinate arity mismatch")
    n = len(coordinate_bats[0]) if coordinate_bats else 0
    oids = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=np.bool_)
    stride = int(np.prod(shape)) if shape else 1
    for (start, step, stop), size, coords in zip(dims, shape, coordinate_bats):
        stride //= size
        values = coords.tail.values.astype(np.int64)
        offset = values - start
        rank = offset // step
        ok = (values >= start) & (values < stop) & (offset % step == 0)
        ok &= coords.tail.validity()
        valid &= ok
        oids += np.where(ok, rank, 0) * stride
    return BAT.from_oids(np.where(valid, oids, -1))
