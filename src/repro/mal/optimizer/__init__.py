"""MAL optimizer pipeline (the "MAL Optimizers" box of Figure 2)."""

from repro.mal.optimizer.pipeline import (
    DEFAULT_PIPELINE,
    OptimizerPass,
    optimize,
)

__all__ = ["optimize", "OptimizerPass", "DEFAULT_PIPELINE"]
