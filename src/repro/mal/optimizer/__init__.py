"""MAL optimizer pipeline (the "MAL Optimizers" box of Figure 2)."""

from repro.mal.optimizer.pipeline import (
    DEFAULT_PIPELINE,
    MERGETABLE,
    OptimizerPass,
    build_pipeline,
    mitosis_pass,
    optimize,
)

__all__ = [
    "optimize",
    "OptimizerPass",
    "DEFAULT_PIPELINE",
    "MERGETABLE",
    "build_pipeline",
    "mitosis_pass",
]
