"""The optimizer pipeline: an ordered sequence of passes.

MonetDB applies a configurable pipeline of MAL optimizers between the
MAL generator and the interpreter; SciQL reuses that machinery
unchanged (Figure 2 marks the optimizer box grey only because array
operations flow through it).  The default pipeline here is:

    constant_fold → strength_reduction → common_terms → dead_code →
    garbage_collect
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.mal.optimizer import passes
from repro.mal.optimizer.mergetable import mergetable as _mergetable
from repro.mal.optimizer.mitosis import make_mitosis
from repro.mal.optimizer.zonemaps import zonemaps as _zonemaps
from repro.mal.program import MALProgram


@dataclass(frozen=True)
class OptimizerPass:
    """A named program-to-program transformation."""

    name: str
    apply: Callable[[MALProgram], MALProgram]


CONSTANT_FOLD = OptimizerPass("constant_fold", passes.constant_fold)
STRENGTH_REDUCTION = OptimizerPass("strength_reduction", passes.strength_reduction)
COMMON_TERMS = OptimizerPass("common_terms", passes.common_terms)
DEAD_CODE = OptimizerPass("dead_code", passes.dead_code)
GARBAGE_COLLECT = OptimizerPass("garbage_collect", passes.garbage_collect)
MERGETABLE = OptimizerPass("mergetable", _mergetable)
ZONEMAPS = OptimizerPass("zonemaps", _zonemaps)

DEFAULT_PIPELINE: tuple[OptimizerPass, ...] = (
    CONSTANT_FOLD,
    STRENGTH_REDUCTION,
    COMMON_TERMS,
    DEAD_CODE,
    GARBAGE_COLLECT,
)


def mitosis_pass(
    catalog, fragment_rows: Optional[int], nr_threads: int
) -> OptimizerPass:
    """A mitosis pass bound to a catalog and the fragmentation knobs."""
    return OptimizerPass("mitosis", make_mitosis(catalog, fragment_rows, nr_threads))


def build_pipeline(
    catalog=None,
    fragment_rows: Optional[int] = None,
    nr_threads: int = 1,
    fragmented: bool = False,
) -> tuple[OptimizerPass, ...]:
    """The optimizer pipeline for one connection's execution knobs.

    Without fragmentation this is exactly :data:`DEFAULT_PIPELINE`, so
    ``nr_threads=1, fragment_rows=inf`` keeps today's plan shapes.  With
    fragmentation enabled, mitosis/mergetable slot in after
    ``common_terms`` (CSE first means fewer distinct sources to
    fragment) and before ``dead_code`` (which then sweeps unused
    fragments and packs).
    """
    if not fragmented or catalog is None:
        return DEFAULT_PIPELINE
    return (
        CONSTANT_FOLD,
        STRENGTH_REDUCTION,
        COMMON_TERMS,
        mitosis_pass(catalog, fragment_rows, nr_threads),
        ZONEMAPS,
        MERGETABLE,
        DEAD_CODE,
        GARBAGE_COLLECT,
    )


def verification_enabled() -> bool:
    """Whether ``REPRO_VERIFY_PLANS`` asks for per-pass plan checking.

    Off by default in production (verification is compile-time only,
    but still costs a pass over every fresh plan); the test suite and
    CI turn it on so every plan the corpus produces is statically
    checked after every pass.
    """
    from repro import knobs

    return knobs.flag("REPRO_VERIFY_PLANS", False)


def optimize(
    program: MALProgram,
    pipeline: tuple[OptimizerPass, ...] = DEFAULT_PIPELINE,
    verify: Optional[bool] = None,
) -> MALProgram:
    """Run *program* through the pass pipeline and return the result.

    With ``verify`` true (or the ``REPRO_VERIFY_PLANS`` knob on), the
    static analyzer re-checks the program as generated and after every
    pass, raising :class:`~repro.errors.PlanVerificationError` naming
    the pass that produced the first broken plan.
    """
    if verify is None:
        verify = verification_enabled()
    if verify:
        from repro.mal.analysis import verify_program

        verify_program(program, phase="malgen")
        for optimizer_pass in pipeline:
            program = optimizer_pass.apply(program)
            verify_program(program, phase=optimizer_pass.name)
        return program
    for optimizer_pass in pipeline:
        program = optimizer_pass.apply(program)
    return program
