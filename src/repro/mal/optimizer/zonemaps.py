"""Zone-map pruning pass: fold predicates into the select family.

The MAL generator lowers every WHERE clause to element-wise ``batcalc``
comparisons plus one ``algebra.select`` over the resulting bit column —
simple, but it forces a full scan of the payload before the selection
sees a single row.  This pass (running after ``mitosis`` and before
``mergetable``) recognises the comparison trees feeding a select and
folds them into the value-based select family armed with zone-map
pruning:

* ``batcalc.<cmp>(col, const)`` → ``algebra.thetaselectzm``
  (either argument order; ``batcalc.not`` flips the comparison);
* ``and(ge/gt(col, lo), le/lt(col, hi))`` → ``algebra.rangeselectzm``,
  and its ``not`` → the anti-range;
* ``batcalc.isnil(col)`` (and its ``not``) → ``algebra.isnilselectzm``;
* an ``or`` tree of equalities on one column → ``algebra.inselectzm``
  (its ``not`` becomes a chain of ``!=`` theta-selects);
* conjunctions fold into *candidate chains*: the first predicate's
  candidate list feeds the next select, so each later predicate only
  examines surviving rows — a conjunct that resists folding drops to
  ``algebra.selectzm`` over its bit column at the end of the chain.

The zm ops run the identical kernels with fragment pruning armed: the
kernel consults the base column's per-zone min/max/null statistics for
the fragment's row window and short-circuits whole-fragment misses
(empty candidate list, payload untouched) and whole-fragment hits.
``mergetable`` then fans the folded selects out per fragment, candidate
chains included.  The leftover whole-column ``batcalc`` comparisons
become dead and are swept by the downstream ``dead_code`` pass.

Folding is exact under SQL's three-valued logic: the select family
never matches NULLs, which coincides with ``TRUE``-only selection over
the comparison bits for every folded shape (including negations, where
``NOT (v > 3)`` selects exactly the non-NULL rows with ``v <= 3``).
The runtime knob ``REPRO_ZONEMAPS=0`` disables only the pruning
short-circuit, not the folding — results are byte-identical either
way, so toggling it never invalidates a cached plan.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.mal.optimizer.passes import _clone_program
from repro.mal.program import Constant, Instruction, MALProgram, Var, bat_type
from repro.gdk.atoms import Atom

#: plain select-family name → pruning twin (non-folded renames).
ZONEMAP_TWINS = {
    "select": "selectzm",
    "thetaselect": "thetaselectzm",
    "rangeselect": "rangeselectzm",
    "isnilselect": "isnilselectzm",
    "inselect": "inselectzm",
}

#: batcalc comparison → theta operator.
_CMP = {"eq": "==", "ne": "!=", "gt": ">", "ge": ">=", "lt": "<", "le": "<="}
#: theta operator under swapped arguments (const <op> col).
_FLIP = {"==": "==", "!=": "!=", ">": "<", ">=": "<=", "<": ">", "<=": ">="}
#: theta operator under logical negation (NULLs excluded either way).
_NEGATE = {"==": "!=", "!=": "==", ">": "<=", ">=": "<", "<": ">=", "<=": ">"}
#: lower-bound comparisons → low_inclusive; upper → high_inclusive.
_LOWER = {">": False, ">=": True}
_UPPER = {"<": False, "<=": True}


class _Folder:
    """One program's predicate-folding state."""

    def __init__(self, program: MALProgram):
        self.program = program
        self.producers: dict[str, Instruction] = {}
        for instruction in program.instructions:
            for result in instruction.results:
                self.producers[result] = instruction
        self.out: list[Instruction] = []
        self.changed = False

    # ------------------------------------------------------------------
    # predicate tree recognition
    # ------------------------------------------------------------------
    def _producer(self, arg) -> Optional[Instruction]:
        if not isinstance(arg, Var):
            return None
        instruction = self.producers.get(arg.name)
        if (
            instruction is None
            or instruction.module != "batcalc"
            or len(instruction.results) != 1
        ):
            return None
        return instruction

    def spec_of(self, arg) -> Optional[tuple]:
        """The predicate spec produced by *arg*'s comparison tree.

        Specs: ``("theta", col, op, Constant)``,
        ``("range", col, lo, hi, li, hi_incl, anti)``,
        ``("null", col, want_null)``, ``("in", col, [values])``,
        ``("and", left_spec, right_spec)`` and ``("opaque", bit_var)``
        (an unfoldable conjunct, kept as a bit-column select).
        """
        instruction = self._producer(arg)
        if instruction is None:
            return None
        fn = instruction.function
        args = instruction.args
        if fn in _CMP and len(args) == 2:
            a, b = args
            if isinstance(a, Var) and isinstance(b, Constant):
                return ("theta", a.name, _CMP[fn], b)
            if isinstance(a, Constant) and isinstance(b, Var):
                return ("theta", b.name, _FLIP[_CMP[fn]], a)
            return None
        if fn == "isnil" and len(args) == 1 and isinstance(args[0], Var):
            return ("null", args[0].name, True)
        if fn == "not" and len(args) == 1:
            return self._negate(self.spec_of(args[0]))
        if fn == "and" and len(args) == 2:
            left = self.spec_of(args[0])
            right = self.spec_of(args[1])
            if left is None and right is None:
                return None
            ranged = self._as_range(left, right)
            if ranged is not None:
                return ranged
            if left is None:
                left = ("opaque", args[0].name) if isinstance(args[0], Var) else None
            if right is None:
                right = ("opaque", args[1].name) if isinstance(args[1], Var) else None
            if left is None or right is None:
                return None
            # Chain the foldable (prunable) side first.
            if left[0] == "opaque" and right[0] != "opaque":
                left, right = right, left
            return ("and", left, right)
        if fn == "or" and len(args) == 2:
            collected = self._collect_in(arg)
            if collected is not None:
                return collected
            return None
        return None

    @staticmethod
    def _as_range(left, right) -> Optional[tuple]:
        """Fuse two bounds on one column into a range spec."""
        if (
            left is None or right is None
            or left[0] != "theta" or right[0] != "theta"
            or left[1] != right[1]
        ):
            return None
        bounds = {}
        for _, col, op, const in (left, right):
            if op in _LOWER and "lo" not in bounds:
                bounds["lo"] = (const, _LOWER[op])
            elif op in _UPPER and "hi" not in bounds:
                bounds["hi"] = (const, _UPPER[op])
            else:
                return None
        if len(bounds) != 2:
            return None
        (lo, li), (hi, hi_incl) = bounds["lo"], bounds["hi"]
        return ("range", left[1], lo, hi, li, hi_incl, False)

    def _collect_in(self, arg) -> Optional[tuple]:
        """An ``or`` tree of equalities on one column → an IN spec."""
        instruction = self._producer(arg)
        if instruction is None:
            return None
        if instruction.function == "or" and len(instruction.args) == 2:
            left = self._collect_in(instruction.args[0])
            right = self._collect_in(instruction.args[1])
            if left is None or right is None or left[1] != right[1]:
                return None
            return ("in", left[1], left[2] + right[2])
        spec = self.spec_of(arg)
        if spec is not None and spec[0] == "theta" and spec[2] == "==":
            return ("in", spec[1], [spec[3].value])
        return None

    def _negate(self, spec) -> Optional[tuple]:
        if spec is None:
            return None
        kind = spec[0]
        if kind == "theta":
            return ("theta", spec[1], _NEGATE[spec[2]], spec[3])
        if kind == "null":
            return ("null", spec[1], not spec[2])
        if kind == "range":
            _, col, lo, hi, li, hi_incl, anti = spec
            return ("range", col, lo, hi, li, hi_incl, not anti)
        if kind == "in":
            # NOT IN ≡ a conjunction of != under three-valued logic.
            _, col, values = spec
            chain = ("theta", col, "!=", Constant(values[0]))
            for value in values[1:]:
                chain = ("and", chain, ("theta", col, "!=", Constant(value)))
            return chain
        return None  # opaque / and: stay with the bit column

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def emit_spec(self, spec, cand, result: str) -> None:
        """Emit the select chain computing *spec* into *result*."""
        tail = [cand] if cand is not None else []
        kind = spec[0]
        if kind == "and":
            link = self.program.fresh(bat_type(Atom.OID), prefix="Z")
            self.emit_spec(spec[1], cand, link)
            self.emit_spec(spec[2], Var(link), result)
            return
        if kind == "theta":
            args = [Var(spec[1]), spec[3], Constant(spec[2])] + tail
            self.out.append(Instruction("algebra", "thetaselectzm", [result], args))
        elif kind == "range":
            _, col, lo, hi, li, hi_incl, anti = spec
            args = [Var(col), lo, hi, Constant(li), Constant(hi_incl),
                    Constant(anti)] + tail
            self.out.append(Instruction("algebra", "rangeselectzm", [result], args))
        elif kind == "null":
            args = [Var(spec[1]), Constant(spec[2])] + tail
            self.out.append(Instruction("algebra", "isnilselectzm", [result], args))
        elif kind == "in":
            args = [Var(spec[1]), Constant(json.dumps(spec[2]))] + tail
            self.out.append(Instruction("algebra", "inselectzm", [result], args))
        else:  # opaque bit column
            args = [Var(spec[1])] + tail
            self.out.append(Instruction("algebra", "selectzm", [result], args))

    def fold(self) -> Optional[MALProgram]:
        for instruction in self.program.instructions:
            if instruction.module != "algebra" or len(instruction.results) != 1:
                twin = None
            else:
                twin = ZONEMAP_TWINS.get(instruction.function)
            if twin is None:
                self.out.append(instruction)
                continue
            self.changed = True
            if instruction.function == "select" and len(instruction.args) in (1, 2):
                spec = self.spec_of(instruction.args[0])
                if spec is not None and spec[0] != "opaque":
                    cand = instruction.args[1] if len(instruction.args) == 2 else None
                    self.emit_spec(spec, cand, instruction.results[0])
                    continue
            self.out.append(
                Instruction(
                    "algebra", twin, instruction.results, instruction.args,
                    instruction.comment,
                )
            )
        if not self.changed:
            return None
        return _clone_program(self.program, self.out)


def zonemaps(program: MALProgram) -> MALProgram:
    """Fold select predicates and arm zone-map pruning."""
    folded = _Folder(program).fold()
    return program if folded is None else folded
