"""Individual MAL optimizer passes.

Each pass is a pure function ``MALProgram -> MALProgram`` (programs are
rebuilt, never mutated) mirroring MonetDB's optimizer modules:

* ``constant_fold``   — evaluate ``calc.*`` over constant arguments at
  compile time and inline the results;
* ``common_terms``    — reuse the result of an earlier side-effect-free
  instruction with an identical signature (CSE);
* ``dead_code``       — drop instructions whose results are never used
  and which have no side effects;
* ``garbage_collect`` — insert ``language.free`` pseudo-ops after the
  last use of each variable so the interpreter releases BATs early.
"""

from __future__ import annotations

from typing import Any

from repro.mal.modules import REGISTRY, load_all
from repro.mal.program import Constant, Instruction, MALProgram, Var


def _clone_program(program: MALProgram, instructions: list[Instruction]) -> MALProgram:
    clone = MALProgram(program.name)
    clone.instructions = instructions
    clone.types = dict(program.types)
    clone._counter = program._counter
    clone.result_columns = list(program.result_columns)
    clone.result_kind = program.result_kind
    clone.pinned = set(program.pinned)
    clone.param_keys = tuple(program.param_keys)
    return clone


def constant_fold(program: MALProgram) -> MALProgram:
    """Evaluate scalar ``calc.*`` instructions whose arguments are constants.

    Folded values are substituted into later instructions as constants;
    the folded instruction disappears.
    """
    load_all()
    folded: dict[str, Constant] = {}
    out: list[Instruction] = []
    for instruction in program.instructions:
        new_args: list[Any] = []
        for arg in instruction.args:
            if isinstance(arg, Var) and arg.name in folded:
                new_args.append(folded[arg.name])
            else:
                new_args.append(arg)
        candidate = Instruction(
            instruction.module,
            instruction.function,
            instruction.results,
            new_args,
            instruction.comment,
        )
        if (
            candidate.module == "calc"
            and len(candidate.results) == 1
            and candidate.results[0] not in program.pinned
            and all(isinstance(a, Constant) for a in candidate.args)
        ):
            implementation = REGISTRY.get((candidate.module, candidate.function))
            if implementation is not None:
                try:
                    value = implementation(None, *[a.value for a in candidate.args])
                except Exception:
                    out.append(candidate)
                    continue
                folded[candidate.results[0]] = Constant(value)
                continue
        out.append(candidate)
    return _clone_program(program, out)


def common_terms(program: MALProgram) -> MALProgram:
    """Common subexpression elimination over side-effect-free instructions."""
    seen: dict[tuple, list[str]] = {}
    renames: dict[str, str] = {}
    out: list[Instruction] = []
    for instruction in program.instructions:
        new_args: list[Any] = []
        for arg in instruction.args:
            if isinstance(arg, Var) and arg.name in renames:
                new_args.append(Var(renames[arg.name]))
            else:
                new_args.append(arg)
        candidate = Instruction(
            instruction.module,
            instruction.function,
            instruction.results,
            new_args,
            instruction.comment,
        )
        if candidate.has_side_effects or not candidate.results:
            out.append(candidate)
            continue
        key = candidate.signature()
        prior = seen.get(key)
        if prior is not None and len(prior) == len(candidate.results):
            for mine, theirs in zip(candidate.results, prior):
                renames[mine] = theirs
            continue
        seen[key] = candidate.results
        out.append(candidate)
    clone = _clone_program(program, out)
    clone.result_columns = [
        (name, renames.get(var, var)) for name, var in program.result_columns
    ]
    clone.pinned = {renames.get(v, v) for v in program.pinned}
    return clone


def dead_code(program: MALProgram) -> MALProgram:
    """Remove side-effect-free instructions whose results are never used.

    Built on the same backward-liveness analysis the plan verifier uses
    (:func:`repro.mal.analysis.defuse.live_instructions`), so the
    eliminator and the checker can never disagree about what feeds a
    side effect or a result column.
    """
    from repro.mal.analysis.defuse import live_instructions

    keep = live_instructions(program)
    out = [ins for ins, k in zip(program.instructions, keep) if k]
    return _clone_program(program, out)


def garbage_collect(program: MALProgram) -> MALProgram:
    """Insert ``language.free`` after the last use of each variable."""
    protected = set(program.pinned)
    protected.update(var for _, var in program.result_columns)
    last_use: dict[str, int] = {}
    for index, instruction in enumerate(program.instructions):
        for used in instruction.used_vars():
            last_use[used] = index
        for result in instruction.results:
            last_use.setdefault(result, index)
    frees: dict[int, list[str]] = {}
    for variable, index in last_use.items():
        if variable in protected:
            continue
        frees.setdefault(index, []).append(variable)
    out: list[Instruction] = []
    for index, instruction in enumerate(program.instructions):
        out.append(instruction)
        if index in frees:
            out.append(
                Instruction(
                    "language",
                    "free",
                    [],
                    [Constant(name) for name in sorted(frees[index])],
                )
            )
    return _clone_program(program, out)


_NEUTRAL_RULES = {
    # (function, constant-argument index, constant value) -> pass through
    # the other argument unchanged.
    ("add", 1, 0), ("add", 0, 0),
    ("sub", 1, 0),
    ("mul", 1, 1), ("mul", 0, 1),
    ("div", 1, 1),
    ("and", 1, True), ("and", 0, True),
    ("or", 1, False), ("or", 0, False),
}

def strength_reduction(program: MALProgram) -> MALProgram:
    """Alias away applications with a neutral constant operand.

    ``x * 1``, ``x + 0``, ``x AND TRUE``, ``x OR FALSE`` (and friends)
    are NULL-transparent identities, so the result variable becomes an
    alias of the surviving operand and the instruction disappears.
    Absorbing rules (``x * 0`` → 0) are deliberately NOT applied: they
    would be wrong for NULL inputs.
    """
    renames: dict[str, Any] = {}
    out: list[Instruction] = []
    for instruction in program.instructions:
        new_args: list[Any] = []
        for arg in instruction.args:
            if isinstance(arg, Var) and arg.name in renames:
                replacement = renames[arg.name]
                new_args.append(replacement)
            else:
                new_args.append(arg)
        candidate = Instruction(
            instruction.module,
            instruction.function,
            instruction.results,
            new_args,
            instruction.comment,
        )
        if (
            candidate.module in ("batcalc", "calc")
            and len(candidate.results) == 1
            and len(candidate.args) == 2
            and candidate.results[0] not in program.pinned
        ):
            reduced = False
            for index in (0, 1):
                other = candidate.args[1 - index]
                arg = candidate.args[index]
                if (
                    isinstance(arg, Constant)
                    and isinstance(other, Var)
                    and (candidate.function, index, arg.value) in _NEUTRAL_RULES
                ):
                    # Result type must match the operand type for a pure
                    # alias; only alias within the same kind (bat/bat).
                    result_type = program.types.get(candidate.results[0])
                    operand_type = program.types.get(other.name)
                    if result_type == operand_type:
                        renames[candidate.results[0]] = Var(other.name)
                        reduced = True
                        break
            if reduced:
                continue
        out.append(candidate)
    clone = _clone_program(program, out)
    clone.result_columns = [
        (
            name,
            renames[var].name
            if var in renames and isinstance(renames[var], Var)
            else var,
        )
        for name, var in program.result_columns
    ]
    return clone
