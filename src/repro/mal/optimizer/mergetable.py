"""The ``mergetable`` optimizer pass: propagate fragment groups.

Mitosis leaves every fragmented source as ``partitions + mat.pack``;
this pass pushes the packs outward so the plan *between* source and
result runs per fragment.  Propagation rules mirror MonetDB's
mergetable optimizer:

* element-wise ``batcalc`` chains stay fragment-parallel (fragments
  keep their global head ranges, so ``algebra.select`` over a fragment
  emits globally valid candidate oids);
* the ``algebra.select`` family turns into per-fragment selections
  whose candidate fragments rejoin with ``bat.mergecand`` (ordered
  union by concatenation);
* ``algebra.projection`` fetches payloads per candidate fragment;
* ``algebra.join``/``leftjoin`` fragment their *left* side — the join
  kernels emit output in canonical left-oid order, so concatenated
  fragment results reproduce the sequential output exactly;
* ``group.group``/``subgroup`` + ``aggr.sub*`` become per-fragment
  groupings with partial aggregates, rejoined by regrouping the
  per-fragment distinct keys and merging partials
  (``aggr.mergesum``/…/``mergeavg``) — global group ids come out in
  first-appearance order, so results are byte-identical to the
  sequential plan;
* ``array.tileagg`` over a fragmented cell source becomes one
  ``array.tilepart`` *halo fragment* per source fragment: each reads
  the whole value BAT but computes only its own anchor range over a
  slab widened by the tile's dim-0 offset extent.  Fragments use the
  ``mat.partition`` bounds, so results stay in the source's row space
  and downstream element-wise consumers keep running per fragment.
  Only byte-exact combinations fragment (``count``/``count_star``/
  ``min``/``max`` always; ``sum``/``prod``/``avg`` for integer cells,
  where int64 wrapping arithmetic is exact) — float prefix sums would
  drift a ulp between slab and whole-array evaluation;
* every other consumer forces materialisation: fragments re-merge
  (``mat.pack`` / ``bat.mergecand`` / partial merges) right before the
  unsupported instruction, which keeps the pass semantics-preserving
  for arbitrary plans.

Group ids, candidate order and join order are all preserved, so a
fragmented plan returns *byte-identical* results to the sequential one.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.gdk.atoms import Atom
from repro.mal.program import (
    Constant,
    Instruction,
    MALProgram,
    Var,
    bat_type,
    scalar_type,
)
from repro.mal.optimizer.passes import _clone_program

#: element-wise operations: per-fragment application is sound whenever
#: every fragmented operand shares one row space.
ELEMENTWISE = {
    ("batcalc", name)
    for name in (
        "add", "sub", "mul", "div", "mod",
        "eq", "ne", "lt", "le", "gt", "ge",
        "and", "or", "not", "isnil", "ifthenelse",
        "negate", "abs", "math", "concat", "cast", "fillnulls",
        "lower", "upper", "length", "trim", "substring", "like",
    )
} | {("bat", "cast")}

#: selection operators: fragmented input with a global head range emits
#: per-fragment candidate lists.
SELECTS = {
    ("algebra", name)
    for name in ("select", "thetaselect", "rangeselect", "isnilselect", "inselect",
                 # zone-map twins (renamed by the zonemaps pass upstream)
                 "selectzm", "thetaselectzm", "rangeselectzm", "isnilselectzm",
                 "inselectzm")
}

#: grouped aggregates whose per-fragment partials merge exactly.
DECOMPOSABLE = {"sum", "prod", "min", "max", "count"}

#: of those, the ones that re-associate +/* — exact for integer atoms
#: (partials are exact integers) but a ulp off for floats, so floating
#: point inputs take the row-level path to stay byte-identical.
REASSOCIATING = {"sum", "prod", "avg"}

#: tiling aggregates whose halo-fragment evaluation is bit-exact for
#: every cell atom (selection/counting — no re-associated float math).
TILE_EXACT = {"count", "count_star", "min", "max"}

#: cell atoms whose tiling sums/products are exact under fragmentation
#: (int64 accumulation wraps mod 2^64 identically for slab and whole).
TILE_INT_ATOMS = {Atom.INT, Atom.LNG, Atom.OID, Atom.BIT}


class Space:
    """Identity token for one fragmented row space.

    ``aligned`` marks spaces whose fragments still carry their global
    head oids (source partitions and element-wise derivations) —
    selections and left-side joins are only fragmentable there.
    """

    __slots__ = ("aligned",)

    def __init__(self, aligned: bool):
        self.aligned = aligned


@dataclass
class GroupInfo:
    """One per-fragment grouping level (a ``group.group``/``subgroup``)."""

    space: Space
    key_vars: list[str]            # original key var per chain level
    g_parts: list[str]             # per-fragment group-id vars
    e_parts: list[str]             # per-fragment extents vars
    n_parts: list[str]             # per-fragment ngroups scalars
    #: lazily built merge state: (kx_vars per level, g2, e2, n2)
    merged: Optional[tuple] = None
    #: lazily built row-level state: (row-aligned global ids, n2)
    row: Optional[tuple] = None


@dataclass
class Entry:
    """Fragmentation state of one program variable."""

    kind: str                      # val | cand | groups | extents | ngroups | histogram | partial
    parts: list[str] = field(default_factory=list)
    space: Optional[Space] = None
    whole: Optional[str] = None    # var holding the merged value, once known
    result_space: Optional[Space] = None  # row space of projections through this var
    info: Optional[GroupInfo] = None
    agg: Optional[str] = None      # partial: aggregate name
    parts2: list[str] = field(default_factory=list)  # partial avg: count partials


class _Mergetable:
    def __init__(self, program: MALProgram):
        self.program = program
        self.out: list[Instruction] = []
        self.entries: dict[str, Entry] = {}
        self.partitions: dict[str, tuple[str, int, int]] = {}  # part -> (src, i, n)
        self.spaces: dict[Any, Space] = {}
        self.source_of: dict[str, Instruction] = {}

    # ------------------------------------------------------------------
    # emission helpers
    # ------------------------------------------------------------------
    def emit(self, module, function, results, args, comment=""):
        self.out.append(Instruction(module, function, results, list(args), comment))

    def fresh(self, mal_type, prefix="M") -> str:
        return self.program.fresh(mal_type, prefix)

    def type_of(self, var: str):
        return self.program.types.get(var, bat_type(None))

    # ------------------------------------------------------------------
    # materialisation
    # ------------------------------------------------------------------
    def resolve(self, var: str) -> str:
        """Whole-value variable for *var*, merging fragments on demand."""
        entry = self.entries.get(var)
        if entry is None:
            return var
        if entry.whole is not None:
            return entry.whole
        if entry.kind == "val":
            self.emit("mat", "pack", [var], [Var(p) for p in entry.parts])
        elif entry.kind == "cand":
            self.emit("bat", "mergecand", [var], [Var(p) for p in entry.parts])
        elif entry.kind == "partial":
            self._merge_partial(var, entry)
        elif entry.kind == "groups":
            row_groups, _ = self.ensure_row(entry.info)
            # Re-issue the row-level global ids under the original name.
            self.emit("mat", "pack", [var], [Var(row_groups)])
        elif entry.kind == "extents":
            row_groups, n2 = self.ensure_row(entry.info)
            self.emit("aggr", "firstocc", [var], [Var(row_groups), Var(n2)])
        elif entry.kind == "ngroups":
            _, _, e2, _ = self.ensure_merged(entry.info)
            self.emit("bat", "getcount", [var], [Var(e2)])
        elif entry.kind == "histogram":
            row_groups, n2 = self.ensure_row(entry.info)
            self.emit("aggr", "subcountstar", [var], [Var(row_groups), Var(n2)])
        else:  # pragma: no cover - defensive
            raise AssertionError(f"unmergeable fragment kind {entry.kind}")
        entry.whole = var
        return var

    def _merge_partial(self, var: str, entry: Entry) -> None:
        kx, g2, e2, n2 = self.ensure_merged(entry.info)
        mal_type = self.type_of(var)
        packed = self.fresh(mal_type)
        self.emit("mat", "pack", [packed], [Var(p) for p in entry.parts])
        if entry.agg == "avg":
            counts = self.fresh(bat_type(Atom.LNG))
            self.emit("mat", "pack", [counts], [Var(p) for p in entry.parts2])
            self.emit(
                "aggr", "mergeavg", [var],
                [Var(packed), Var(counts), Var(g2), Var(n2)],
            )
        else:
            self.emit(
                "aggr", f"merge{entry.agg}", [var],
                [Var(packed), Var(g2), Var(n2)],
            )

    def ensure_merged(self, info: GroupInfo) -> tuple:
        """Regroup the per-fragment distinct keys into the global grouping."""
        if info.merged is not None:
            return info.merged
        kx_vars: list[str] = []
        for key_var in info.key_vars:
            key_entry = self.entries[key_var]
            kx_parts = []
            for e_part, key_part in zip(info.e_parts, key_entry.parts):
                kx = self.fresh(self.type_of(key_var))
                self.emit(
                    "algebra", "projection", [kx], [Var(e_part), Var(key_part)]
                )
                kx_parts.append(kx)
            packed = self.fresh(self.type_of(key_var))
            self.emit("mat", "pack", [packed], [Var(p) for p in kx_parts])
            kx_vars.append(packed)
        g2 = e2 = None
        oid = bat_type(Atom.OID)
        for index, packed in enumerate(kx_vars):
            results = [self.fresh(oid), self.fresh(oid), self.fresh(oid)]
            if index == 0:
                self.emit("group", "group", results, [Var(packed)])
            else:
                self.emit("group", "subgroup", results, [Var(packed), Var(g2)])
            g2, e2, _ = results
        n2 = self.fresh(scalar_type(Atom.LNG))
        self.emit("bat", "getcount", [n2], [Var(e2)])
        info.merged = (kx_vars, g2, e2, n2)
        return info.merged

    def ensure_row(self, info: GroupInfo) -> tuple:
        """Row-aligned global group ids (the unsupported-consumer fallback)."""
        if info.row is not None:
            return info.row
        _, g2, _, n2 = self.ensure_merged(info)
        oid = bat_type(Atom.OID)
        shifted = self.fresh(oid)
        args = [Constant(len(info.g_parts))]
        args += [Var(g) for g in info.g_parts]
        args += [Var(n) for n in info.n_parts]
        self.emit("mat", "packgroups", [shifted], args)
        row_groups = self.fresh(oid)
        self.emit("algebra", "projection", [row_groups], [Var(shifted), Var(g2)])
        info.row = (row_groups, n2)
        return info.row

    # ------------------------------------------------------------------
    # per-instruction rules
    # ------------------------------------------------------------------
    def frag_of(self, arg) -> Optional[Entry]:
        if isinstance(arg, Var):
            return self.entries.get(arg.name)
        return None

    def fallback(self, instruction: Instruction) -> None:
        """Materialise every fragmented argument, then emit unchanged."""
        new_args = []
        for arg in instruction.args:
            entry = self.frag_of(arg)
            if entry is not None:
                new_args.append(Var(self.resolve(arg.name)))
            else:
                new_args.append(arg)
        self.emit(
            instruction.module,
            instruction.function,
            instruction.results,
            new_args,
            instruction.comment,
        )

    def result_space_of(self, entry: Entry) -> Space:
        if entry.result_space is None:
            entry.result_space = Space(aligned=False)
        return entry.result_space

    def handle(self, instruction: Instruction) -> None:
        module, function = instruction.module, instruction.function
        key = (module, function)

        # mitosis artefacts -------------------------------------------------
        if key == ("mat", "partition"):
            source = instruction.args[0]
            if (
                isinstance(source, Var)
                and isinstance(instruction.args[1], Constant)
                and isinstance(instruction.args[2], Constant)
            ):
                self.partitions[instruction.results[0]] = (
                    source.name,
                    instruction.args[1].value,
                    instruction.args[2].value,
                )
            self.out.append(instruction)
            return
        if key == ("mat", "pack") and self._adopt_mitosis_pack(instruction):
            return

        fragmented = [self.frag_of(arg) for arg in instruction.args]
        if not any(entry is not None for entry in fragmented):
            self.out.append(instruction)
            return

        if key in ELEMENTWISE and self._elementwise(instruction, fragmented):
            return
        if key == ("bat", "project_const") and self._project_const(
            instruction, fragmented
        ):
            return
        if key in SELECTS and self._select(instruction, fragmented):
            return
        if key in (("algebra", "projection"), ("algebra", "projectionsafe")):
            if self._projection(instruction, fragmented):
                return
        if key in (("algebra", "join"), ("algebra", "leftjoin")):
            if self._join(instruction, fragmented):
                return
        if key == ("array", "cellindex") and self._cellindex(
            instruction, fragmented
        ):
            return
        if key == ("array", "tileagg") and self._tileagg(instruction, fragmented):
            return
        if key in (("group", "group"), ("group", "subgroup")):
            if self._group(instruction, fragmented):
                return
        if key == ("bat", "getcount") and self._getcount(instruction, fragmented):
            return
        if module == "aggr" and function.startswith("sub"):
            if self._aggregate(instruction, fragmented):
                return
        self.fallback(instruction)

    def _adopt_mitosis_pack(self, instruction: Instruction) -> bool:
        """Recognise ``X := mat.pack(partitions...)`` and swallow it."""
        parts: list[str] = []
        source = None
        for index, arg in enumerate(instruction.args):
            if not isinstance(arg, Var):
                return False
            meta = self.partitions.get(arg.name)
            if meta is None or meta[1] != index or meta[2] != len(instruction.args):
                return False
            if source is None:
                source = meta[0]
            elif source != meta[0]:
                return False
            parts.append(arg.name)
        if source is None:
            return False
        origin = self.source_of.get(source)
        if (
            origin is not None
            and origin.module == "sql"
            and origin.function == "bind"
            and isinstance(origin.args[0], Constant)
        ):
            space_key = ("bind", origin.args[0].value, len(parts))
        else:
            space_key = ("source", source)
        space = self.spaces.setdefault(space_key, Space(aligned=True))
        self.entries[instruction.results[0]] = Entry(
            "val", parts=parts, space=space, whole=source
        )
        return True

    def _shared_space(self, fragmented: list[Optional[Entry]]) -> Optional[Space]:
        """The single row space of the fragmented val operands, if any."""
        space = None
        for entry in fragmented:
            if entry is None:
                continue
            if entry.kind != "val" or entry.space is None:
                return None
            if space is None:
                space = entry.space
            elif entry.space is not space:
                return None
        return space

    def _has_unfragmented_bat(self, instruction, fragmented) -> bool:
        """True when an *unfragmented* BAT operand would misalign fragments."""
        for arg, entry in zip(instruction.args, fragmented):
            if entry is not None or not isinstance(arg, Var):
                continue
            mal_type = self.program.types.get(arg.name)
            if mal_type is not None and mal_type.kind == "bat":
                return True
        return False

    def _per_fragment(
        self,
        instruction: Instruction,
        fragmented: list[Optional[Entry]],
        space: Space,
        kind: str = "val",
    ) -> Entry:
        """Emit one copy of *instruction* per fragment; register the entry."""
        pieces = len(next(e.parts for e in fragmented if e is not None))
        result = instruction.results[0]
        mal_type = self.type_of(result)
        parts = []
        for index in range(pieces):
            args = []
            for arg, entry in zip(instruction.args, fragmented):
                if entry is not None:
                    args.append(Var(entry.parts[index]))
                else:
                    args.append(arg)
            part = self.fresh(mal_type)
            self.emit(
                instruction.module, instruction.function, [part], args,
                instruction.comment,
            )
            parts.append(part)
        entry = Entry(kind, parts=parts, space=space)
        self.entries[result] = entry
        return entry

    def _elementwise(self, instruction, fragmented) -> bool:
        if len(instruction.results) != 1:
            return False
        space = self._shared_space(fragmented)
        if space is None or self._has_unfragmented_bat(instruction, fragmented):
            return False
        self._per_fragment(instruction, fragmented, space)
        return True

    def _project_const(self, instruction, fragmented) -> bool:
        """Constant broadcast follows its reference's fragmentation."""
        if len(instruction.results) != 1:
            return False
        ref = fragmented[0]
        if ref is None or any(e is not None for e in fragmented[1:]):
            return False
        if ref.kind == "val":
            self._per_fragment(instruction, fragmented, ref.space)
            return True
        if ref.kind == "cand":
            entry = self._per_fragment(
                instruction, fragmented, self.result_space_of(ref)
            )
            entry.space = self.result_space_of(ref)
            return True
        return False

    def _select(self, instruction, fragmented) -> bool:
        predicate = fragmented[0]
        if (
            predicate is None
            or predicate.kind != "val"
            or predicate.space is None
            or not predicate.space.aligned
            or self._has_unfragmented_bat(instruction, fragmented)
            or len(instruction.results) != 1
        ):
            return False
        # A trailing candidate list may itself be fragmented, but only
        # as the candidate fragments of the same space: fragment i's
        # candidates lie inside fragment i's head range, so pairing
        # them per index is exact (zone-map chains emit this shape).
        for entry in fragmented[1:]:
            if entry is not None and not (
                entry.kind == "cand" and entry.space is predicate.space
            ):
                return False
        self._per_fragment(instruction, fragmented, predicate.space, kind="cand")
        return True

    def _projection(self, instruction, fragmented) -> bool:
        index_entry = fragmented[0]
        if (
            index_entry is None
            or index_entry.kind not in ("val", "cand")
            or len(instruction.results) != 1
            or len(instruction.args) != 2
        ):
            return False
        base_arg = instruction.args[1]
        if not isinstance(base_arg, Var):
            return False
        base_entry = fragmented[1]
        if base_entry is not None and base_entry.kind == "extents":
            return False  # grouped-key projection: handled by caller fallback path
        base = self.resolve(base_arg.name)
        result = instruction.results[0]
        mal_type = self.type_of(result)
        parts = []
        for part in index_entry.parts:
            fetched = self.fresh(mal_type)
            self.emit(
                instruction.module, instruction.function, [fetched],
                [Var(part), Var(base)], instruction.comment,
            )
            parts.append(fetched)
        self.entries[result] = Entry(
            "val", parts=parts, space=self.result_space_of(index_entry)
        )
        return True

    def _join(self, instruction, fragmented) -> bool:
        left = fragmented[0]
        if (
            left is None
            or left.kind != "val"
            or left.space is None
            or not left.space.aligned
            or len(instruction.results) != 2
        ):
            return False
        if any(
            isinstance(arg, Var) and self.frag_of(arg) is not None
            for arg in instruction.args[2:]
        ):
            return False
        right = instruction.args[1]
        right_var = self.resolve(right.name) if isinstance(right, Var) else None
        if right_var is None:
            return False
        lresult, rresult = instruction.results
        join_space = Space(aligned=False)
        lparts, rparts = [], []
        oid = bat_type(Atom.OID)
        for part in left.parts:
            lo, ro = self.fresh(oid), self.fresh(oid)
            args = [Var(part), Var(right_var)] + list(instruction.args[2:])
            self.emit(
                instruction.module, instruction.function, [lo, ro], args,
                instruction.comment,
            )
            lparts.append(lo)
            rparts.append(ro)
        self.entries[lresult] = Entry(
            "cand", parts=lparts, space=left.space, result_space=join_space
        )
        self.entries[rresult] = Entry(
            "cand", parts=rparts, space=None, result_space=join_space
        )
        return True

    def _cellindex(self, instruction, fragmented) -> bool:
        if len(instruction.results) != 1:
            return False
        space = self._shared_space(fragmented)
        if space is None or self._has_unfragmented_bat(instruction, fragmented):
            return False
        self._per_fragment(instruction, fragmented, space)
        return True

    def _tileagg(self, instruction, fragmented) -> bool:
        """Split a tile aggregate into halo fragments (``array.tilepart``).

        Every fragment consumes the *whole* value BAT (usually free —
        the merged source var for mitosis packs) and computes only its
        ``mat.partition`` anchor range over a halo-widened slab.  The
        result fragments stay in the value's row space, so downstream
        element-wise consumers (e.g. Life's ``SUM(v) - v``) keep
        running per fragment.
        """
        entry = fragmented[0]
        if (
            entry is None
            or entry.kind != "val"
            or entry.space is None
            or not entry.space.aligned
            or any(e is not None for e in fragmented[1:])
            or len(instruction.results) != 1
            or len(instruction.args) != 3
        ):
            return False
        agg_arg, meta_arg = instruction.args[1], instruction.args[2]
        if not isinstance(agg_arg, Constant) or not isinstance(agg_arg.value, str):
            return False
        if not isinstance(meta_arg, Constant) or not isinstance(meta_arg.value, str):
            return False
        aggregate = agg_arg.value.lower()
        if aggregate not in TILE_EXACT:
            # Re-associating aggregate: fragment only integer cells,
            # where slab evaluation is bit-exact (mod-2^64 arithmetic).
            value_atom = self.type_of(instruction.args[0].name).atom
            if value_atom not in TILE_INT_ATOMS:
                return False
        try:
            meta = json.loads(meta_arg.value)
            rows0 = int(meta["shape"][0])
            offsets0 = [int(o) for o in meta["offsets"][0]]
        except (ValueError, KeyError, IndexError, TypeError):
            return False
        pieces = len(entry.parts)
        halo = max(offsets0) - min(offsets0)
        if pieces < 2 or rows0 < pieces * (halo + 1):
            return False  # halo would dominate the per-fragment slab
        whole = self.resolve(instruction.args[0].name)
        result = instruction.results[0]
        mal_type = self.type_of(result)
        parts = []
        for index in range(pieces):
            part = self.fresh(mal_type)
            self.emit(
                "array", "tilepart",
                [part],
                [Var(whole), agg_arg, meta_arg, Constant(index), Constant(pieces)],
                instruction.comment,
            )
            parts.append(part)
        self.entries[result] = Entry("val", parts=parts, space=entry.space)
        return True

    def _group(self, instruction, fragmented) -> bool:
        if len(instruction.results) != 3:
            return False
        key_entry = fragmented[0]
        if key_entry is None or key_entry.kind != "val":
            return False
        if instruction.function == "subgroup":
            parent = fragmented[1]
            if (
                parent is None
                or parent.kind != "groups"
                or parent.info.space is not key_entry.space
            ):
                return False
            parent_info = parent.info
        else:
            if len(instruction.args) != 1:
                return False
            parent_info = None
        g_var, e_var, h_var = instruction.results
        oid = bat_type(Atom.OID)
        g_parts, e_parts, n_parts = [], [], []
        for index, key_part in enumerate(key_entry.parts):
            results = [self.fresh(oid), self.fresh(oid), self.fresh(oid)]
            if parent_info is None:
                self.emit("group", "group", results, [Var(key_part)])
            else:
                self.emit(
                    "group", "subgroup", results,
                    [Var(key_part), Var(parent_info.g_parts[index])],
                )
            g_parts.append(results[0])
            e_parts.append(results[1])
            n_part = self.fresh(scalar_type(Atom.LNG))
            self.emit("bat", "getcount", [n_part], [Var(results[1])])
            n_parts.append(n_part)
        key_vars = (list(parent_info.key_vars) if parent_info else []) + [
            instruction.args[0].name
        ]
        info = GroupInfo(
            space=key_entry.space,
            key_vars=key_vars,
            g_parts=g_parts,
            e_parts=e_parts,
            n_parts=n_parts,
        )
        self.entries[g_var] = Entry("groups", parts=g_parts, info=info)
        self.entries[e_var] = Entry("extents", parts=e_parts, info=info)
        self.entries[h_var] = Entry("histogram", info=info)
        return True

    def _getcount(self, instruction, fragmented) -> bool:
        entry = fragmented[0]
        if entry is None or entry.kind != "extents":
            return False
        self.entries[instruction.results[0]] = Entry(
            "ngroups", parts=entry.info.n_parts, info=entry.info
        )
        return True

    def _aggregate(self, instruction, fragmented) -> bool:
        function = instruction.function
        star = function == "subcountstar"
        groups_pos = 0 if star else 1
        if len(instruction.args) <= groups_pos:
            return False
        groups_entry = fragmented[groups_pos]
        if groups_entry is None or groups_entry.kind != "groups":
            return False
        info = groups_entry.info
        result = instruction.results[0]
        name = function[3:]  # strip "sub"
        value_entry = None if star else fragmented[0]
        decomposable = star or name in DECOMPOSABLE or name == "avg"
        if decomposable and not star and name in REASSOCIATING:
            # Float partials re-associate the accumulation and drift a
            # ulp from the sequential result; integer partials are exact.
            value_atom = (
                self.type_of(instruction.args[0].name).atom
                if isinstance(instruction.args[0], Var)
                else None
            )
            if value_atom not in (Atom.INT, Atom.LNG):
                decomposable = False
        value_ok = star or (
            value_entry is not None
            and value_entry.kind == "val"
            and value_entry.space is info.space
        )
        if decomposable and value_ok:
            mal_type = self.type_of(result)
            if name == "avg":
                sums, counts = [], []
                for index in range(len(info.g_parts)):
                    s = self.fresh(bat_type(None))
                    self.emit(
                        "aggr", "subsum", [s],
                        [
                            Var(value_entry.parts[index]),
                            Var(info.g_parts[index]),
                            Var(info.n_parts[index]),
                        ],
                    )
                    c = self.fresh(bat_type(Atom.LNG))
                    self.emit(
                        "aggr", "subcount", [c],
                        [
                            Var(value_entry.parts[index]),
                            Var(info.g_parts[index]),
                            Var(info.n_parts[index]),
                        ],
                    )
                    sums.append(s)
                    counts.append(c)
                self.entries[result] = Entry(
                    "partial", parts=sums, parts2=counts, info=info, agg="avg"
                )
                return True
            parts = []
            for index in range(len(info.g_parts)):
                part = self.fresh(mal_type)
                args = []
                if not star:
                    args.append(Var(value_entry.parts[index]))
                args.append(Var(info.g_parts[index]))
                args.append(Var(info.n_parts[index]))
                self.emit("aggr", function, [part], args)
                parts.append(part)
            self.entries[result] = Entry(
                "partial",
                parts=parts,
                info=info,
                agg="count" if star else name,
            )
            return True
        # Non-decomposable aggregate (or a value the fragments cannot
        # reach): rebuild row-level global group ids and run the plain
        # kernel over the merged rows.
        row_groups, n2 = self.ensure_row(info)
        args = []
        if not star:
            value_arg = instruction.args[0]
            value_var = (
                self.resolve(value_arg.name)
                if isinstance(value_arg, Var)
                else None
            )
            if value_var is None:
                return False
            args.append(Var(value_var))
        args.append(Var(row_groups))
        args.append(Var(n2))
        self.emit("aggr", function, [result], args, instruction.comment)
        return True

    # ------------------------------------------------------------------
    # extents projections (grouped keys)
    # ------------------------------------------------------------------
    def _extents_projection(self, instruction: Instruction) -> bool:
        """``projection(extents, key)`` ⇒ project the merged grouping."""
        if (
            instruction.module != "algebra"
            or instruction.function != "projection"
            or len(instruction.args) != 2
            or len(instruction.results) != 1
        ):
            return False
        extents_arg, key_arg = instruction.args
        if not isinstance(extents_arg, Var) or not isinstance(key_arg, Var):
            return False
        extents_entry = self.entries.get(extents_arg.name)
        if extents_entry is None or extents_entry.kind != "extents":
            return False
        info = extents_entry.info
        if key_arg.name in info.key_vars:
            kx_vars, _, e2, _ = self.ensure_merged(info)
            level = info.key_vars.index(key_arg.name)
            self.emit(
                "algebra", "projection", instruction.results,
                [Var(e2), Var(kx_vars[level])], instruction.comment,
            )
            return True
        return False

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def run(self) -> MALProgram:
        for index, instruction in enumerate(self.program.instructions):
            for result in instruction.results:
                self.source_of[result] = instruction
            if self._extents_projection(instruction):
                continue
            self.handle(instruction)
        # Anything pinned must stay addressable by name.
        for name in self.program.pinned | {
            var for _, var in self.program.result_columns
        }:
            entry = self.entries.get(name)
            if entry is not None and entry.whole is None:
                self.resolve(name)
        clone = _clone_program(self.program, self.out)
        return clone


def mergetable(program: MALProgram) -> MALProgram:
    """Push mitosis packs outward, turning the plan fragment-parallel."""
    return _Mergetable(program).run()
