"""The ``mitosis`` optimizer pass: split large scans into fragments.

MonetDB's mitosis pass rewrites each large persistent-column bind into
N horizontal fragments so the dataflow scheduler can run the plan
fragment-parallel.  Our reproduction fragments the two bulk sources a
plan can have:

* ``sql.bind`` of a table/array column — fragment count sized from the
  catalog's current row count;
* ``array.series`` with constant arguments — fragment count derived
  from the series cardinality.

Each fragmented source ``X`` is followed by::

    X#0 := mat.partition(X, 0, N);
    ...
    Xm  := mat.pack(X#0, ..., X#N-1);

and later uses of ``X`` are renamed to ``Xm``.  The pack immediately
re-merges, so mitosis alone is semantics-preserving (and measurably a
no-op apart from one concatenation); the :mod:`mergetable
<repro.mal.optimizer.mergetable>` pass then pushes the packs outward,
turning the consumers per-fragment.  Partition *bounds* are computed at
runtime from the actual row count, so cached plans survive appends; the
fragment *count* is fixed at optimize time from the knobs.
"""

from __future__ import annotations

import json
import math
from typing import Optional

from repro.mal.program import Constant, Instruction, MALProgram, Var, bat_type
from repro.mal.optimizer.passes import _clone_program

#: never split a source into more fragments than this.
MAX_FRAGMENTS = 64

#: in auto mode (``fragment_rows=None``) only sources at least this
#: large are fragmented, so small/interactive plans keep their shape.
AUTO_MIN_ROWS = 32768

#: a halo-fragmented tiling source keeps at least this many dim-0 rows
#: per fragment *per halo row*, bounding the duplicated slab work.
HALO_ROWS_FACTOR = 2


def tiling_fragment_caps(program: MALProgram) -> dict[int, int]:
    """Per-cell-count fragment caps derived from the plan's tiling ops.

    ``array.tileagg`` carries its tile-spec metadata (shape + offsets)
    as a JSON constant; a source feeding it can only run halo-parallel
    (``array.tilepart``) when each fragment's dim-0 slab is not
    dominated by the halo it duplicates.  For every tiling op this
    derives ``max(1, rows0 // (HALO_ROWS_FACTOR * (halo + 1)))`` and
    keys it by the op's cell count, so mitosis can cap exactly the
    sources that are cell-aligned with a tiled array and leave every
    other scan at full fragmentation.
    """
    caps: dict[int, int] = {}
    for instruction in program.instructions:
        if (instruction.module, instruction.function) != ("array", "tileagg"):
            continue
        meta_arg = instruction.args[2] if len(instruction.args) > 2 else None
        if not isinstance(meta_arg, Constant) or not isinstance(meta_arg.value, str):
            continue
        try:
            meta = json.loads(meta_arg.value)
            shape = [int(s) for s in meta["shape"]]
            offsets0 = [int(o) for o in meta["offsets"][0]]
        except (ValueError, KeyError, IndexError, TypeError):
            continue
        cells = 1
        for size in shape:
            cells *= size
        if cells <= 0 or not offsets0:
            continue
        halo = max(offsets0) - min(offsets0)
        cap = max(1, shape[0] // (HALO_ROWS_FACTOR * (halo + 1)))
        caps[cells] = min(caps.get(cells, cap), cap)
    return caps


def fragment_count(
    rows: int, fragment_rows: Optional[int], nr_threads: int
) -> int:
    """How many fragments a source of *rows* rows should split into.

    An explicit ``fragment_rows`` knob gives ``ceil(rows /
    fragment_rows)``; auto mode targets one fragment per worker thread
    for sources past :data:`AUTO_MIN_ROWS`.  Either way the count is
    capped at :data:`MAX_FRAGMENTS` and floors at 1 (no fragmentation).
    """
    if rows <= 1:
        return 1
    if fragment_rows is None:
        if nr_threads <= 1 or rows < AUTO_MIN_ROWS:
            return 1
        pieces = nr_threads
    elif not math.isfinite(fragment_rows) or fragment_rows <= 0:
        return 1
    else:
        pieces = -(-rows // int(fragment_rows))
    return max(1, min(int(pieces), MAX_FRAGMENTS, rows))


def _series_rows(instruction: Instruction) -> Optional[int]:
    """Cardinality of an ``array.series`` call with constant arguments."""
    values = []
    for arg in instruction.args:
        if not isinstance(arg, Constant) or not isinstance(arg.value, int):
            return None
        values.append(arg.value)
    if len(values) != 5:
        return None
    start, step, stop, inner, outer = values
    if step <= 0 or inner <= 0 or outer <= 0:
        return None
    base = max(0, -(-(stop - start) // step))
    return base * inner * outer


def make_mitosis(catalog, fragment_rows: Optional[int], nr_threads: int):
    """Build a mitosis pass bound to *catalog* and the fragmentation knobs."""

    def mitosis(program: MALProgram) -> MALProgram:
        out: list[Instruction] = []
        renames: dict[str, str] = {}
        halo_caps = tiling_fragment_caps(program)
        for instruction in program.instructions:
            if renames:
                new_args = [
                    Var(renames[a.name])
                    if isinstance(a, Var) and a.name in renames
                    else a
                    for a in instruction.args
                ]
                instruction = Instruction(
                    instruction.module,
                    instruction.function,
                    instruction.results,
                    new_args,
                    instruction.comment,
                )
            out.append(instruction)
            rows = None
            if (
                instruction.module == "sql"
                and instruction.function == "bind"
                and len(instruction.results) == 1
                and isinstance(instruction.args[0], Constant)
            ):
                try:
                    rows = catalog.get(instruction.args[0].value).count
                except Exception:
                    rows = None
            elif (
                instruction.module == "array"
                and instruction.function == "series"
                and len(instruction.results) == 1
            ):
                rows = _series_rows(instruction)
            if rows is None:
                continue
            pieces = fragment_count(rows, fragment_rows, nr_threads)
            if rows in halo_caps:
                # The source is cell-aligned with a tiled array: keep
                # fragments wide enough that halo tiling stays viable.
                pieces = min(pieces, halo_caps[rows])
            if pieces < 2:
                continue
            source = instruction.results[0]
            if source in program.pinned:
                continue
            mal_type = program.types.get(source, bat_type(None))
            parts: list[str] = []
            for index in range(pieces):
                part = program.fresh(mal_type, prefix="F")
                parts.append(part)
                out.append(
                    Instruction(
                        "mat", "partition",
                        [part],
                        [Var(source), Constant(index), Constant(pieces)],
                    )
                )
            merged = program.fresh(mal_type, prefix="F")
            out.append(
                Instruction(
                    "mat", "pack", [merged], [Var(p) for p in parts],
                    comment=f"mitosis {source} x{pieces}",
                )
            )
            renames[source] = merged
        clone = _clone_program(program, out)
        clone.result_columns = [
            (name, renames.get(var, var)) for name, var in program.result_columns
        ]
        clone.pinned = {renames.get(v, v) for v in program.pinned}
        return clone

    return mitosis
