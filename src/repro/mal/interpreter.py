"""The MAL interpreter.

Executes a :class:`~repro.mal.program.MALProgram` instruction by
instruction against the module registry, exactly like MonetDB's MAL
interpreter walks the compiled plan (paper, Figure 2).  The execution
context carries the catalog (for ``sql.*`` side effects) and collects
the statement result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import MALError
from repro.catalog import Catalog
from repro.gdk.bat import BAT
from repro.mal.modules import REGISTRY, load_all
from repro.mal.program import Constant, Instruction, MALProgram, Param, Var


@dataclass
class ExecutionContext:
    """Mutable state shared by every instruction of one execution."""

    catalog: Catalog
    result: Any = None
    affected: int = 0
    variables: dict[str, Any] = field(default_factory=dict)
    #: bind-parameter values for this execution (key -> Python scalar).
    params: dict[Any, Any] = field(default_factory=dict)


@dataclass
class ExecutionStats:
    """Profiling counters for one program run (used by benchmarks).

    ``rows_processed`` totals the BAT rows consumed by every executed
    instruction; ``rows_per_operation`` breaks that down per MAL
    operation.  Candidate-list propagation shows up here directly: the
    fewer payload copies the plan materializes, the fewer rows flow
    through ``algebra.projection``.
    """

    instructions_executed: int = 0
    per_operation: dict[str, int] = field(default_factory=dict)
    rows_processed: int = 0
    rows_per_operation: dict[str, int] = field(default_factory=dict)


class Interpreter:
    """Dispatching interpreter over the MAL module registry."""

    def __init__(self, catalog: Catalog):
        load_all()
        self.catalog = catalog

    def run(
        self,
        program: MALProgram,
        collect_stats: bool = False,
        params: dict | None = None,
    ) -> tuple[ExecutionContext, ExecutionStats]:
        """Execute *program*; returns the final context and statistics.

        ``params`` supplies the values for any late-bound
        :class:`~repro.mal.program.Param` operands of the program
        (prepared-statement re-execution).
        """
        context = ExecutionContext(self.catalog, params=params or {})
        stats = ExecutionStats()
        env: dict[str, Any] = {}
        for instruction in program.instructions:
            if instruction.module == "language" and instruction.function == "free":
                # Garbage-collection pseudo-op inserted by the optimizer.
                for arg in instruction.args:
                    if isinstance(arg, Constant):
                        env.pop(arg.value, None)
                continue
            rows = self._execute(instruction, env, context, collect_stats)
            if collect_stats:
                stats.instructions_executed += 1
                key = f"{instruction.module}.{instruction.function}"
                stats.per_operation[key] = stats.per_operation.get(key, 0) + 1
                stats.rows_processed += rows
                stats.rows_per_operation[key] = (
                    stats.rows_per_operation.get(key, 0) + rows
                )
        return context, stats

    def _execute(
        self,
        instruction: Instruction,
        env: dict[str, Any],
        context: ExecutionContext,
        count_rows: bool = False,
    ) -> int:
        """Execute one instruction; returns the BAT rows it consumed.

        Row accounting only runs under *count_rows* so the non-profiled
        dispatch loop stays untouched.
        """
        implementation = REGISTRY.get((instruction.module, instruction.function))
        if implementation is None:
            raise MALError(
                f"undefined MAL operation {instruction.module}.{instruction.function}"
            )
        args = []
        rows = 0
        for arg in instruction.args:
            if isinstance(arg, Var):
                if arg.name not in env:
                    raise MALError(f"variable {arg.name!r} not bound at runtime")
                value = env[arg.name]
                if count_rows and isinstance(value, BAT):
                    rows += len(value)
                args.append(value)
            elif isinstance(arg, Param):
                try:
                    args.append(context.params[arg.key])
                except KeyError:
                    raise MALError(f"unbound statement parameter {arg}") from None
            else:
                args.append(arg.value)
        try:
            output = implementation(context, *args)
        except MALError:
            raise
        except Exception as exc:  # surface kernel errors with MAL context
            raise MALError(
                f"{instruction.module}.{instruction.function} failed: {exc}"
            ) from exc
        if not instruction.results:
            return rows
        if len(instruction.results) == 1:
            env[instruction.results[0]] = output
        else:
            if not isinstance(output, tuple) or len(output) != len(instruction.results):
                raise MALError(
                    f"{instruction.module}.{instruction.function}: arity mismatch"
                )
            for name, value in zip(instruction.results, output):
                env[name] = value
        return rows
