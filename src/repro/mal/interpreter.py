"""The MAL interpreter: sequential reference and dataflow scheduler.

The sequential path executes a :class:`~repro.mal.program.MALProgram`
instruction by instruction against the module registry, exactly like
MonetDB's MAL interpreter walks the compiled plan (paper, Figure 2).

With ``nr_threads > 1`` the interpreter instead runs MonetDB's
*dataflow* discipline: instructions whose inputs are all resolved
dispatch to a thread pool, so the independent fragments produced by the
mitosis/mergetable optimizer passes execute concurrently (the NumPy
kernels release the GIL, so fragment-parallel select/calc/aggregate
work scales on real cores).  Side-effecting instructions act as
barriers, which preserves program order for catalog mutation and result
delivery; ``nr_threads=1`` keeps the exact sequential behaviour.

One interpreter (and its worker pool) is shared by every session of a
:class:`~repro.engine.database.Database`: each :meth:`Interpreter.run`
resolves catalog binds through the *catalog snapshot passed for that
execution* — the session's transaction fork or the committed head —
never through shared mutable state, so concurrent sessions schedule
onto one pool without observing each other's uncommitted writes.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Callable, Optional, Union

from repro.errors import MALError
from repro.catalog import Catalog
from repro.gdk import storage as gdk_storage
from repro.gdk.bat import BAT
from repro.lifecycle import QueryContext
from repro.mal.modules import REGISTRY, load_all
from repro.mal.program import Constant, Instruction, MALProgram, Param, Var

#: instructions whose largest BAT input is below this row count run on
#: the scheduler thread — pool dispatch overhead would dominate.
PARALLEL_MIN_ROWS = 4096

#: operations that are (near) zero-cost regardless of input size —
#: never worth a pool round-trip.  ``mat.partition`` returns a view.
INLINE_OPS = {("mat", "partition"), ("bat", "getcount"), ("bat", "mirror")}


def _bat_bytes(bat: BAT) -> int:
    """Approximate heap bytes of one BAT tail (values + null mask)."""
    tail = bat.tail
    nbytes = tail.values.nbytes
    if tail.mask is not None:
        nbytes += tail.mask.nbytes
    return nbytes


def _output_cost(output: Any) -> tuple[int, int]:
    """(bytes, rows) one instruction materialised, for budget accounting."""
    if isinstance(output, BAT):
        return _bat_bytes(output), len(output)
    if isinstance(output, tuple):
        nbytes = 0
        rows = 0
        for item in output:
            if isinstance(item, BAT):
                nbytes += _bat_bytes(item)
                rows += len(item)
        return nbytes, rows
    return 0, 0


@dataclass
class ExecutionContext:
    """Mutable state shared by every instruction of one execution."""

    catalog: Catalog
    result: Any = None
    affected: int = 0
    variables: dict[str, Any] = field(default_factory=dict)
    #: bind-parameter values for this execution (key -> Python scalar).
    params: dict[Any, Any] = field(default_factory=dict)
    #: governance state (cancellation token, deadline, memory budget)
    #: polled at every instruction dispatch; None = ungoverned run.
    query: Optional[QueryContext] = None


@dataclass
class ExecutionStats:
    """Profiling counters for one program run (used by benchmarks).

    ``rows_processed`` totals the BAT rows consumed by every executed
    instruction; ``rows_per_operation`` breaks that down per MAL
    operation.  ``seconds_per_operation`` / ``instruction_timings``
    hold per-instruction wall-clock time (collected under
    ``collect_stats``), ``parallel_batches`` counts the dataflow
    scheduling waves that dispatched more than one instruction
    concurrently — 0 for a fully sequential run — and
    ``halo_fragments`` counts the ``array.tilepart`` halo-fragment
    evaluations a fragmented tiling plan executed (0 when tiling ran
    whole-array).
    """

    instructions_executed: int = 0
    per_operation: dict[str, int] = field(default_factory=dict)
    rows_processed: int = 0
    rows_per_operation: dict[str, int] = field(default_factory=dict)
    #: cumulative wall-clock seconds per MAL operation.
    seconds_per_operation: dict[str, float] = field(default_factory=dict)
    #: (instruction index, "module.function", wall seconds) per executed
    #: instruction, in completion order.
    instruction_timings: list[tuple[int, str, float]] = field(default_factory=list)
    #: dataflow waves with >= 2 instructions in flight.
    parallel_batches: int = 0
    #: halo-fragment tiling kernels executed (array.tilepart calls).
    halo_fragments: int = 0
    #: fragments the select kernels skipped wholesale via zone maps.
    fragments_pruned: int = 0
    #: bytes of memory-mapped payload the scan kernels touched.
    bytes_faulted: int = 0

    def record(self, index: int, instruction: Instruction, rows: int, seconds: float) -> None:
        key = f"{instruction.module}.{instruction.function}"
        self.instructions_executed += 1
        self.per_operation[key] = self.per_operation.get(key, 0) + 1
        self.rows_processed += rows
        self.rows_per_operation[key] = self.rows_per_operation.get(key, 0) + rows
        self.seconds_per_operation[key] = (
            self.seconds_per_operation.get(key, 0.0) + seconds
        )
        if key == "array.tilepart":
            self.halo_fragments += 1
        self.instruction_timings.append((index, key, seconds))


class Interpreter:
    """Dispatching interpreter over the MAL module registry.

    ``catalog`` is the default bind target: either a
    :class:`~repro.catalog.Catalog` or a zero-argument callable
    returning one (a *provider* — the engine passes the database head
    so raw ``interpreter.run(program)`` calls always see the latest
    committed version).  Individual :meth:`run` calls override it with
    the snapshot the statement must execute against.
    """

    def __init__(
        self,
        catalog: Union[Catalog, Callable[[], Catalog], None] = None,
        nr_threads: int = 1,
    ):
        load_all()
        self.catalog = catalog
        self.nr_threads = max(1, int(nr_threads))
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pool_lock = Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        with self._pool_lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def set_threads(self, nr_threads: int) -> None:
        """Change the worker count; tears down any existing pool.

        Not safe while other sessions are mid-execution on the shared
        pool — resize at session-setup time.
        """
        nr_threads = max(1, int(nr_threads))
        if nr_threads != self.nr_threads:
            self.close()
            self.nr_threads = nr_threads

    def _pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.nr_threads,
                    thread_name_prefix="mal-dataflow",
                )
            return self._executor

    def _default_catalog(self) -> Catalog:
        if callable(self.catalog):
            return self.catalog()
        if self.catalog is None:
            raise MALError("interpreter has no catalog to execute against")
        return self.catalog

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def run(
        self,
        program: MALProgram,
        collect_stats: bool = False,
        params: dict | None = None,
        *,
        catalog: Optional[Catalog] = None,
        nr_threads: Optional[int] = None,
        query: Optional[QueryContext] = None,
    ) -> tuple[ExecutionContext, ExecutionStats]:
        """Execute *program*; returns the final context and statistics.

        ``params`` supplies the values for any late-bound
        :class:`~repro.mal.program.Param` operands of the program
        (prepared-statement re-execution).  ``catalog`` is the snapshot
        this execution binds against (default: the interpreter's own);
        ``nr_threads`` lets a session request sequential execution (1)
        or dataflow scheduling on the shared pool.  ``query`` is the
        statement's governance context: its cancellation token,
        deadline and memory budget are enforced at every instruction
        boundary (see :class:`~repro.lifecycle.QueryContext`).
        """
        if catalog is None:
            catalog = self._default_catalog()
        threads = self.nr_threads if nr_threads is None else max(1, int(nr_threads))
        context = ExecutionContext(catalog, params=params or {}, query=query)
        stats = ExecutionStats()
        pruned_before, faulted_before = gdk_storage.counters()
        if threads > 1 and self._wants_dataflow(program):
            self._run_dataflow(program, context, stats, collect_stats, threads)
        else:
            self._run_sequential(program, context, stats, collect_stats)
        pruned_after, faulted_after = gdk_storage.counters()
        stats.fragments_pruned = pruned_after - pruned_before
        stats.bytes_faulted = faulted_after - faulted_before
        return context, stats

    @staticmethod
    def _wants_dataflow(program: MALProgram) -> bool:
        """Dataflow pays off on fragmented plans; plain plans stay serial.

        Unfragmented plans are chains with almost no instruction-level
        parallelism, so the scheduler would only add dispatch latency to
        point queries (the prepared-statement fast path in particular).
        """
        flag = getattr(program, "_dataflow_worthwhile", None)
        if flag is None:
            flag = any(
                instruction.module == "mat" for instruction in program.instructions
            )
            program._dataflow_worthwhile = flag
        return flag

    # ------------------------------------------------------------------
    # sequential reference loop
    # ------------------------------------------------------------------
    def _run_sequential(
        self,
        program: MALProgram,
        context: ExecutionContext,
        stats: ExecutionStats,
        collect_stats: bool,
    ) -> None:
        env: dict[str, Any] = {}
        for index, instruction in enumerate(program.instructions):
            if instruction.module == "language" and instruction.function == "free":
                # Garbage-collection pseudo-op inserted by the optimizer.
                for arg in instruction.args:
                    if isinstance(arg, Constant):
                        env.pop(arg.value, None)
                continue
            if collect_stats:
                started = time.perf_counter()
                rows = self._execute(instruction, env, context, True)
                stats.record(
                    index, instruction, rows, time.perf_counter() - started
                )
            else:
                self._execute(instruction, env, context, False)

    # ------------------------------------------------------------------
    # dataflow scheduler
    # ------------------------------------------------------------------
    @staticmethod
    def _dependency_state(program: MALProgram) -> list[set[int]]:
        deps = getattr(program, "_dataflow_deps", None)
        if deps is None:
            deps = program.dependencies()
            program._dataflow_deps = deps
        return deps

    def _run_dataflow(
        self,
        program: MALProgram,
        context: ExecutionContext,
        stats: ExecutionStats,
        collect_stats: bool,
        nr_threads: Optional[int] = None,
    ) -> None:
        if nr_threads is None:
            nr_threads = self.nr_threads
        instructions = program.instructions
        deps = self._dependency_state(program)
        remaining = [set(edges) for edges in deps]
        dependents: list[list[int]] = [[] for _ in instructions]
        for index, edges in enumerate(deps):
            for producer in edges:
                dependents[producer].append(index)
        env: dict[str, Any] = {}
        ready: deque[int] = deque(
            index for index, edges in enumerate(remaining) if not edges
        )
        in_flight: dict[Any, int] = {}
        pool = self._pool()
        failure: Optional[BaseException] = None

        def complete(index: int) -> None:
            for dependent in dependents[index]:
                pending = remaining[dependent]
                pending.discard(index)
                if not pending:
                    ready.append(dependent)

        query = context.query
        while (ready or in_flight) and failure is None:
            if query is not None:
                # Scheduler-side poll: a cancelled/expired query stops
                # dispatching new waves even while workers are busy;
                # the failure path below cancels the pending futures.
                try:
                    query.check()
                except Exception as exc:
                    failure = exc
                    break
            submitted = 0
            while ready:
                index = ready.popleft()
                instruction = instructions[index]
                if (
                    instruction.module == "language"
                    and instruction.function == "free"
                ):
                    for arg in instruction.args:
                        if isinstance(arg, Constant):
                            env.pop(arg.value, None)
                    complete(index)
                    continue
                # Inline when there is nothing to overlap with (a lone
                # ready instruction and an idle pool), when the pool's
                # backlog is already deep enough to keep every worker
                # busy (the scheduler thread then shares the work
                # instead of queueing), or when the inputs are too
                # small to amortise pool dispatch.
                if (
                    (not ready and not in_flight)
                    or len(in_flight) >= 2 * nr_threads
                    or self._run_inline(instruction, env)
                ):
                    try:
                        if collect_stats:
                            started = time.perf_counter()
                            rows = self._execute(instruction, env, context, True)
                            stats.record(
                                index,
                                instruction,
                                rows,
                                time.perf_counter() - started,
                            )
                        else:
                            self._execute(instruction, env, context, False)
                    except BaseException as exc:  # noqa: BLE001 - cleanup path
                        failure = exc
                        break
                    complete(index)
                    continue
                future = pool.submit(
                    self._worker, index, instruction, env, context, collect_stats
                )
                in_flight[future] = index
                submitted += 1
            if submitted > 1 or (submitted and in_flight and len(in_flight) > 1):
                stats.parallel_batches += 1
            if failure is not None or not in_flight:
                continue
            finished, _ = wait(in_flight, return_when=FIRST_COMPLETED)
            for future in finished:
                index = in_flight.pop(future)
                try:
                    rows, seconds, output = future.result()
                except BaseException as exc:  # noqa: BLE001 - cleanup path
                    failure = exc
                    continue
                self._store(instructions[index], output, env)
                if collect_stats:
                    stats.record(index, instructions[index], rows, seconds)
                complete(index)
        if failure is not None:
            for future in in_flight:
                future.cancel()
            if in_flight:
                wait(list(in_flight))
            raise failure

    @staticmethod
    def _run_inline(instruction: Instruction, env: dict[str, Any]) -> bool:
        """Small inputs run on the scheduler thread — dispatch costs more."""
        if (instruction.module, instruction.function) in INLINE_OPS:
            return True
        largest = 0
        for arg in instruction.args:
            if isinstance(arg, Var):
                value = env.get(arg.name)
                if isinstance(value, BAT):
                    length = len(value)
                    if length > largest:
                        largest = length
        return largest < PARALLEL_MIN_ROWS

    def _worker(
        self,
        index: int,
        instruction: Instruction,
        env: dict[str, Any],
        context: ExecutionContext,
        count_rows: bool,
    ) -> tuple[int, float, Any]:
        """Execute one instruction off-thread; results are stored by the
        scheduler thread, so workers never mutate the environment."""
        started = time.perf_counter()
        args, rows = self._resolve_args(instruction, env, context, count_rows)
        output = self._apply(instruction, args, context)
        return rows, time.perf_counter() - started, output

    # ------------------------------------------------------------------
    # shared execution machinery
    # ------------------------------------------------------------------
    def _resolve_args(
        self,
        instruction: Instruction,
        env: dict[str, Any],
        context: ExecutionContext,
        count_rows: bool,
    ) -> tuple[list[Any], int]:
        args: list[Any] = []
        rows = 0
        for arg in instruction.args:
            if isinstance(arg, Var):
                if arg.name not in env:
                    raise MALError(f"variable {arg.name!r} not bound at runtime")
                value = env[arg.name]
                if count_rows and isinstance(value, BAT):
                    rows += len(value)
                args.append(value)
            elif isinstance(arg, Param):
                try:
                    args.append(context.params[arg.key])
                except KeyError:
                    raise MALError(f"unbound statement parameter {arg}") from None
            else:
                args.append(arg.value)
        return args, rows

    @staticmethod
    def _apply(
        instruction: Instruction, args: list[Any], context: ExecutionContext
    ) -> Any:
        implementation = REGISTRY.get((instruction.module, instruction.function))
        if implementation is None:
            raise MALError(
                f"undefined MAL operation {instruction.module}.{instruction.function}"
            )
        # Governance boundary: the cancellation token / deadline is
        # polled before every instruction (sequential loop, inlined
        # dataflow instructions and pool workers all funnel through
        # here), and the instruction's output bytes are charged against
        # the memory budget afterwards.  Both raise outside the kernel
        # try-block so governance errors keep their PEP 249 type
        # instead of being wrapped as MALError.
        query = context.query
        if query is not None:
            query.check()
        try:
            output = implementation(context, *args)
        except MALError:
            raise
        except Exception as exc:  # surface kernel errors with MAL context
            raise MALError(
                f"{instruction.module}.{instruction.function} failed: {exc}"
            ) from exc
        if query is not None:
            nbytes, rows = _output_cost(output)
            if nbytes or rows:
                query.note_materialised(nbytes, rows)
        return output

    @staticmethod
    def _store(instruction: Instruction, output: Any, env: dict[str, Any]) -> None:
        if not instruction.results:
            return
        if len(instruction.results) == 1:
            env[instruction.results[0]] = output
            return
        if not isinstance(output, tuple) or len(output) != len(instruction.results):
            raise MALError(
                f"{instruction.module}.{instruction.function}: arity mismatch"
            )
        for name, value in zip(instruction.results, output):
            env[name] = value

    def _execute(
        self,
        instruction: Instruction,
        env: dict[str, Any],
        context: ExecutionContext,
        count_rows: bool = False,
    ) -> int:
        """Execute one instruction; returns the BAT rows it consumed.

        Row accounting only runs under *count_rows* so the non-profiled
        dispatch loop stays untouched.
        """
        args, rows = self._resolve_args(instruction, env, context, count_rows)
        self._store(instruction, self._apply(instruction, args, context), env)
        return rows
