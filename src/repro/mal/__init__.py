"""MAL — the MonetDB Assembly Language layer (IR, interpreter, optimizers)."""

from repro.mal.interpreter import ExecutionContext, ExecutionStats, Interpreter
from repro.mal.program import (
    ANY,
    Constant,
    Instruction,
    MALProgram,
    MALType,
    Var,
    bat_type,
    scalar_type,
)

__all__ = [
    "ANY",
    "Constant",
    "ExecutionContext",
    "ExecutionStats",
    "Instruction",
    "Interpreter",
    "MALProgram",
    "MALType",
    "Var",
    "bat_type",
    "scalar_type",
]
