"""repro — SciQL: array data processing inside an RDBMS (SIGMOD 2013).

A full reproduction of the SciQL proof-of-concept: a MonetDB-like
column kernel (BATs), the MAL layer, an SQL/SciQL front-end with
arrays as first-class citizens, structural grouping, and the demo
applications (Conway's Game of Life, in-database image processing).

The client surface is DB-API 2.0 (PEP 249): ``connect()`` yields a
:class:`Connection` with cursors, ``?``/``:name`` parameter binding,
prepared statements backed by an LRU plan cache, and NumPy fast paths
(``Connection.register_array``, ``Cursor.fetchnumpy``).

For multi-user workloads, :class:`Database` is the shared engine —
catalog versions, the dataflow scheduler and the plan cache — and
``Database.connect()`` hands out concurrent transactional sessions
(``BEGIN``/``COMMIT``/``ROLLBACK`` with snapshot isolation,
``threadsafety == 2``)::

    db = repro.Database()
    a, b = db.connect(), db.connect()   # independent concurrent sessions

The engine also serves over TCP (:mod:`repro.net`): start a server
with ``python -m repro.net.server`` (or ``ServerThread`` in-process)
and connect by URL — the same DB-API surface, streamed in columnar
batches over a checksummed wire protocol::

    conn = repro.connect("repro://127.0.0.1:50123")

Quickstart::

    import repro
    conn = repro.connect()
    cur = conn.cursor()
    cur.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], "
                "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
    cur.execute("UPDATE m SET v = x + y")
    r = cur.execute("SELECT [x], [y], AVG(v) FROM m "
                    "GROUP BY m[x:x+2][y:y+2]")
    print(r.grid())
    cur.execute("SELECT v FROM m WHERE x = ? AND y = ?", (1, 2))
    print(cur.fetchone())
"""

from repro.engine import (
    Connection,
    Cursor,
    Database,
    PreparedStatement,
    Result,
    connect,
)
from repro.errors import (
    DatabaseError,
    DataError,
    DurabilityWarning,
    Error,
    IntegrityError,
    InterfaceError,
    InternalError,
    NetworkError,
    NotSupportedError,
    OperationalError,
    PlanVerificationError,
    ProgrammingError,
    ProtocolError,
    QueryCancelledError,
    QueryGovernanceError,
    QueryTimeoutError,
    ResourceError,
    SciQLError,
    Warning,
)

__version__ = "1.3.0"

# PEP 249 module globals.
apilevel = "2.0"
threadsafety = 2  # threads may share the module and connections
paramstyle = "qmark"  # named (:name) parameters are supported as well

__all__ = [
    "Connection",
    "Database",
    "Cursor",
    "PreparedStatement",
    "Result",
    "SciQLError",
    "Warning",
    "Error",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "NetworkError",
    "ProtocolError",
    "PlanVerificationError",
    "QueryGovernanceError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "ResourceError",
    "DurabilityWarning",
    "apilevel",
    "threadsafety",
    "paramstyle",
    "connect",
    "__version__",
]
