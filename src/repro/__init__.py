"""repro — SciQL: array data processing inside an RDBMS (SIGMOD 2013).

A full reproduction of the SciQL proof-of-concept: a MonetDB-like
column kernel (BATs), the MAL layer, an SQL/SciQL front-end with
arrays as first-class citizens, structural grouping, and the demo
applications (Conway's Game of Life, in-database image processing).

Quickstart::

    import repro
    conn = repro.connect()
    conn.execute("CREATE ARRAY m (x INT DIMENSION[0:1:4], "
                 "y INT DIMENSION[0:1:4], v INT DEFAULT 0)")
    r = conn.execute("SELECT [x], [y], AVG(v) FROM m "
                     "GROUP BY m[x:x+2][y:y+2]")
    print(r.grid())
"""

from repro.engine import Connection, Result, connect
from repro.errors import SciQLError

__version__ = "1.0.0"
__all__ = ["Connection", "Result", "SciQLError", "connect", "__version__"]
