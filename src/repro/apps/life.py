"""Scenario I — Conway's Game of Life, entirely in SciQL queries.

"All rules of the game are implemented as SciQL queries, e.g., create a
game board, initialise the game with living cells, compute the next
generation, and clear/resize the board" (paper, Section 4).

Three implementations live here:

* :class:`GameOfLife` — the SciQL version: the next generation is one
  structural-grouping query over a 3×3 tile centred on each cell;
* :class:`SQLGameOfLife` — the plain-SQL baseline the paper argues
  against: the same rule needs an eight-way self-join (expressed via an
  offsets helper table) over a tuple table;
* :func:`numpy_life_step` — an independent reference used by tests.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.errors import SciQLError
from repro.engine import Connection

#: The paper's game rule as one structural-grouping query: a 3×3 tile is
#: created for each cell with this cell as the tile centre; the sum of
#: the tile minus the cell value is the number of living neighbours.
NEXT_GENERATION_QUERY = """
INSERT INTO {name}
SELECT [x], [y],
       CASE WHEN SUM(v) - v = 3 OR (SUM(v) - v = 2 AND v = 1)
            THEN 1 ELSE 0 END
FROM {name}
GROUP BY {name}[x-1:x+2][y-1:y+2]
"""


def next_generation_query(
    name: str,
    radius: int = 1,
    birth: tuple[int, int] = (3, 3),
    survive: tuple[int, int] = (2, 3),
) -> str:
    """The generation rule for a radius-*r* Moore neighbourhood.

    ``radius=1`` with the default birth/survive intervals is Conway's
    game; larger radii give the "Larger than Life" family (the
    neighbour count is the sum over a ``(2r+1)²`` tile minus the cell
    itself) — affordable at any radius now that the tiling kernels are
    tile-size-independent.
    """
    if radius == 1 and birth == (3, 3) and survive == (2, 3):
        return NEXT_GENERATION_QUERY.format(name=name)
    return (
        f"INSERT INTO {name} "
        f"SELECT [x], [y], "
        f"CASE WHEN (v = 0 AND SUM(v) - v BETWEEN {birth[0]} AND {birth[1]}) "
        f"OR (v = 1 AND SUM(v) - v BETWEEN {survive[0]} AND {survive[1]}) "
        f"THEN 1 ELSE 0 END "
        f"FROM {name} "
        f"GROUP BY {name}[x-{radius}:x+{radius + 1}][y-{radius}:y+{radius + 1}]"
    )


class GameOfLife:
    """The SciQL Game of Life on an ``width × height`` array board.

    ``radius``/``birth``/``survive`` select a rule from the "Larger
    than Life" family; the defaults are Conway's classic game, stepped
    with the paper's 3×3 structural-grouping query.
    """

    def __init__(
        self,
        connection: Connection,
        width: int,
        height: int,
        name: str = "life",
        radius: int = 1,
        birth: tuple[int, int] = (3, 3),
        survive: tuple[int, int] = (2, 3),
    ):
        if radius < 1:
            raise SciQLError("the neighbourhood radius must be at least 1")
        if width < 2 * radius + 1 or height < 2 * radius + 1:
            raise SciQLError(
                f"the board needs at least {2 * radius + 1}x{2 * radius + 1} cells"
            )
        self.connection = connection
        self.name = name
        self.width = width
        self.height = height
        self.radius = radius
        self._step_query = next_generation_query(name, radius, birth, survive)
        connection.execute(
            f"CREATE ARRAY {name} (x INT DIMENSION[0:1:{width}], "
            f"y INT DIMENSION[0:1:{height}], v INT DEFAULT 0)"
        )

    # ------------------------------------------------------------------
    # board manipulation (each is a SciQL query)
    # ------------------------------------------------------------------
    def seed(self, cells: Iterable[tuple[int, int]]) -> None:
        """Make the given (x, y) cells alive (bulk parameter binding)."""
        cells = list(cells)
        if cells:
            self.connection.executemany(
                f"INSERT INTO {self.name} VALUES (?, ?, 1)", cells
            )

    def seed_random(self, density: float = 0.3, seed: int = 0) -> None:
        """Randomly populate the board with the given live-cell density."""
        rng = np.random.default_rng(seed)
        alive = rng.random((self.width, self.height)) < density
        coordinates = np.argwhere(alive)
        self.seed((int(x), int(y)) for x, y in coordinates)

    def clear(self) -> None:
        """Kill every cell."""
        self.connection.execute(f"UPDATE {self.name} SET v = 0")

    def resize(self, width: int, height: int) -> None:
        """Grow/shrink the board via ALTER ARRAY (existing cells survive)."""
        self.connection.execute(
            f"ALTER ARRAY {self.name} ALTER DIMENSION x SET RANGE [0:1:{width}]"
        )
        self.connection.execute(
            f"ALTER ARRAY {self.name} ALTER DIMENSION y SET RANGE [0:1:{height}]"
        )
        self.width = width
        self.height = height

    # ------------------------------------------------------------------
    # evolution
    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance one generation (a single structural-grouping query)."""
        self.connection.execute(self._step_query)

    def run(self, generations: int) -> None:
        """Advance several generations."""
        for _ in range(generations):
            self.step()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------
    def board(self) -> np.ndarray:
        """The board as an int array of shape (width, height)."""
        result = self.connection.execute(
            f"SELECT [x], [y], v FROM {self.name}"
        )
        grid = result.grid()
        return np.nan_to_num(grid, nan=0.0).astype(np.int64)

    def population(self) -> int:
        """Number of living cells (a SciQL aggregate query)."""
        return int(
            self.connection.execute(f"SELECT SUM(v) FROM {self.name}").scalar() or 0
        )

    def render(self) -> str:
        """ASCII art of the board, y growing upward as in the paper."""
        grid = self.board()
        lines = []
        for y in range(self.height - 1, -1, -1):
            lines.append(
                "".join("#" if grid[x, y] else "." for x in range(self.width))
            )
        return "\n".join(lines)


class SQLGameOfLife:
    """The pure-SQL baseline: tuple table + eight-way self-join.

    "In SQL, such query would require a eight-way self-join to
    associate a cell with all its neighbours" (paper, Section 4).  The
    eight joins are expressed with an 8-row offsets table; the engine
    executes a hash join producing ~8·N pairs per generation, versus
    the 9 shifted scans of the SciQL tiling plan.
    """

    def __init__(
        self,
        connection: Connection,
        width: int,
        height: int,
        name: str = "life_t",
    ):
        self.connection = connection
        self.name = name
        self.staging = f"{name}_next"
        self.offsets = f"{name}_offsets"
        self.width = width
        self.height = height
        for table in (self.name, self.staging):
            connection.execute(
                f"CREATE TABLE {table} (x INT, y INT, v INT)"
            )
        connection.execute(f"CREATE TABLE {self.offsets} (dx INT, dy INT)")
        offsets = ", ".join(
            f"({dx}, {dy})"
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if (dx, dy) != (0, 0)
        )
        connection.execute(f"INSERT INTO {self.offsets} VALUES {offsets}")
        # Materialise every cell as a row (dead cells included), as a
        # faithful relational encoding of the dense board.
        rows = ", ".join(
            f"({x}, {y}, 0)" for x in range(width) for y in range(height)
        )
        connection.execute(f"INSERT INTO {self.name} VALUES {rows}")

    def seed(self, cells: Iterable[tuple[int, int]]) -> None:
        """Make the given (x, y) cells alive."""
        for x, y in cells:
            self.connection.execute(
                f"UPDATE {self.name} SET v = 1 WHERE x = {x} AND y = {y}"
            )

    def step(self) -> None:
        """One generation via the eight-way self-join formulation."""
        self.connection.execute(f"DELETE FROM {self.staging}")
        self.connection.execute(
            f"""
            INSERT INTO {self.staging}
            SELECT a.x, a.y,
                   CASE WHEN SUM(b.v) = 3 OR (SUM(b.v) = 2 AND MAX(a.v) = 1)
                        THEN 1 ELSE 0 END
            FROM {self.name} a
                 CROSS JOIN {self.offsets} o
                 INNER JOIN {self.name} b
                    ON b.x = a.x + o.dx AND b.y = a.y + o.dy
            GROUP BY a.x, a.y
            """
        )
        self.name, self.staging = self.staging, self.name

    def run(self, generations: int) -> None:
        for _ in range(generations):
            self.step()

    def board(self) -> np.ndarray:
        """The board as an int array of shape (width, height)."""
        result = self.connection.execute(
            f"SELECT x, y, v FROM {self.name} ORDER BY x, y"
        )
        grid = np.zeros((self.width, self.height), dtype=np.int64)
        for x, y, v in result.rows():
            grid[x, y] = v
        return grid

    def population(self) -> int:
        return int(
            self.connection.execute(f"SELECT SUM(v) FROM {self.name}").scalar() or 0
        )


def numpy_life_step(
    board: np.ndarray,
    radius: int = 1,
    birth: tuple[int, int] = (3, 3),
    survive: tuple[int, int] = (2, 3),
) -> np.ndarray:
    """Reference next-generation (dead borders), for verification."""
    padded = np.pad(board, radius)
    neighbours = np.zeros_like(board)
    span = range(-radius, radius + 1)
    for dx in span:
        for dy in span:
            if (dx, dy) == (0, 0):
                continue
            neighbours += padded[
                radius + dx : radius + dx + board.shape[0],
                radius + dy : radius + dy + board.shape[1],
            ]
    born = (board == 0) & (neighbours >= birth[0]) & (neighbours <= birth[1])
    stays = (board == 1) & (neighbours >= survive[0]) & (neighbours <= survive[1])
    return (born | stays).astype(board.dtype)


#: Well-known starting patterns, as (x, y) offsets.
PATTERNS: dict[str, tuple[tuple[int, int], ...]] = {
    "blinker": ((0, 0), (1, 0), (2, 0)),
    "block": ((0, 0), (0, 1), (1, 0), (1, 1)),
    "glider": ((1, 0), (2, 1), (0, 2), (1, 2), (2, 2)),
    "toad": ((1, 0), (2, 0), (3, 0), (0, 1), (1, 1), (2, 1)),
    "beacon": ((0, 0), (1, 0), (0, 1), (3, 2), (2, 3), (3, 3)),
}


def place_pattern(
    game: GameOfLife | SQLGameOfLife,
    pattern: str,
    origin: tuple[int, int] = (1, 1),
) -> None:
    """Seed a named pattern at the given origin."""
    try:
        cells = PATTERNS[pattern]
    except KeyError:
        raise SciQLError(
            f"unknown pattern {pattern!r}; pick one of {sorted(PATTERNS)}"
        ) from None
    ox, oy = origin
    game.seed((ox + dx, oy + dy) for dx, dy in cells)
