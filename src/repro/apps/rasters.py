"""Synthetic rasters and portable grey-map I/O.

The paper's Scenario II uses two GeoTIFF images from the TELEIOS
project: "a normal grey-scale image of a classic building and a remote
sensing image of the earth".  Neither the images nor a GeoTIFF parser
is available offline, so this module synthesises stand-ins with the
statistical features the demo queries exercise:

* :func:`building_image` — strong vertical/horizontal edges (walls,
  windows, a roof line) so EdgeDetection produces structure;
* :func:`remote_sensing_image` — smooth terrain with a low-intensity
  "water" region (a river) so the water filter and the intensity
  histogram behave like the demo's;
* :func:`read_pgm` / :func:`write_pgm` — portable grey-map files (P2
  ASCII and P5 binary) as the no-dependency exchange format standing
  in for the GeoTIFF Data Vault's file side.

Images are (width, height) uint8-ranged int arrays indexed ``[x, y]``
with y growing upward, matching the SciQL array convention used
throughout.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import SciQLError

MAX_INTENSITY = 255


def building_image(size: int = 64, seed: int = 7) -> np.ndarray:
    """A grey-scale "classic building": facade, windows, roof, sky."""
    if size < 16:
        raise SciQLError("building image needs size >= 16")
    rng = np.random.default_rng(seed)
    x = np.arange(size)[:, None]
    y = np.arange(size)[None, :]
    # Sky gradient (brighter towards the top).
    image = np.broadcast_to(140.0 + 80.0 * (y / size), (size, size)).copy()
    # Facade: a large rectangle of mid grey.
    left, right = size // 8, size - size // 8
    ground, roof = 0, int(size * 0.7)
    facade = (x >= left) & (x < right) & (y >= ground) & (y < roof)
    image[facade] = 100.0
    # Roof line: a bright band.
    roof_band = (x >= left) & (x < right) & (y >= roof) & (y < roof + 2)
    image[roof_band] = 230.0
    # Windows: dark rectangles on a regular grid.
    window_w = max(2, size // 16)
    gap = max(4, size // 8)
    for wx in range(left + gap // 2, right - window_w, gap):
        for wy in range(ground + gap // 2, roof - window_w, gap):
            image[wx : wx + window_w, wy : wy + window_w] = 30.0
    # Film grain.
    image += rng.normal(0.0, 3.0, size=(size, size))
    return np.clip(np.round(image), 0, MAX_INTENSITY).astype(np.int64)


def remote_sensing_image(size: int = 64, seed: int = 11) -> np.ndarray:
    """A remote-sensing-like terrain tile with a dark river."""
    if size < 16:
        raise SciQLError("remote sensing image needs size >= 16")
    rng = np.random.default_rng(seed)
    # Smooth terrain: low-frequency random field (sum of smoothed noise).
    field = rng.normal(0.0, 1.0, size=(size, size))
    for _ in range(8):
        field = (
            field
            + np.roll(field, 1, axis=0)
            + np.roll(field, -1, axis=0)
            + np.roll(field, 1, axis=1)
            + np.roll(field, -1, axis=1)
        ) / 5.0
    field = (field - field.min()) / max(float(np.ptp(field)), 1e-9)
    image = 90.0 + 140.0 * field
    # A meandering river: low intensity (water absorbs near-infrared).
    xs = np.arange(size)
    river_centre = (
        size / 2 + (size / 5) * np.sin(2 * np.pi * xs / size * 1.7)
    ).astype(np.int64)
    half_width = max(1, size // 24)
    for x in range(size):
        lo = max(0, river_centre[x] - half_width)
        hi = min(size, river_centre[x] + half_width + 1)
        image[x, lo:hi] = rng.uniform(8, 35, hi - lo)
    return np.clip(np.round(image), 0, MAX_INTENSITY).astype(np.int64)


def checkerboard(size: int = 16, tile: int = 2) -> np.ndarray:
    """A small test pattern with known statistics."""
    x = np.arange(size)[:, None] // tile
    y = np.arange(size)[None, :] // tile
    return np.where((x + y) % 2 == 0, MAX_INTENSITY, 0).astype(np.int64)


def ramp_image(size: int = 64) -> np.ndarray:
    """A deterministic diagonal intensity ramp.

    Cheap to build at any size (no smoothing passes) and fully
    reproducible without a seed — the input of the tiling-kernel
    benchmarks and property fixtures, where data content must not
    influence the measured kernels.
    """
    x = np.arange(size)[:, None]
    y = np.arange(size)[None, :]
    return ((x * 7 + y * 13) % (MAX_INTENSITY + 1)).astype(np.int64)


# ----------------------------------------------------------------------
# portable grey-map (PGM) I/O — the file-exchange stand-in for GeoTIFF
# ----------------------------------------------------------------------
def write_pgm(path: str | Path, image: np.ndarray, binary: bool = True) -> None:
    """Write an image as P5 (binary) or P2 (ASCII) PGM.

    The file stores rows top-to-bottom, so the (x, y)-indexed image is
    transposed and flipped on the way out (and back in).
    """
    path = Path(path)
    if image.ndim != 2:
        raise SciQLError("PGM images must be 2-D")
    raster = np.flipud(image.T).astype(np.int64)
    if raster.min() < 0 or raster.max() > MAX_INTENSITY:
        raise SciQLError("PGM intensities must lie in [0, 255]")
    height, width = raster.shape
    if binary:
        header = f"P5\n{width} {height}\n{MAX_INTENSITY}\n".encode("ascii")
        path.write_bytes(header + raster.astype(np.uint8).tobytes())
    else:
        lines = [f"P2", f"{width} {height}", str(MAX_INTENSITY)]
        for row in raster:
            lines.append(" ".join(str(int(v)) for v in row))
        path.write_text("\n".join(lines) + "\n")


def read_pgm(path: str | Path) -> np.ndarray:
    """Read a P2/P5 PGM file back into (x, y) orientation."""
    path = Path(path)
    data = path.read_bytes()
    if data[:2] not in (b"P2", b"P5"):
        raise SciQLError(f"{path} is not a PGM file")
    binary = data[:2] == b"P5"
    # Parse header tokens, skipping comments.
    tokens: list[bytes] = []
    position = 2
    while len(tokens) < 3:
        while position < len(data) and data[position : position + 1].isspace():
            position += 1
        if data[position : position + 1] == b"#":
            while position < len(data) and data[position : position + 1] != b"\n":
                position += 1
            continue
        start = position
        while position < len(data) and not data[position : position + 1].isspace():
            position += 1
        tokens.append(data[start:position])
    width, height, max_value = (int(t) for t in tokens)
    if max_value != MAX_INTENSITY:
        raise SciQLError("only 8-bit PGM files are supported")
    position += 1  # single whitespace after maxval
    if binary:
        raster = np.frombuffer(
            data, dtype=np.uint8, count=width * height, offset=position
        ).reshape(height, width)
    else:
        body = data[position:].split()
        raster = np.array([int(v) for v in body], dtype=np.int64).reshape(
            height, width
        )
    return np.flipud(raster).T.astype(np.int64)
