"""Scenario II — in-database image processing with SciQL queries.

"We demonstrate how images (e.g., remote sensing images) are stored in
MonetDB as arrays (instead of BLOBs) and processed using SciQL
queries" (paper, Section 1).  This module implements every operation
the demo GUI shows, each as a SciQL query string executed in the
engine:

grey-scale image: load, intensity inversion, edge detection,
smoothing (any window radius — the tiling kernels are
tile-size-independent), min/max morphology (erode/dilate), resolution
reduction, rotation;
remote-sensing image: load, water filtering, intensity histogram,
zooming in, brightening, areas-of-interest by mask array or by
bounding-box table (the table ⋈ array join the paper highlights).

Loading goes through :func:`load_image`, the stand-in for the GeoTIFF
Data Vault [Ivanova et al., SSDBM 2012]: a bulk path that materialises
the image into the array's attribute BAT without tuple-at-a-time SQL.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import SciQLError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column
from repro.engine import Connection
from repro.engine.result import Result

MAX_INTENSITY = 255


def load_image(connection: Connection, name: str, image: np.ndarray) -> None:
    """Store a (width, height) grey-scale image as a 2-D SciQL array.

    "Each image is stored as a 2D array with x,y dimensions denoting
    the pixel positions in the image, and an integer column v denoting
    the grey-scale intensities of the pixels."  The bulk load bypasses
    SQL INSERT statements, exactly like the GeoTIFF Data Vault feeds
    MonetDB.
    """
    if image.ndim != 2:
        raise SciQLError("images must be 2-D (width, height)")
    width, height = image.shape
    connection.execute(
        f"CREATE ARRAY {name} (x INT DIMENSION[0:1:{width}], "
        f"y INT DIMENSION[0:1:{height}], v INT DEFAULT 0)"
    )
    flat = np.ascontiguousarray(image, dtype=np.int64).reshape(-1)
    oids = np.arange(flat.size, dtype=np.int64)
    with connection.staging() as txn:
        array = connection.catalog.get_array(name)
        array.replace_values("v", oids, Column(Atom.INT, flat))
        txn.note_write(name)


def fetch_image(connection: Connection, name: str) -> np.ndarray:
    """Read an image array back as a (width, height) int array."""
    result = connection.execute(f"SELECT [x], [y], v FROM {name}")
    return np.nan_to_num(result.grid(), nan=0.0).astype(np.int64)


def result_to_image(result: Result, fill: int = 0) -> np.ndarray:
    """Densify an array-shaped query result into an int image."""
    return np.nan_to_num(result.grid(), nan=float(fill)).astype(np.int64)


class ImageProcessor:
    """The Scenario II operation set over one stored image array."""

    def __init__(self, connection: Connection, name: str):
        self.connection = connection
        self.name = name
        array = connection.catalog.get_array(name)
        self.width = array.dimensions[0].size
        self.height = array.dimensions[1].size

    # ------------------------------------------------------------------
    # grey-scale image operations (first six thumbnails)
    # ------------------------------------------------------------------
    def invert(self) -> Result:
        """Intensity inversion: v ← 255 − v."""
        return self.connection.execute(
            f"SELECT [x], [y], {MAX_INTENSITY} - v FROM {self.name}"
        )

    def edge_detect(self) -> Result:
        """The TELEIOS EdgeDetection use case.

        "It requires computing the differences in colour intensities of
        each pixel and its upper and left neighbouring pixels" —
        expressed with SciQL's relative cell addressing; border pixels
        (whose neighbours fall outside the array) yield NULL and are
        rendered as 0.
        """
        a = self.name
        return self.connection.execute(
            f"SELECT [x], [y], "
            f"ABS({a}[x][y] - {a}[x-1][y]) + ABS({a}[x][y] - {a}[x][y-1]) "
            f"FROM {a}"
        )

    def smooth(self, radius: int = 1) -> Result:
        """Box smoothing via structural grouping.

        The window is ``(2·radius+1)²``; since the prefix-sum tiling
        kernels cost O(|array|) regardless of tile size, a 33×33 blur
        runs as fast as the paper's 3×3.
        """
        a = self.name
        r = radius
        return self.connection.execute(
            f"SELECT [x], [y], AVG(v) FROM {a} "
            f"GROUP BY {a}[x-{r}:x+{r + 1}][y-{r}:y+{r + 1}]"
        )

    def erode(self, radius: int = 1) -> Result:
        """Morphological erosion: each pixel becomes its window minimum.

        A sliding-extrema (van Herk–Gil-Werman) tiling query — the
        classic remote-sensing clean-up for speckle noise.
        """
        a = self.name
        r = radius
        return self.connection.execute(
            f"SELECT [x], [y], MIN(v) FROM {a} "
            f"GROUP BY {a}[x-{r}:x+{r + 1}][y-{r}:y+{r + 1}]"
        )

    def dilate(self, radius: int = 1) -> Result:
        """Morphological dilation: each pixel becomes its window maximum."""
        a = self.name
        r = radius
        return self.connection.execute(
            f"SELECT [x], [y], MAX(v) FROM {a} "
            f"GROUP BY {a}[x-{r}:x+{r + 1}][y-{r}:y+{r + 1}]"
        )

    def reduce_resolution(self, factor: int = 2) -> Result:
        """Downsample by averaging non-overlapping ``factor²`` tiles."""
        a = self.name
        return self.connection.execute(
            f"SELECT [x / {factor}], [y / {factor}], AVG(v) FROM {a} "
            f"GROUP BY {a}[x:x+{factor}][y:y+{factor}] "
            f"HAVING x MOD {factor} = 0 AND y MOD {factor} = 0"
        )

    def rotate(self) -> Result:
        """Rotate 90° counter-clockwise by permuting dimensions."""
        return self.connection.execute(
            f"SELECT [{self.width - 1} - x] AS x, [y] AS y, v FROM {self.name}"
        )

    # ------------------------------------------------------------------
    # remote-sensing operations (second six thumbnails)
    # ------------------------------------------------------------------
    def filter_water(self, threshold: int = 48) -> Result:
        """Keep only water pixels (low intensity); land becomes NULL."""
        return self.connection.execute(
            f"SELECT [x], [y], "
            f"CASE WHEN v < {threshold} THEN v ELSE NULL END FROM {self.name}"
        )

    def remove_water(self, threshold: int = 48) -> int:
        """DELETE water cells — punches holes into the stored array."""
        result = self.connection.execute(
            f"DELETE FROM {self.name} WHERE v < {threshold}"
        )
        return result.affected

    def histogram(self, buckets: int = 16) -> list[tuple[int, int]]:
        """Intensity histogram as (bucket, pixel count) rows."""
        width = max(1, (MAX_INTENSITY + 1) // buckets)
        result = self.connection.execute(
            f"SELECT v / {width} AS bucket, COUNT(*) AS pixels "
            f"FROM {self.name} GROUP BY v / {width} ORDER BY bucket"
        )
        return [(int(b), int(c)) for b, c in result.rows()]

    def zoom(self, x0: int, y0: int, x1: int, y1: int) -> Result:
        """Select a rectangular region (half the point of in-DB storage:
        "one can select only the necessary part of the data")."""
        return self.connection.execute(
            f"SELECT [x], [y], v FROM {self.name} "
            f"WHERE x BETWEEN {x0} AND {x1 - 1} AND y BETWEEN {y0} AND {y1 - 1}"
        )

    def brighten(self, amount: int = 50) -> Result:
        """Increase intensity with clipping at 255."""
        return self.connection.execute(
            f"SELECT [x], [y], "
            f"CASE WHEN v + {amount} > {MAX_INTENSITY} THEN {MAX_INTENSITY} "
            f"ELSE v + {amount} END FROM {self.name}"
        )

    def areas_of_interest_mask(self, mask_name: str) -> Result:
        """AoI selection via a bit-mask image stored as another array."""
        a, m = self.name, mask_name
        return self.connection.execute(
            f"SELECT [x], [y], "
            f"CASE WHEN {m}[x][y] = 1 THEN v ELSE NULL END FROM {a}"
        )

    def areas_of_interest_boxes(self, boxes_table: str) -> Result:
        """AoI selection via a bounding-box table — the table ⋈ array join.

        "the bounding boxes of the interested-areas are stored in the
        table maskt. Then, a join between the table and the image array
        is done to filter out the pixel intensities of those areas."
        """
        a, b = self.name, boxes_table
        return self.connection.execute(
            f"SELECT i.x AS x, i.y AS y, i.v AS v FROM {a} i, {b} r "
            f"WHERE i.x BETWEEN r.x1 AND r.x2 AND i.y BETWEEN r.y1 AND r.y2"
        )


def create_mask(connection: Connection, name: str, mask: np.ndarray) -> None:
    """Store a 0/1 mask image as an array (for AoI selection)."""
    load_image(connection, name, mask.astype(np.int64))


def create_boxes_table(
    connection: Connection, name: str, boxes: list[tuple[int, int, int, int]]
) -> None:
    """Store bounding boxes (x1, y1, x2, y2 inclusive) in a table."""
    connection.execute(
        f"CREATE TABLE {name} (x1 INT, y1 INT, x2 INT, y2 INT)"
    )
    if boxes:
        connection.executemany(
            f"INSERT INTO {name} VALUES (?, ?, ?, ?)", boxes
        )


# ----------------------------------------------------------------------
# numpy reference implementations (used by tests and benchmarks)
# ----------------------------------------------------------------------
def reference_invert(image: np.ndarray) -> np.ndarray:
    return MAX_INTENSITY - image


def reference_edge_detect(image: np.ndarray) -> np.ndarray:
    """ABS differences with left/lower neighbours; borders → 0."""
    out = np.zeros_like(image)
    out[1:, 1:] = np.abs(image[1:, 1:] - image[:-1, 1:]) + np.abs(
        image[1:, 1:] - image[1:, :-1]
    )
    return out


def reference_smooth(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Box average with edge clipping (matches tiling semantics)."""
    acc = np.zeros(image.shape, dtype=np.float64)
    cnt = np.zeros(image.shape, dtype=np.int64)
    w, h = image.shape
    span = range(-radius, radius + 1)
    for dx in span:
        for dy in span:
            xs = slice(max(0, -dx), min(w, w - dx))
            ys = slice(max(0, -dy), min(h, h - dy))
            xd = slice(max(0, dx), min(w, w + dx))
            yd = slice(max(0, dy), min(h, h + dy))
            acc[xs, ys] += image[xd, yd]
            cnt[xs, ys] += 1
    return acc / cnt


def _reference_morphology(image: np.ndarray, radius: int, maximum: bool) -> np.ndarray:
    out = np.full(
        image.shape, np.iinfo(np.int64).min if maximum else np.iinfo(np.int64).max
    )
    w, h = image.shape
    span = range(-radius, radius + 1)
    op = np.maximum if maximum else np.minimum
    for dx in span:
        for dy in span:
            xs = slice(max(0, -dx), min(w, w - dx))
            ys = slice(max(0, -dy), min(h, h - dy))
            xd = slice(max(0, dx), min(w, w + dx))
            yd = slice(max(0, dy), min(h, h + dy))
            out[xs, ys] = op(out[xs, ys], image[xd, yd])
    return out


def reference_erode(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Window minimum with edge clipping (matches MIN tiling)."""
    return _reference_morphology(image, radius, maximum=False)


def reference_dilate(image: np.ndarray, radius: int = 1) -> np.ndarray:
    """Window maximum with edge clipping (matches MAX tiling)."""
    return _reference_morphology(image, radius, maximum=True)


def reference_reduce(image: np.ndarray, factor: int = 2) -> np.ndarray:
    w, h = image.shape
    out_w, out_h = -(-w // factor), -(-h // factor)
    out = np.zeros((out_w, out_h), dtype=np.float64)
    for ox in range(out_w):
        for oy in range(out_h):
            block = image[
                ox * factor : (ox + 1) * factor, oy * factor : (oy + 1) * factor
            ]
            out[ox, oy] = block.mean()
    return out


def reference_brighten(image: np.ndarray, amount: int = 50) -> np.ndarray:
    return np.clip(image + amount, 0, MAX_INTENSITY)


def reference_histogram(image: np.ndarray, buckets: int = 16) -> list[tuple[int, int]]:
    width = max(1, (MAX_INTENSITY + 1) // buckets)
    values, counts = np.unique(image // width, return_counts=True)
    return [(int(v), int(c)) for v, c in zip(values, counts)]
