"""The BLOB baseline — the status quo the paper argues against.

"Instead of storing arrays as BLOBs in RDBMSs, and suffering from the
limitations and inefficiencies of BLOBs, users can now store arrays
directly in an RDBMS" (paper, Section 4).  To make that claim
measurable we implement the BLOB workflow: the image lives in a table
as one opaque value; every operation must

1. SELECT the blob out of the database,
2. decode it into an application-side array,
3. compute outside the database (numpy stands in for the user code),
4. re-encode and UPDATE the blob back.

A region selection (the AreasOfInterest use case) still ships the
*entire* image out — a BLOB cannot be sliced server-side — which is
exactly the asymmetry benchmark E10 quantifies.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SciQLError
from repro.engine import Connection
from repro.apps import imaging

MAX_INTENSITY = 255


def _encode(image: np.ndarray) -> str:
    """Serialise an image to a latin-1 string (1 char per byte)."""
    if image.min() < 0 or image.max() > MAX_INTENSITY:
        raise SciQLError("BLOB encoding needs 8-bit intensities")
    return image.astype(np.uint8).tobytes().decode("latin-1")


def _decode(blob: str, width: int, height: int) -> np.ndarray:
    data = np.frombuffer(blob.encode("latin-1"), dtype=np.uint8)
    return data.reshape(width, height).astype(np.int64)


class BlobImageStore:
    """Images stored as opaque blobs in a relational table."""

    def __init__(self, connection: Connection, table: str = "blobs"):
        self.connection = connection
        self.table = table
        connection.execute(
            f"CREATE TABLE {table} "
            f"(name VARCHAR(64), width INT, height INT, data VARCHAR(1))"
        )

    # ------------------------------------------------------------------
    def store(self, name: str, image: np.ndarray) -> None:
        """Insert an image as one blob row."""
        width, height = image.shape
        blob = _encode(image).replace("'", "''")
        self.connection.execute(
            f"INSERT INTO {self.table} VALUES "
            f"('{name}', {width}, {height}, '{blob}')"
        )

    def fetch(self, name: str) -> np.ndarray:
        """Ship the whole blob out of the database and decode it."""
        result = self.connection.execute(
            f"SELECT width, height, data FROM {self.table} "
            f"WHERE name = '{name}'"
        )
        rows = result.rows()
        if not rows:
            raise SciQLError(f"no blob named {name!r}")
        width, height, blob = rows[0]
        return _decode(blob, width, height)

    def update(self, name: str, image: np.ndarray) -> None:
        """Re-encode and write the blob back."""
        blob = _encode(image).replace("'", "''")
        self.connection.execute(
            f"UPDATE {self.table} SET data = '{blob}' WHERE name = '{name}'"
        )

    # ------------------------------------------------------------------
    # the BLOB workflow for each Scenario II operation
    # ------------------------------------------------------------------
    def invert(self, name: str) -> np.ndarray:
        image = self.fetch(name)
        result = imaging.reference_invert(image)
        self.update(name, result)
        return result

    def edge_detect(self, name: str) -> np.ndarray:
        image = self.fetch(name)
        return imaging.reference_edge_detect(image)

    def smooth(self, name: str) -> np.ndarray:
        image = self.fetch(name)
        return np.round(imaging.reference_smooth(image)).astype(np.int64)

    def brighten(self, name: str, amount: int = 50) -> np.ndarray:
        image = self.fetch(name)
        result = imaging.reference_brighten(image, amount)
        self.update(name, result)
        return result

    def histogram(self, name: str, buckets: int = 16) -> list[tuple[int, int]]:
        image = self.fetch(name)
        return imaging.reference_histogram(image, buckets)

    def zoom(self, name: str, x0: int, y0: int, x1: int, y1: int) -> np.ndarray:
        # A BLOB cannot be sliced inside the database: the full image
        # crosses the boundary no matter how small the region is.
        image = self.fetch(name)
        return image[x0:x1, y0:y1]
