"""Demo applications: Game of Life (Scenario I), image processing
(Scenario II), synthetic rasters, and the BLOB baseline."""
