"""Sequence semantics: time-series analytics over 1-D SciQL arrays.

The paper's abstract promises "a seamless symbiosis of array-, set- and
sequence-interpretations" and positions structural grouping as "a
generalisation of window-based query processing" (the SQL:2003 window
machinery "was primarily introduced to better handle time series").
This module demonstrates that sequence side: a sensor log is a 1-D
array over a ``t`` dimension, and every classic window computation is
one structural-grouping query:

* moving aggregates (centred or trailing windows);
* discrete differences via relative cell addressing (``log[t-1]``);
* downsampling via anchor filtering plus dimension scaling;
* hole interpolation — missing samples are NULL holes, and one query
  replaces each hole by its window average *while leaving real samples
  untouched* (aggregate + anchor-value in a single CASE).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import SciQLError
from repro.engine import Connection


class SensorLog:
    """A sampled signal stored as a 1-D SciQL array over time."""

    def __init__(
        self,
        connection: Connection,
        name: str,
        length: int,
        value_type: str = "DOUBLE",
    ):
        self.connection = connection
        self.name = name
        self.length = length
        connection.execute(
            f"CREATE ARRAY {name} (t INT DIMENSION[0:1:{length}], "
            f"v {value_type})"
        )

    # ------------------------------------------------------------------
    # loading
    # ------------------------------------------------------------------
    @classmethod
    def from_numpy(
        cls, connection: Connection, name: str, samples: np.ndarray
    ) -> "SensorLog":
        """Bulk-load a 1-D signal (NaN entries become holes)."""
        from repro.gdk.atoms import Atom
        from repro.gdk.column import Column

        if samples.ndim != 1:
            raise SciQLError("SensorLog needs a 1-D signal")
        log = cls(connection, name, len(samples))
        values = samples.astype(np.float64)
        mask = np.isnan(values)
        column = Column(Atom.DBL, np.where(mask, 0.0, values), mask)
        with connection.staging() as txn:
            array = connection.catalog.get_array(name)
            array.replace_values(
                "v", np.arange(len(samples), dtype=np.int64), column
            )
            txn.note_write(name)
        return log

    def record(self, t: int, value: float) -> None:
        """Store one sample (INSERT overwrites the cell)."""
        self.connection.execute(
            f"INSERT INTO {self.name} VALUES (?, ?)", (t, value)
        )

    def to_numpy(self) -> np.ndarray:
        """The signal as float64 with NaN holes."""
        result = self.connection.execute(f"SELECT [t], v FROM {self.name}")
        return result.grid()

    # ------------------------------------------------------------------
    # window queries (each one structural-grouping statement)
    # ------------------------------------------------------------------
    def moving(self, aggregate: str, before: int, after: int) -> np.ndarray:
        """Moving aggregate over the window ``[t-before, t+after]``."""
        if before < 0 or after < 0:
            raise SciQLError("window extents must be non-negative")
        result = self.connection.execute(
            f"SELECT [t], {aggregate.upper()}(v) FROM {self.name} "
            f"GROUP BY {self.name}[t-{before}:t+{after + 1}]"
        )
        return result.grid()

    def moving_average(self, window: int = 3) -> np.ndarray:
        """Centred moving average over an odd-sized window."""
        if window % 2 != 1:
            raise SciQLError("centred windows need an odd size")
        half = window // 2
        return self.moving("avg", half, half)

    def trailing_sum(self, window: int) -> np.ndarray:
        """Sum over the trailing window ``[t-window+1, t]``."""
        return self.moving("sum", window - 1, 0)

    def difference(self) -> np.ndarray:
        """First discrete difference ``v(t) - v(t-1)`` (cell addressing)."""
        result = self.connection.execute(
            f"SELECT [t], v - {self.name}[t-1] FROM {self.name}"
        )
        return result.grid()

    def downsample(self, factor: int, aggregate: str = "avg") -> np.ndarray:
        """Aggregate non-overlapping blocks of *factor* samples."""
        if factor <= 0:
            raise SciQLError("downsampling factor must be positive")
        result = self.connection.execute(
            f"SELECT [t / {factor}], {aggregate.upper()}(v) FROM {self.name} "
            f"GROUP BY {self.name}[t:t+{factor}] "
            f"HAVING t MOD {factor} = 0"
        )
        return result.grid()

    def anomalies(self, window: int = 5, threshold: float = 2.0) -> list[tuple[int, float]]:
        """Samples deviating from their centred window mean by > threshold.

        One query: the window AVG is the aggregate, the sample itself is
        the anchor value, HAVING filters — a set-interpretation result
        (a table of (t, v) rows) computed with array machinery.
        """
        half = window // 2
        result = self.connection.execute(
            f"SELECT t, v FROM {self.name} "
            f"GROUP BY {self.name}[t-{half}:t+{half + 1}] "
            f"HAVING v - AVG(v) > {threshold} OR AVG(v) - v > {threshold}"
        )
        return [(int(t), float(v)) for t, v in result.rows()]

    def interpolate_holes(self, window: int = 5) -> int:
        """Replace holes by their window average, in place, in one query.

        Real samples stay untouched because the CASE falls back to the
        anchor's own value; holes get the aggregate (which ignores
        holes, so it averages the surviving neighbours).
        """
        half = window // 2
        before = self.connection.execute(
            f"SELECT COUNT(*) - COUNT(v) FROM {self.name}"
        ).scalar()
        self.connection.execute(
            f"INSERT INTO {self.name} "
            f"SELECT [t], CASE WHEN v IS NULL THEN AVG(v) ELSE v END "
            f"FROM {self.name} GROUP BY {self.name}[t-{half}:t+{half + 1}]"
        )
        after = self.connection.execute(
            f"SELECT COUNT(*) - COUNT(v) FROM {self.name}"
        ).scalar()
        return int(before - after)

    def drop_below(self, threshold: float) -> int:
        """DELETE samples below a threshold (they become holes)."""
        result = self.connection.execute(
            f"DELETE FROM {self.name} WHERE v < {threshold!r}"
        )
        return result.affected


# ----------------------------------------------------------------------
# numpy reference implementations (tests/benchmarks)
# ----------------------------------------------------------------------
def reference_moving_average(signal: np.ndarray, window: int) -> np.ndarray:
    """Centred moving average with edge clipping and NaN holes ignored."""
    half = window // 2
    out = np.empty(len(signal))
    for t in range(len(signal)):
        lo = max(0, t - half)
        hi = min(len(signal), t + half + 1)
        chunk = signal[lo:hi]
        valid = chunk[~np.isnan(chunk)]
        out[t] = valid.mean() if len(valid) else np.nan
    return out


def reference_difference(signal: np.ndarray) -> np.ndarray:
    out = np.full(len(signal), np.nan)
    out[1:] = signal[1:] - signal[:-1]
    return out


def reference_downsample(
    signal: np.ndarray, factor: int
) -> np.ndarray:
    blocks = -(-len(signal) // factor)
    out = np.empty(blocks)
    for b in range(blocks):
        chunk = signal[b * factor : (b + 1) * factor]
        valid = chunk[~np.isnan(chunk)]
        out[b] = valid.mean() if len(valid) else np.nan
    return out


def synthetic_signal(
    length: int = 256,
    seed: int = 5,
    hole_fraction: float = 0.0,
    spike_positions: Sequence[int] = (),
) -> np.ndarray:
    """A noisy sine with optional dropout holes and injected spikes."""
    rng = np.random.default_rng(seed)
    t = np.arange(length)
    signal = 10.0 + 4.0 * np.sin(2 * np.pi * t / 48) + rng.normal(0, 0.4, length)
    for position in spike_positions:
        signal[position] += 8.0
    if hole_fraction > 0:
        holes = rng.random(length) < hole_fraction
        signal[holes] = np.nan
    return signal
