"""A Pythonic facade over stored SciQL arrays.

:class:`ArrayHandle` wraps one catalog array behind numpy-flavoured
accessors — every method is sugar over SciQL queries, so the handle
also documents, by construction, how each array idiom maps onto the
query language::

    handle = ArrayHandle.from_numpy(conn, "img", picture)
    handle[4:8, 4:8]              # zoom      -> WHERE x BETWEEN ...
    handle.tile((3, 3), "avg")    # smoothing -> GROUP BY img[x-1:x+2]...
    handle.shift((-1, 0))         # neighbour -> img[x-1][y]
    handle[2, 2] = 255            # INSERT INTO img VALUES (2, 2, 255)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from repro.errors import DimensionError, SciQLError

if TYPE_CHECKING:  # avoid a circular import; Connection is typing-only here
    from repro.engine import Connection


def _normalise_index(index) -> tuple:
    if not isinstance(index, tuple):
        index = (index,)
    return index


class ArrayHandle:
    """One stored SciQL array, addressed through Python conventions."""

    def __init__(self, connection: "Connection", name: str):
        self.connection = connection
        self.name = name.lower()
        self._array  # resolve eagerly so a bad name fails at handle creation

    @property
    def _array(self):
        # Re-resolve on every access: committed writes publish a *new*
        # catalog version with fresh object descriptors, so a cached
        # reference would read the pre-write snapshot forever.
        return self.connection.catalog.get_array(self.name)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        connection: "Connection",
        name: str,
        dimensions: Sequence[tuple[str, int, int, int]],
        attribute: str = "v",
        type_name: str = "INT",
        default: Any = 0,
    ) -> "ArrayHandle":
        """CREATE ARRAY with (name, start, step, stop) dimension specs."""
        dims_sql = ", ".join(
            f"{dim} INT DIMENSION[{start}:{step}:{stop}]"
            for dim, start, step, stop in dimensions
        )
        default_sql = "" if default is None else f" DEFAULT {default!r}"
        connection.execute(
            f"CREATE ARRAY {name} ({dims_sql}, "
            f"{attribute} {type_name}{default_sql})"
        )
        return cls(connection, name)

    @classmethod
    def from_numpy(
        cls,
        connection: "Connection",
        name: str,
        data: np.ndarray,
        dimension_names: Optional[Sequence[str]] = None,
        attribute: str = "v",
    ) -> "ArrayHandle":
        """Materialise a numpy array as a stored SciQL array (bulk path)."""
        from repro.gdk.atoms import Atom
        from repro.gdk.column import Column

        names = list(dimension_names or ("x", "y", "z", "w")[: data.ndim])
        if len(names) != data.ndim:
            raise DimensionError("dimension name count differs from data rank")
        dims_sql = ", ".join(
            f"{dim} INT DIMENSION[0:1:{size}]"
            for dim, size in zip(names, data.shape)
        )
        if np.issubdtype(data.dtype, np.floating):
            type_name, atom = "DOUBLE", Atom.DBL
        else:
            type_name, atom = "INT", Atom.INT
        connection.execute(
            f"CREATE ARRAY {name} ({dims_sql}, {attribute} {type_name})"
        )
        handle = cls(connection, name)
        flat = np.ascontiguousarray(data).reshape(-1)
        oids = np.arange(flat.size, dtype=np.int64)
        # Stage the bulk load transactionally: the direct storage write
        # lands in the transaction fork and publishes atomically.
        with connection.staging() as txn:
            handle._array.replace_values(attribute, oids, Column(atom, flat))
            txn.note_write(handle.name)
        return handle

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self._array.shape()

    @property
    def ndim(self) -> int:
        return len(self._array.dimensions)

    @property
    def dimension_names(self) -> list[str]:
        return self._array.dimension_names()

    @property
    def attribute_names(self) -> list[str]:
        return [a.name for a in self._array.attributes]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        dims = ", ".join(
            f"{d.name}{d.spec()}" for d in self._array.dimensions
        )
        return f"ArrayHandle({self.name}: {dims})"

    def _single_attribute(self, attribute: Optional[str]) -> str:
        if attribute is not None:
            return attribute
        if len(self._array.attributes) != 1:
            raise SciQLError(
                f"array {self.name!r} has several attributes; name one of "
                f"{self.attribute_names}"
            )
        return self._array.attributes[0].name

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def to_numpy(self, attribute: Optional[str] = None) -> np.ndarray:
        """All cells as an ndarray (NaN holes for numeric attributes)."""
        return self._array.grid(self._single_attribute(attribute))

    def __getitem__(self, index) -> Any:
        """Point access or rectangular zoom, in dimension value space."""
        index = _normalise_index(index)
        if len(index) != self.ndim:
            raise DimensionError(
                f"array {self.name!r} has {self.ndim} dimensions, "
                f"got {len(index)} subscripts"
            )
        attribute = self._single_attribute(None)
        conditions: list[str] = []
        point = True
        for dim, sub in zip(self._array.dimensions, index):
            if isinstance(sub, slice):
                point = False
                if sub.step not in (None, 1):
                    raise DimensionError("stepped slices are not supported")
                start = dim.start if sub.start is None else sub.start
                stop = dim.stop if sub.stop is None else sub.stop
                conditions.append(
                    f"{dim.name} BETWEEN {start} AND {stop - 1}"
                )
            else:
                conditions.append(f"{dim.name} = {int(sub)}")
        where = " AND ".join(conditions)
        if point:
            result = self.connection.execute(
                f"SELECT {attribute} FROM {self.name} WHERE {where}"
            )
            rows = result.rows()
            if not rows:
                raise DimensionError(f"cell {index} outside array {self.name!r}")
            return rows[0][0]
        dims = ", ".join(f"[{d.name}]" for d in self._array.dimensions)
        result = self.connection.execute(
            f"SELECT {dims}, {attribute} FROM {self.name} WHERE {where}"
        )
        return result.grid()

    def shift(self, deltas: Sequence[int], attribute: Optional[str] = None) -> np.ndarray:
        """Relative cell access: entry a becomes cell ``a + deltas``."""
        if len(deltas) != self.ndim:
            raise DimensionError("shift rank differs from array rank")
        attribute = self._single_attribute(attribute)
        refs = "".join(
            f"[{d.name}{'+' if delta >= 0 else ''}{delta}]" if delta else f"[{d.name}]"
            for d, delta in zip(self._array.dimensions, deltas)
        )
        dims = ", ".join(f"[{d.name}]" for d in self._array.dimensions)
        result = self.connection.execute(
            f"SELECT {dims}, {self.name}{refs}.{attribute} FROM {self.name}"
        )
        return result.grid()

    def tile(
        self,
        spans: Sequence[int | tuple[int, int]],
        aggregate: str = "avg",
        attribute: Optional[str] = None,
    ) -> np.ndarray:
        """Structural grouping: per-anchor aggregate over a tile.

        ``spans[i]`` is either an integer k (the range ``[d : d+k]``) or
        an explicit offset pair ``(lo, hi)`` for ``[d+lo : d+hi]``;
        centred 3×3 smoothing is ``spans=((-1, 2), (-1, 2))``.
        """
        if len(spans) != self.ndim:
            raise DimensionError("tile rank differs from array rank")
        attribute = self._single_attribute(attribute)
        brackets = []
        for dim, span in zip(self._array.dimensions, spans):
            if isinstance(span, tuple):
                lo, hi = span
            else:
                lo, hi = 0, int(span)
            lo_sql = f"{dim.name}{'+' if lo >= 0 else ''}{lo}" if lo else dim.name
            hi_sql = f"{dim.name}{'+' if hi >= 0 else ''}{hi}" if hi else dim.name
            brackets.append(f"[{lo_sql}:{hi_sql}]")
        dims = ", ".join(f"[{d.name}]" for d in self._array.dimensions)
        query = (
            f"SELECT {dims}, {aggregate.upper()}({attribute}) FROM {self.name} "
            f"GROUP BY {self.name}{''.join(brackets)}"
        )
        return self.connection.execute(query).grid()

    def to_rows(self, drop_holes: bool = False) -> list[tuple]:
        """Array→table coercion: (coordinates..., attributes...) tuples."""
        columns = ", ".join(self._array.column_names())
        result = self.connection.execute(f"SELECT {columns} FROM {self.name}")
        rows = result.rows()
        if not drop_holes:
            return rows
        width = len(self._array.dimensions)
        return [r for r in rows if any(v is not None for v in r[width:])]

    # ------------------------------------------------------------------
    # writing
    # ------------------------------------------------------------------
    def __setitem__(self, index, value) -> None:
        """Point or rectangular assignment (UPDATE semantics)."""
        index = _normalise_index(index)
        if len(index) != self.ndim:
            raise DimensionError("subscript rank differs from array rank")
        attribute = self._single_attribute(None)
        conditions = []
        for dim, sub in zip(self._array.dimensions, index):
            if isinstance(sub, slice):
                start = dim.start if sub.start is None else sub.start
                stop = dim.stop if sub.stop is None else sub.stop
                conditions.append(f"{dim.name} BETWEEN {start} AND {stop - 1}")
            else:
                conditions.append(f"{dim.name} = {int(sub)}")
        value_sql = "NULL" if value is None else repr(value)
        self.connection.execute(
            f"UPDATE {self.name} SET {attribute} = {value_sql} "
            f"WHERE {' AND '.join(conditions)}"
        )

    def fill(self, expression: str, where: Optional[str] = None) -> int:
        """UPDATE every (matching) cell with a SciQL expression."""
        attribute = self._single_attribute(None)
        where_sql = f" WHERE {where}" if where else ""
        result = self.connection.execute(
            f"UPDATE {self.name} SET {attribute} = {expression}{where_sql}"
        )
        return result.affected

    def punch_holes(self, where: str) -> int:
        """DELETE matching cells (they become NULL holes)."""
        result = self.connection.execute(
            f"DELETE FROM {self.name} WHERE {where}"
        )
        return result.affected

    def resize(self, dimension: str, start: int, step: int, stop: int) -> None:
        """ALTER ARRAY ... SET RANGE."""
        self.connection.execute(
            f"ALTER ARRAY {self.name} ALTER DIMENSION {dimension} "
            f"SET RANGE [{start}:{step}:{stop}]"
        )

    def drop(self) -> None:
        """DROP ARRAY."""
        self.connection.execute(f"DROP ARRAY {self.name}")
