"""SciQL core semantics: dimensions, tiling, coercions.

This package holds the paper's primary contribution in library form,
independent of the SQL surface: structural grouping
(:mod:`repro.core.tiling`) and array/table coercions
(:mod:`repro.core.coercion`).
"""

from repro.core.array import ArrayHandle
from repro.core.coercion import (
    cells_to_rows,
    infer_dimension_range,
    table_to_array_columns,
)
from repro.core.tiling import TileSpec, brute_force_tile_aggregate, tile_aggregate

__all__ = [
    "ArrayHandle",
    "TileSpec",
    "brute_force_tile_aggregate",
    "cells_to_rows",
    "infer_dimension_range",
    "table_to_array_columns",
    "tile_aggregate",
]
