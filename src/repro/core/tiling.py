"""Structural grouping — SciQL's array tiling (paper Section 2, Figure 1(d,e)).

Value-based SQL grouping collects rows whose *values* match; structural
grouping collects array cells whose *positions* relate to an anchor
point.  ``GROUP BY matrix[x:x+2][y:y+2]`` creates, for every valid
anchor ``(x, y)``, the tile of cells at relative positions
``{0,1}×{0,1}``; an aggregate then folds every tile into one value that
is "associated with the dimensional value(s) of the anchor point".

Two semantics from the paper drive this module:

* every valid anchor produces a group — including anchors whose tile
  sticks out of the array ("cells outside the array dimension ranges
  are ignored by the aggregation functions");
* holes (NULL cells) are ignored by aggregation; a tile consisting
  entirely of holes/out-of-range cells aggregates to NULL.

The engine works on the dense cell order used for array storage
(first-declared dimension varies slowest) and evaluates one shifted
scan per tile cell: ``O(|tile| * |array|)`` — the columnar equivalent
of MonetDB's implementation, and the reason tiling beats the N-way
self-join formulation that plain SQL would need (Scenario I).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import DimensionError, GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column

#: aggregates the tiling engine supports.
TILE_AGGREGATES = ("sum", "avg", "min", "max", "count", "prod", "count_star")


@dataclass(frozen=True)
class TileSpec:
    """A tile pattern: per dimension, the relative *rank* offsets.

    A range ``[x-1 : x+2]`` over a step-1 dimension becomes offsets
    ``[-1, 0, 1]``.  For step-``s`` dimensions only multiples of ``s``
    remain (other offsets can never hit a valid dimension value), and
    offsets are expressed in ranks (dimension units divided by step).
    """

    offsets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise DimensionError("tile needs at least one dimension")
        for per_dim in self.offsets:
            if not per_dim:
                raise DimensionError("tile has an empty offset list")

    @property
    def ndim(self) -> int:
        return len(self.offsets)

    @property
    def cells_per_tile(self) -> int:
        n = 1
        for per_dim in self.offsets:
            n *= len(per_dim)
        return n

    def deltas(self) -> Iterator[tuple[int, ...]]:
        """All relative cell positions (cross product of offsets)."""
        return itertools.product(*self.offsets)

    @classmethod
    def from_ranges(
        cls, ranges: list[tuple[int, int]], steps: list[int] | None = None
    ) -> "TileSpec":
        """Build from per-dimension half-open offset ranges.

        ``ranges[i] = (lo, hi)`` covers dimension-unit offsets
        ``lo .. hi-1`` relative to the anchor, mirroring the surface
        syntax ``A[x+lo : x+hi]``.
        """
        steps = steps or [1] * len(ranges)
        if len(steps) != len(ranges):
            raise DimensionError("ranges/steps length mismatch")
        per_dim: list[tuple[int, ...]] = []
        for (lo, hi), step in zip(ranges, steps):
            if hi <= lo:
                raise DimensionError(f"empty tile range [{lo}, {hi})")
            ranks = tuple(
                delta // step for delta in range(lo, hi) if delta % step == 0
            )
            if not ranks:
                raise DimensionError(
                    f"tile range [{lo}, {hi}) hits no valid value of a step-{step} dimension"
                )
            per_dim.append(ranks)
        return cls(tuple(per_dim))


def shifted(grid: np.ndarray, deltas: tuple[int, ...]) -> np.ndarray:
    """Grid where entry *a* holds ``grid[a + deltas]``; NaN outside."""
    out = np.full(grid.shape, np.nan)
    src: list[slice] = []
    dst: list[slice] = []
    for size, delta in zip(grid.shape, deltas):
        if delta >= 0:
            if delta >= size:
                return out
            src.append(slice(delta, size))
            dst.append(slice(0, size - delta))
        else:
            if -delta >= size:
                return out
            src.append(slice(0, size + delta))
            dst.append(slice(-delta, size))
    out[tuple(dst)] = grid[tuple(src)]
    return out


def in_bounds_count(shape: tuple[int, ...], spec: TileSpec) -> np.ndarray:
    """Per-anchor number of tile cells inside the array bounds."""
    counts = np.zeros(shape, dtype=np.int64)
    ones = np.ones(shape, dtype=np.float64)
    for deltas in spec.deltas():
        counts += np.isfinite(shifted(ones, deltas)).astype(np.int64)
    return counts


def tile_aggregate(
    values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str
) -> Column:
    """Aggregate every anchor's tile; result is cell-aligned with the array.

    The returned column has one entry per cell (anchor); anchors whose
    tile contains no aggregatable cell are NULL.  ``count``/``count_star``
    return 0 instead of NULL for such anchors only when at least one
    tile cell is *in bounds* (matching COUNT over an empty-but-existing
    group); anchors are always valid, so counts never go NULL.
    """
    aggregate = aggregate.lower()
    if aggregate not in TILE_AGGREGATES:
        raise GDKError(f"unsupported tile aggregate {aggregate!r}")
    cell_count = int(np.prod(shape))
    if len(values) != cell_count:
        raise DimensionError(
            f"values length {len(values)} != cell count {cell_count}"
        )
    if spec.ndim != len(shape):
        raise DimensionError("tile dimensionality differs from array")

    if aggregate == "count_star":
        counts = in_bounds_count(shape, spec).reshape(-1)
        return Column(Atom.LNG, counts)

    grid = values.to_numpy().reshape(shape)  # NaN marks holes

    if aggregate == "count":
        counts = np.zeros(shape, dtype=np.int64)
        for deltas in spec.deltas():
            counts += np.isfinite(shifted(grid, deltas)).astype(np.int64)
        return Column(Atom.LNG, counts.reshape(-1))

    acc: np.ndarray | None = None
    contributions = np.zeros(shape, dtype=np.int64)
    for deltas in spec.deltas():
        layer = shifted(grid, deltas)
        present = np.isfinite(layer)
        contributions += present.astype(np.int64)
        if aggregate in ("sum", "avg"):
            term = np.where(present, layer, 0.0)
            acc = term if acc is None else acc + term
        elif aggregate == "prod":
            term = np.where(present, layer, 1.0)
            acc = term if acc is None else acc * term
        elif aggregate == "min":
            acc = layer if acc is None else np.fmin(acc, layer)
        else:  # max
            acc = layer if acc is None else np.fmax(acc, layer)
    assert acc is not None
    empty = contributions == 0
    if aggregate == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            result = acc / contributions
        result = np.where(empty, 0.0, result)
        return Column(Atom.DBL, result.reshape(-1), empty.reshape(-1))

    result = np.where(empty, 0.0, np.where(np.isfinite(acc), acc, 0.0))
    out_atom = _result_atom(values.atom, aggregate)
    flat = result.reshape(-1)
    if out_atom is Atom.DBL:
        return Column(Atom.DBL, flat, empty.reshape(-1))
    return Column(out_atom, np.round(flat).astype(np.int64), empty.reshape(-1))


def _result_atom(input_atom: Atom, aggregate: str) -> Atom:
    if input_atom is Atom.DBL or aggregate == "avg":
        return Atom.DBL
    if aggregate in ("sum", "prod"):
        return Atom.LNG
    if aggregate in ("count", "count_star"):
        return Atom.LNG
    return input_atom  # min/max preserve the input type


def tile_members(
    shape: tuple[int, ...], spec: TileSpec, anchor_rank: tuple[int, ...]
) -> list[int]:
    """Linear cell positions of one anchor's tile (reference/brute force).

    Used by tests and by EXPLAIN-style introspection; the production
    path never materialises groups.
    """
    if len(anchor_rank) != len(shape):
        raise DimensionError("anchor dimensionality differs from array")
    strides: list[int] = []
    acc = 1
    for size in reversed(shape):
        strides.append(acc)
        acc *= size
    strides.reverse()
    members: list[int] = []
    for deltas in spec.deltas():
        position = 0
        valid = True
        for rank, delta, size, stride in zip(anchor_rank, deltas, shape, strides):
            target = rank + delta
            if target < 0 or target >= size:
                valid = False
                break
            position += target * stride
        if valid:
            members.append(position)
    return members


def brute_force_tile_aggregate(
    values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str
) -> list:
    """O(anchors × tile) reference implementation for property tests."""
    data = values.to_pylist()
    out: list = []
    for anchor in itertools.product(*(range(size) for size in shape)):
        members = tile_members(shape, spec, anchor)
        cell_values = [data[m] for m in members if data[m] is not None]
        if aggregate == "count_star":
            out.append(len(members))
        elif aggregate == "count":
            out.append(len(cell_values))
        elif not cell_values:
            out.append(None)
        elif aggregate == "sum":
            out.append(sum(cell_values))
        elif aggregate == "avg":
            out.append(sum(cell_values) / len(cell_values))
        elif aggregate == "min":
            out.append(min(cell_values))
        elif aggregate == "max":
            out.append(max(cell_values))
        elif aggregate == "prod":
            product = 1
            for value in cell_values:
                product *= value
            out.append(product)
        else:
            raise GDKError(f"unsupported aggregate {aggregate!r}")
    return out
