"""Structural grouping — SciQL's array tiling (paper Section 2, Figure 1(d,e)).

Value-based SQL grouping collects rows whose *values* match; structural
grouping collects array cells whose *positions* relate to an anchor
point.  ``GROUP BY matrix[x:x+2][y:y+2]`` creates, for every valid
anchor ``(x, y)``, the tile of cells at relative positions
``{0,1}×{0,1}``; an aggregate then folds every tile into one value that
is "associated with the dimensional value(s) of the anchor point".

Two semantics from the paper drive this module:

* every valid anchor produces a group — including anchors whose tile
  sticks out of the array ("cells outside the array dimension ranges
  are ignored by the aggregation functions");
* holes (NULL cells) are ignored by aggregation; a tile consisting
  entirely of holes/out-of-range cells aggregates to NULL.

The engine works on the dense cell order used for array storage
(first-declared dimension varies slowest).  Three kernel families back
:func:`tile_aggregate`, picked per (tile spec, aggregate):

* **prefix-sum sliding windows** — for ``sum``/``count``/``avg`` over
  *dense* rectangular specs (per dimension, a contiguous offset range)
  the window sum along each axis is one cumulative sum plus one clipped
  difference, applied axis by axis: ``O(|array| · ndim)`` regardless of
  tile size.  Integer inputs accumulate in int64 (wrapping arithmetic
  is exact mod 2^64, so any per-tile sum representable in int64 comes
  out exact — no float64 round-trip);
* **van Herk–Gil-Werman sliding extrema** — ``min``/``max`` over dense
  specs run the classic two-accumulation-sweeps-per-axis algorithm:
  ``O(|array| · ndim)`` independent of window length;
* **vectorized shifted scans** — the columnar equivalent of MonetDB's
  implementation (one shifted full-array pass per tile cell,
  ``O(|tile| · |array|)``) survives as the fallback for sparse specs
  and for ``prod``, and as the benchmark baseline
  :func:`shifted_scan_tile_aggregate`.

NULLs travel as explicit boolean masks end to end; no kernel widens
integer payloads through NaN-tagged float64 anymore.

:func:`tile_aggregate_fragment` computes one *halo fragment* of the
result: anchors ``[start, stop)`` of the linear cell order (the same
bounds ``mat.partition`` uses), evaluated over an input slab widened by
the tile's dim-0 offset extent.  Because every in-bounds tile cell of
the fragment's anchors lies inside the slab — and slab-edge clipping
coincides with array-edge clipping for exactly those anchors — packing
the fragments reproduces the sequential result byte for byte.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import DimensionError, GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column

#: aggregates the tiling engine supports.
TILE_AGGREGATES = ("sum", "avg", "min", "max", "count", "prod", "count_star")

#: tiles at or below this many cells stay on the shifted-scan path —
#: a 2×2 scan is fewer array passes than the prefix-sum machinery.
#: sliding extrema amortise later than sliding sums (vHGW runs ~3
#: accumulation passes per axis), hence the higher extrema cutoff.
#: Dispatch depends only on (spec, aggregate), never on the data, so
#: halo fragments and whole-array runs always pick the same kernel.
SCAN_CUTOFF_SUMS = 4
SCAN_CUTOFF_EXTREMA = 9


@dataclass(frozen=True)
class TileSpec:
    """A tile pattern: per dimension, the relative *rank* offsets.

    A range ``[x-1 : x+2]`` over a step-1 dimension becomes offsets
    ``[-1, 0, 1]``.  For step-``s`` dimensions only multiples of ``s``
    remain (other offsets can never hit a valid dimension value), and
    offsets are expressed in ranks (dimension units divided by step).
    """

    offsets: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if not self.offsets:
            raise DimensionError("tile needs at least one dimension")
        for per_dim in self.offsets:
            if not per_dim:
                raise DimensionError("tile has an empty offset list")

    @property
    def ndim(self) -> int:
        return len(self.offsets)

    @property
    def cells_per_tile(self) -> int:
        n = 1
        for per_dim in self.offsets:
            n *= len(per_dim)
        return n

    def deltas(self) -> Iterator[tuple[int, ...]]:
        """All relative cell positions (cross product of offsets)."""
        return itertools.product(*self.offsets)

    def dense_ranges(self) -> Optional[list[tuple[int, int]]]:
        """Per-dimension ``(lo, hi)`` when every dimension's offsets form
        a contiguous integer range — the precondition of the separable
        prefix-sum / sliding-extrema kernels.  ``None`` for sparse specs
        (hand-built offset lists with gaps), which keep the shifted-scan
        path."""
        out: list[tuple[int, int]] = []
        for per_dim in self.offsets:
            lo, hi = min(per_dim), max(per_dim)
            if hi - lo + 1 != len(set(per_dim)) or len(set(per_dim)) != len(per_dim):
                return None
            out.append((lo, hi))
        return out

    def halo(self, dim: int = 0) -> tuple[int, int]:
        """Offset extent ``(lo, hi)`` of one dimension — the halo a
        fragment must widen its slab by along that axis."""
        per_dim = self.offsets[dim]
        return min(per_dim), max(per_dim)

    @classmethod
    def from_ranges(
        cls, ranges: list[tuple[int, int]], steps: list[int] | None = None
    ) -> "TileSpec":
        """Build from per-dimension half-open offset ranges.

        ``ranges[i] = (lo, hi)`` covers dimension-unit offsets
        ``lo .. hi-1`` relative to the anchor, mirroring the surface
        syntax ``A[x+lo : x+hi]``.
        """
        steps = steps or [1] * len(ranges)
        if len(steps) != len(ranges):
            raise DimensionError("ranges/steps length mismatch")
        per_dim: list[tuple[int, ...]] = []
        for (lo, hi), step in zip(ranges, steps):
            if hi <= lo:
                raise DimensionError(f"empty tile range [{lo}, {hi})")
            ranks = tuple(
                delta // step for delta in range(lo, hi) if delta % step == 0
            )
            if not ranks:
                raise DimensionError(
                    f"tile range [{lo}, {hi}) hits no valid value of a step-{step} dimension"
                )
            per_dim.append(ranks)
        return cls(tuple(per_dim))


def shifted(grid: np.ndarray, deltas: tuple[int, ...]) -> np.ndarray:
    """Grid where entry *a* holds ``grid[a + deltas]``; NaN outside.

    Retained for tests/introspection; the production kernels shift
    values and validity masks separately (:func:`_shift_masked`)."""
    out = np.full(grid.shape, np.nan)
    window = _shift_slices(grid.shape, deltas)
    if window is not None:
        src, dst = window
        out[dst] = grid[src]
    return out


def _shift_slices(shape, deltas):
    """(src, dst) slice tuples realising a clipped shift; None if empty."""
    src: list[slice] = []
    dst: list[slice] = []
    for size, delta in zip(shape, deltas):
        if delta >= 0:
            if delta >= size:
                return None
            src.append(slice(delta, size))
            dst.append(slice(0, size - delta))
        else:
            if -delta >= size:
                return None
            src.append(slice(0, size + delta))
            dst.append(slice(-delta, size))
    return tuple(src), tuple(dst)


def _shift_masked(
    grid: np.ndarray, valid: np.ndarray, deltas: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Dtype-preserving shift: (shifted values, shifted validity).

    Cells whose source falls outside the array come back invalid; the
    payload dtype is never widened."""
    out = np.zeros_like(grid)
    ok = np.zeros(grid.shape, dtype=np.bool_)
    window = _shift_slices(grid.shape, deltas)
    if window is not None:
        src, dst = window
        out[dst] = grid[src]
        ok[dst] = valid[src]
    return out, ok


def in_bounds_count(shape: tuple[int, ...], spec: TileSpec) -> np.ndarray:
    """Per-anchor number of tile cells inside the array bounds.

    The tile is a cross product of per-dimension offset lists, so the
    count factors into a product of 1-D per-axis counts — ``O(Σ n_i)``
    work instead of one shifted scan per tile cell (closed form for
    contiguous offset ranges, one pass per offset otherwise)."""
    counts: np.ndarray | None = None
    for axis, (size, per_dim) in enumerate(zip(shape, spec.offsets)):
        positions = np.arange(size, dtype=np.int64)
        lo, hi = min(per_dim), max(per_dim)
        if hi - lo + 1 == len(set(per_dim)) == len(per_dim):
            clipped_hi = np.minimum(positions + hi, size - 1)
            clipped_lo = np.maximum(positions + lo, 0)
            axis_count = np.maximum(clipped_hi - clipped_lo + 1, 0)
        else:
            axis_count = np.zeros(size, dtype=np.int64)
            for delta in per_dim:
                axis_count += (positions + delta >= 0) & (positions + delta < size)
        view = [1] * len(shape)
        view[axis] = size
        axis_count = axis_count.reshape(view)
        counts = axis_count if counts is None else counts * axis_count
    assert counts is not None
    return np.broadcast_to(counts, shape).copy() if counts.shape != shape else counts


# ----------------------------------------------------------------------
# separable per-axis kernels (dense rectangular specs)
# ----------------------------------------------------------------------
def _sliding_sum_axis(arr: np.ndarray, lo: int, hi: int, axis: int) -> np.ndarray:
    """Clipped sliding-window sum ``out[i] = Σ arr[i+lo .. i+hi]`` along
    *axis* via one cumulative sum — O(n), window-size-independent.

    Integer arrays stay integer: int64 wraps mod 2^64, so the windowed
    difference is exact whenever the true window sum fits in int64."""
    arr = np.moveaxis(arr, axis, -1)
    n = arr.shape[-1]
    prefix = np.zeros(arr.shape[:-1] + (n + 1,), dtype=arr.dtype)
    np.cumsum(arr, axis=-1, out=prefix[..., 1:])
    upper = np.clip(np.arange(n) + hi + 1, 0, n)
    lower = np.clip(np.arange(n) + lo, 0, n)
    out = prefix[..., upper] - prefix[..., lower]
    return np.moveaxis(out, -1, axis)


def _extremum_identity(dtype: np.dtype, maximum: bool):
    if dtype == np.float64:
        return -np.inf if maximum else np.inf
    info = np.iinfo(dtype)
    return info.min if maximum else info.max


def _sliding_extremum_axis(
    arr: np.ndarray, lo: int, hi: int, axis: int, maximum: bool
) -> np.ndarray:
    """Clipped sliding min/max along *axis* — van Herk–Gil-Werman.

    Two accumulation sweeps over blocks of the window length give every
    window extremum in O(n) regardless of the window size: partition
    the (identity-padded) axis into blocks of ``w``, take running
    extrema forward (``fwd``) and backward (``bwd``) within each block;
    the window ``[j, j+w)`` spans at most two blocks, so its extremum
    is ``op(bwd[j], fwd[j+w-1])``."""
    arr = np.moveaxis(arr, axis, -1)
    n = arr.shape[-1]
    w = hi - lo + 1
    ident = _extremum_identity(arr.dtype, maximum)
    # Window k of the padded index space reads arr[k+lo .. k+hi].
    span = n + w - 1
    blocks = -(-span // w)
    padded = np.full(arr.shape[:-1] + (blocks * w,), ident, dtype=arr.dtype)
    k0, k1 = max(0, -lo), min(span, n - lo)
    if k1 > k0:
        padded[..., k0:k1] = arr[..., k0 + lo : k1 + lo]
    if w == 1:
        out = padded[..., :n]
        return np.moveaxis(out, -1, axis)
    op = np.maximum if maximum else np.minimum
    shaped = padded.reshape(arr.shape[:-1] + (blocks, w))
    fwd = op.accumulate(shaped, axis=-1).reshape(padded.shape)
    bwd = (
        op.accumulate(shaped[..., ::-1], axis=-1)[..., ::-1].reshape(padded.shape)
    )
    out = op(bwd[..., :n], fwd[..., w - 1 : w - 1 + n])
    return np.moveaxis(out, -1, axis)


# ----------------------------------------------------------------------
# the tiling engine
# ----------------------------------------------------------------------
def _numeric_grid(
    values: Column, shape: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """(values grid in its working dtype, validity grid)."""
    atom = values.atom
    if atom is Atom.DBL:
        work = values.values
    elif atom in (Atom.INT, Atom.LNG, Atom.OID, Atom.BIT):
        work = values.values.astype(np.int64, copy=False)
    else:
        raise GDKError(f"tiling needs numeric cells, not {atom.value}")
    return work.reshape(shape), values.validity().reshape(shape)


def _validate(values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str):
    if aggregate not in TILE_AGGREGATES:
        raise GDKError(f"unsupported tile aggregate {aggregate!r}")
    cell_count = int(np.prod(shape)) if shape else 0
    if len(values) != cell_count:
        raise DimensionError(
            f"values length {len(values)} != cell count {cell_count}"
        )
    if spec.ndim != len(shape):
        raise DimensionError("tile dimensionality differs from array")


def _finalize(
    acc: np.ndarray, counts: np.ndarray, aggregate: str, input_atom: Atom
) -> Column:
    """Shared epilogue: NULL anchors (no contributing cell), atom choice."""
    empty = counts == 0
    if aggregate == "avg":
        with np.errstate(invalid="ignore", divide="ignore"):
            result = acc / counts
        result = np.where(empty, 0.0, result)
        return Column(Atom.DBL, result.reshape(-1), empty.reshape(-1))
    result = np.where(empty, acc.dtype.type(0), acc)
    out_atom = _result_atom(input_atom, aggregate)
    flat = result.reshape(-1)
    if out_atom is Atom.DBL and flat.dtype != np.float64:
        flat = flat.astype(np.float64)
    return Column(out_atom, flat, empty.reshape(-1))


def _dense_tile_aggregate(
    grid: np.ndarray,
    valid: np.ndarray,
    has_nulls: bool,
    shape: tuple[int, ...],
    ranges: list[tuple[int, int]],
    spec: TileSpec,
    aggregate: str,
    input_atom: Atom,
) -> Column:
    """Separable per-axis passes: O(|array| · ndim), tile-size-free."""
    if has_nulls:
        counts = valid.astype(np.int64)
        for axis, (lo, hi) in enumerate(ranges):
            counts = _sliding_sum_axis(counts, lo, hi, axis)
    else:
        counts = in_bounds_count(shape, spec)
    if aggregate == "count":
        return Column(Atom.LNG, counts.reshape(-1))
    if aggregate in ("sum", "avg"):
        acc = np.where(valid, grid, grid.dtype.type(0)) if has_nulls else grid
        for axis, (lo, hi) in enumerate(ranges):
            acc = _sliding_sum_axis(acc, lo, hi, axis)
        return _finalize(acc, counts, aggregate, input_atom)
    # min / max
    maximum = aggregate == "max"
    ident = _extremum_identity(grid.dtype, maximum)
    acc = np.where(valid, grid, ident) if has_nulls else grid
    for axis, (lo, hi) in enumerate(ranges):
        acc = _sliding_extremum_axis(acc, lo, hi, axis, maximum)
    return _finalize(acc, counts, aggregate, input_atom)


def _scan_tile_aggregate(
    grid: np.ndarray,
    valid: np.ndarray,
    shape: tuple[int, ...],
    spec: TileSpec,
    aggregate: str,
    input_atom: Atom,
) -> Column:
    """One shifted pass per tile cell — O(|tile| · |array|).

    The vectorized sibling of :func:`brute_force_tile_aggregate`:
    fallback for sparse specs and ``prod``, and the baseline the E19
    benchmarks pit the prefix-sum/sliding kernels against.  Mask-based,
    so integer aggregates stay integer-exact here too."""
    if aggregate == "count_star":
        counts = np.zeros(shape, dtype=np.int64)
        ones = np.ones(shape, dtype=np.bool_)
        for deltas in spec.deltas():
            counts += _shift_masked(ones, ones, deltas)[1]
        return Column(Atom.LNG, counts.reshape(-1))
    counts = np.zeros(shape, dtype=np.int64)
    acc: np.ndarray | None = None
    maximum = aggregate == "max"
    for deltas in spec.deltas():
        layer, ok = _shift_masked(grid, valid, deltas)
        counts += ok
        if aggregate in ("sum", "avg"):
            term = np.where(ok, layer, grid.dtype.type(0))
            acc = term if acc is None else acc + term
        elif aggregate == "prod":
            term = np.where(ok, layer, grid.dtype.type(1))
            acc = term if acc is None else acc * term
        elif aggregate in ("min", "max"):
            ident = _extremum_identity(grid.dtype, maximum)
            term = np.where(ok, layer, ident)
            op = np.maximum if maximum else np.minimum
            acc = term if acc is None else op(acc, term)
    if aggregate == "count":
        return Column(Atom.LNG, counts.reshape(-1))
    assert acc is not None
    return _finalize(acc, counts, aggregate, input_atom)


def tile_aggregate(
    values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str
) -> Column:
    """Aggregate every anchor's tile; result is cell-aligned with the array.

    The returned column has one entry per cell (anchor); anchors whose
    tile contains no aggregatable cell are NULL.  ``count``/``count_star``
    return 0 instead of NULL for such anchors (anchors are always
    valid, so counts never go NULL).

    Kernel choice: dense rectangular specs take the separable
    prefix-sum (``sum``/``count``/``avg``) or van Herk–Gil-Werman
    (``min``/``max``) path, O(|array|) regardless of tile size;
    ``count_star`` is computed analytically from the shape alone;
    sparse specs and ``prod`` fall back to the vectorized shifted scan.
    """
    aggregate = aggregate.lower()
    _validate(values, shape, spec, aggregate)
    if aggregate == "count_star":
        return Column(Atom.LNG, in_bounds_count(shape, spec).reshape(-1))
    grid, valid = _numeric_grid(values, shape)
    ranges = spec.dense_ranges()
    cutoff = (
        SCAN_CUTOFF_EXTREMA if aggregate in ("min", "max") else SCAN_CUTOFF_SUMS
    )
    if ranges is not None and aggregate != "prod" and spec.cells_per_tile > cutoff:
        return _dense_tile_aggregate(
            grid, valid, values.has_nulls, shape, ranges, spec, aggregate,
            values.atom,
        )
    return _scan_tile_aggregate(grid, valid, shape, spec, aggregate, values.atom)


def shifted_scan_tile_aggregate(
    values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str
) -> Column:
    """The shifted-scan engine, unconditionally — one pass per tile cell.

    Kept public as the oracle's vectorized sibling and the benchmark
    baseline the tile-size-independent kernels are measured against."""
    aggregate = aggregate.lower()
    _validate(values, shape, spec, aggregate)
    if aggregate == "count_star":
        grid = np.zeros(shape, dtype=np.int64)
        valid = np.ones(shape, dtype=np.bool_)
        return _scan_tile_aggregate(grid, valid, shape, spec, aggregate, values.atom)
    grid, valid = _numeric_grid(values, shape)
    return _scan_tile_aggregate(grid, valid, shape, spec, aggregate, values.atom)


def _result_atom(input_atom: Atom, aggregate: str) -> Atom:
    if input_atom is Atom.DBL or aggregate == "avg":
        return Atom.DBL
    if aggregate in ("sum", "prod"):
        return Atom.LNG
    if aggregate in ("count", "count_star"):
        return Atom.LNG
    return input_atom  # min/max preserve the input type


# ----------------------------------------------------------------------
# halo fragments (fragment-parallel tiling)
# ----------------------------------------------------------------------
def _column_view(column: Column, start: int, stop: int) -> Column:
    """Zero-copy sub-column (kernels never mutate their inputs)."""
    mask = column.mask[start:stop] if column.mask is not None else None
    return Column(column.atom, column.values[start:stop], mask)


def tile_fragment_bounds(
    cells: int,
    shape: tuple[int, ...],
    spec: TileSpec,
    start: int,
    stop: int,
) -> tuple[int, int]:
    """Dim-0 slab ``[slab_lo, slab_hi)`` covering anchors ``[start, stop)``
    plus their halo.

    The slab holds whole dim-0 rows, widened by the tile's dim-0 offset
    extent and clipped to the array.  Every in-bounds tile cell of the
    fragment's anchors lies inside the slab, and slab-edge clipping
    coincides with array-edge clipping for those anchors — so the
    fragment result equals the matching slice of the whole-array result
    byte for byte.
    """
    stride0 = cells // shape[0]
    row_lo = start // stride0
    row_hi = (stop - 1) // stride0
    lo0, hi0 = spec.halo(0)
    slab_lo = max(0, row_lo + min(lo0, 0))
    slab_hi = min(shape[0], row_hi + max(hi0, 0) + 1)
    return slab_lo, slab_hi


def tile_aggregate_fragment(
    values: Column,
    shape: tuple[int, ...],
    spec: TileSpec,
    aggregate: str,
    start: int,
    stop: int,
) -> Column:
    """Tile aggregate of the anchors ``[start, stop)`` only.

    *values* is the whole cell-aligned column; the kernel reads just
    the halo slab (a zero-copy view) and returns one result entry per
    anchor in the range, identical to
    ``tile_aggregate(...)[start:stop]``.
    """
    aggregate = aggregate.lower()
    _validate(values, shape, spec, aggregate)
    cells = len(values)
    if not 0 <= start <= stop <= cells:
        raise DimensionError(f"anchor range [{start}, {stop}) outside 0..{cells}")
    out_atom = _result_atom(values.atom, aggregate)
    if start == stop:
        return Column.empty(out_atom)
    slab_lo, slab_hi = tile_fragment_bounds(cells, shape, spec, start, stop)
    stride0 = cells // shape[0]
    slab = _column_view(values, slab_lo * stride0, slab_hi * stride0)
    sub_shape = (slab_hi - slab_lo,) + tuple(shape[1:])
    whole = tile_aggregate(slab, sub_shape, spec, aggregate)
    offset = start - slab_lo * stride0
    return whole.slice(offset, offset + (stop - start))


def tile_members(
    shape: tuple[int, ...], spec: TileSpec, anchor_rank: tuple[int, ...]
) -> list[int]:
    """Linear cell positions of one anchor's tile (reference/brute force).

    Used by tests and by EXPLAIN-style introspection; the production
    path never materialises groups.
    """
    if len(anchor_rank) != len(shape):
        raise DimensionError("anchor dimensionality differs from array")
    strides: list[int] = []
    acc = 1
    for size in reversed(shape):
        strides.append(acc)
        acc *= size
    strides.reverse()
    members: list[int] = []
    for deltas in spec.deltas():
        position = 0
        valid = True
        for rank, delta, size, stride in zip(anchor_rank, deltas, shape, strides):
            target = rank + delta
            if target < 0 or target >= size:
                valid = False
                break
            position += target * stride
        if valid:
            members.append(position)
    return members


def _wrap_int64(value: int) -> int:
    """Two's-complement wrap into int64 — the LNG accumulator semantics."""
    return (value + 2**63) % 2**64 - 2**63


def brute_force_tile_aggregate(
    values: Column, shape: tuple[int, ...], spec: TileSpec, aggregate: str
) -> list:
    """O(anchors × tile) reference implementation for property tests.

    Integer ``sum``/``prod`` results wrap into int64 exactly like the
    vectorized kernels' LNG accumulators do, so an overflowing tile
    product is still a three-way agreement, not an oracle mismatch.
    """
    data = values.to_pylist()
    integral = values.atom is not Atom.DBL
    out: list = []
    for anchor in itertools.product(*(range(size) for size in shape)):
        members = tile_members(shape, spec, anchor)
        cell_values = [data[m] for m in members if data[m] is not None]
        if aggregate == "count_star":
            out.append(len(members))
        elif aggregate == "count":
            out.append(len(cell_values))
        elif not cell_values:
            out.append(None)
        elif aggregate == "sum":
            total = sum(cell_values)
            out.append(_wrap_int64(total) if integral else total)
        elif aggregate == "avg":
            out.append(sum(cell_values) / len(cell_values))
        elif aggregate == "min":
            out.append(min(cell_values))
        elif aggregate == "max":
            out.append(max(cell_values))
        elif aggregate == "prod":
            product = 1
            for value in cell_values:
                product *= value
            out.append(_wrap_int64(product) if integral else product)
        else:
            raise GDKError(f"unsupported aggregate {aggregate!r}")
    return out
