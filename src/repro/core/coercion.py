"""Array ↔ table coercions (paper Section 2).

"Any array is turned into a corresponding table by selecting its
attributes; the dimensions form a compound primary key" — that
direction is trivial in our storage model (arrays already are column
sets).  The interesting direction is table → array: a SELECT whose
projection carries dimension qualifiers ``[x]`` produces "an unbounded
array with actual size derived from the dimension column expressions".

This module derives those actual sizes: given the values of a
coordinate column, it infers the tightest ``[start:step:stop)`` range
(step = gcd of the gaps between distinct values), and scatters row
values into the dense cell grid; absent cells become NULL holes (or a
caller-provided default, inherited "from the default values in the
original table").
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

import numpy as np

from repro.errors import CoercionError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column
from repro.catalog.objects import DimensionDef


def infer_dimension_range(values: Sequence[int], name: str = "dim") -> DimensionDef:
    """Tightest fixed range covering the distinct coordinate values.

    The step is the greatest common divisor of the gaps between the
    sorted distinct values (1 for a single value), so every observed
    value is a valid dimension value.
    """
    if len(values) == 0:
        raise CoercionError(f"cannot infer dimension {name!r} from no values")
    distinct = np.unique(np.asarray(values, dtype=np.int64))
    start = int(distinct[0])
    if len(distinct) == 1:
        return DimensionDef(name, Atom.INT, start, 1, start + 1)
    gaps = np.diff(distinct)
    step = 0
    for gap in gaps.tolist():
        step = math.gcd(step, int(gap))
    step = max(step, 1)
    stop = int(distinct[-1]) + step
    return DimensionDef(name, Atom.INT, start, step, stop)


def rows_to_cells(
    coordinates: list[Column],
    dimensions: list[DimensionDef],
) -> np.ndarray:
    """Linear cell positions of each row; ``-1`` for out-of-domain rows."""
    if len(coordinates) != len(dimensions):
        raise CoercionError("coordinate column count differs from dimensions")
    n = len(coordinates[0]) if coordinates else 0
    positions = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=np.bool_)
    stride = 1
    for dimension in dimensions:
        stride *= dimension.size
    for coordinate, dimension in zip(coordinates, dimensions):
        stride //= dimension.size
        rank = dimension.rank_of(coordinate.values.astype(np.int64))
        rank = np.where(coordinate.validity(), rank, -1)
        valid &= rank >= 0
        positions += np.where(rank >= 0, rank, 0) * stride
    return np.where(valid, positions, -1)


def table_to_array_columns(
    coordinates: list[Column],
    values: list[Column],
    dimensions: Optional[list[DimensionDef]] = None,
    defaults: Optional[list[Any]] = None,
    dimension_names: Optional[list[str]] = None,
    skip_all_null_rows: bool = False,
) -> tuple[list[DimensionDef], list[Column]]:
    """Coerce row-wise columns into dense cell-aligned attribute columns.

    Returns the (inferred or given) dimensions plus one dense column
    per value column.  Cells not covered by any row take the matching
    default (NULL when defaults are omitted).  When several rows map to
    the same cell the last one wins, matching the overwrite semantics
    of SciQL INSERT.  With ``skip_all_null_rows`` rows whose every value
    is NULL do not participate in the scatter — a cell they alone cover
    stays a hole either way, but they can no longer clobber a real
    value that shares the cell (e.g. HAVING-masked anchors after a
    dimension-scaling projection like ``[x/2]``).
    """
    if dimensions is None:
        names = dimension_names or [f"dim_{i}" for i in range(len(coordinates))]
        dimensions = [
            infer_dimension_range(c.values.astype(np.int64), name)
            for c, name in zip(coordinates, names)
        ]
    cell_count = 1
    for dimension in dimensions:
        cell_count *= dimension.size
    positions = rows_to_cells(coordinates, dimensions)
    keep = positions >= 0
    if skip_all_null_rows and values:
        all_null = values[0].effective_mask().copy()
        for value_column in values[1:]:
            all_null &= value_column.effective_mask()
        keep &= ~all_null
    targets = positions[keep]
    source_rows = np.flatnonzero(keep)
    dense: list[Column] = []
    for index, value_column in enumerate(values):
        default = defaults[index] if defaults else None
        if default is None:
            base = Column.nulls(value_column.atom, cell_count)
        else:
            base = Column.constant(value_column.atom, default, cell_count)
        dense.append(base.replace(targets, value_column.take(source_rows)))
    return dimensions, dense


def cells_to_rows(
    dimensions: list[DimensionDef],
    attributes: list[Column],
    drop_holes: bool = False,
) -> tuple[list[Column], list[Column]]:
    """Array → table: dimension value columns + attribute columns.

    With ``drop_holes`` rows whose every attribute is NULL (holes) are
    omitted — handy for sparse exports; the default keeps all cells,
    which is the paper's semantics for ``SELECT x, y, v FROM array``.
    """
    shape = tuple(d.size for d in dimensions)
    cell_count = int(np.prod(shape)) if shape else 0
    for attribute in attributes:
        if len(attribute) != cell_count:
            raise CoercionError("attribute column not cell-aligned")
    coordinate_columns: list[Column] = []
    inner = cell_count
    outer = 1
    for dimension in dimensions:
        inner //= dimension.size
        values = np.tile(np.repeat(dimension.values(), inner), outer)
        coordinate_columns.append(Column(Atom.LNG, values))
        outer *= dimension.size
    if not drop_holes:
        return coordinate_columns, [a.copy() for a in attributes]
    hole = np.ones(cell_count, dtype=np.bool_)
    for attribute in attributes:
        hole &= attribute.effective_mask()
    keep = np.flatnonzero(~hole)
    return (
        [c.take(keep) for c in coordinate_columns],
        [a.take(keep) for a in attributes],
    )
