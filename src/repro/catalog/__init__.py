"""Catalog of persistent database objects (tables and SciQL arrays)."""

from repro.catalog.catalog import Catalog
from repro.catalog.objects import Array, ColumnDef, DimensionDef, Table

__all__ = ["Catalog", "Table", "Array", "ColumnDef", "DimensionDef"]
