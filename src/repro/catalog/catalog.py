"""The SQL/SciQL catalog: named tables and arrays plus persistence.

MonetDB's SQL catalog was "modified for SciQL support" (Figure 2): the
same namespace holds both kinds of objects, so a query can join a table
with an array (the AreasOfInterest demo does exactly that).

Since the engine grew concurrent sessions, a catalog doubles as one
*version* of the database state: committed catalogs are immutable by
convention, transactions work on a :meth:`Catalog.fork` (object-level
copy-on-write sharing the storage BATs), and commit publishes a new
version assembled with :meth:`Catalog.clone` + :meth:`Catalog.set_entry`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterator, Optional

from repro.errors import CatalogError, PersistenceError
from repro.gdk.atoms import Atom
from repro.gdk.persist import (
    atomic_write_bytes,
    load_bat,
    publish_farm,
    recover_farm,
    save_bat,
)
from repro.catalog.objects import Array, ColumnDef, DimensionDef, Table

SchemaObject = Table | Array

_CATALOG_FILE = "catalog.json"

#: manifest layout revision; bumped with the checksum/version fields.
_FARM_FORMAT = 2


def read_manifest(directory: Path) -> dict:
    """Parse a farm's ``catalog.json``; raises :class:`PersistenceError`."""
    manifest_path = Path(directory) / _CATALOG_FILE
    if not manifest_path.exists():
        raise PersistenceError(f"no catalog manifest in {directory}")
    try:
        return json.loads(manifest_path.read_text())
    except ValueError as exc:
        raise PersistenceError(
            f"corrupt catalog manifest {manifest_path}: {exc}"
        ) from exc


def farm_versions(directory: Path) -> tuple[int, int]:
    """(commit version, schema version) recorded in a farm's manifest.

    Farms written before the versioned manifest report ``(0, 0)``.
    """
    manifest = read_manifest(directory)
    return int(manifest.get("version", 0)), int(manifest.get("schema_version", 0))


class Catalog:
    """A flat namespace of tables and arrays (schema ``sys``)."""

    def __init__(self) -> None:
        self._objects: dict[str, SchemaObject] = {}

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name.lower() in self._objects

    def __iter__(self) -> Iterator[SchemaObject]:
        return iter(self._objects.values())

    def names(self) -> list[str]:
        """All object names, sorted."""
        return sorted(self._objects)

    def get(self, name: str) -> SchemaObject:
        """Look up a table or array by (case-insensitive) name."""
        try:
            return self._objects[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table or array: {name!r}") from None

    def get_table(self, name: str) -> Table:
        """Look up, requiring a table."""
        obj = self.get(name)
        if not isinstance(obj, Table):
            raise CatalogError(f"{name!r} is an array, not a table")
        return obj

    def get_array(self, name: str) -> Array:
        """Look up, requiring an array."""
        obj = self.get(name)
        if not isinstance(obj, Array):
            raise CatalogError(f"{name!r} is a table, not an array")
        return obj

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def create_table(self, name: str, columns: list[ColumnDef]) -> Table:
        """CREATE TABLE."""
        key = name.lower()
        if key in self._objects:
            raise CatalogError(f"name already in use: {name!r}")
        table = Table(key, columns)
        self._objects[key] = table
        return table

    def create_array(
        self,
        name: str,
        dimensions: list[DimensionDef],
        attributes: list[ColumnDef],
    ) -> Array:
        """CREATE ARRAY — materialises all cells immediately (Section 3)."""
        key = name.lower()
        if key in self._objects:
            raise CatalogError(f"name already in use: {name!r}")
        array = Array(key, dimensions, attributes)
        self._objects[key] = array
        return array

    def drop(self, name: str, if_exists: bool = False) -> None:
        """DROP TABLE / DROP ARRAY."""
        key = name.lower()
        if key not in self._objects:
            if if_exists:
                return
            raise CatalogError(f"no such table or array: {name!r}")
        del self._objects[key]

    def register(self, obj: SchemaObject) -> None:
        """Install an externally built object (used by coercions)."""
        key = obj.name.lower()
        if key in self._objects:
            raise CatalogError(f"name already in use: {obj.name!r}")
        self._objects[key] = obj

    # ------------------------------------------------------------------
    # versioning (copy-on-write snapshots)
    # ------------------------------------------------------------------
    def clone(self) -> "Catalog":
        """Shallow copy: a new namespace sharing the object descriptors.

        Used when assembling a merged committed version — the objects
        themselves are shared, only the name→object map is private.
        """
        other = Catalog()
        other._objects = dict(self._objects)
        return other

    def fork(self) -> "Catalog":
        """Copy-on-write fork for a transaction.

        Every table/array is structurally cloned (sharing its immutable
        BATs), so all catalog mutation a transaction performs — DDL,
        appends, point updates, re-materialisation — stays private to
        the fork until commit publishes it.
        """
        other = Catalog()
        other._objects = {
            name: obj.clone() for name, obj in self._objects.items()
        }
        return other

    def entry(self, name: str) -> Optional[SchemaObject]:
        """The object stored under (lowercased) *name*, or None."""
        return self._objects.get(name.lower())

    def set_entry(self, name: str, obj: Optional[SchemaObject]) -> None:
        """Install (or, with ``None``, remove) an object during a merge."""
        key = name.lower()
        if obj is None:
            self._objects.pop(key, None)
        else:
            self._objects[key] = obj

    # ------------------------------------------------------------------
    # persistence (the database "farm")
    # ------------------------------------------------------------------
    def save(
        self, directory: Path, version: int = 0, schema_version: int = 0
    ) -> None:
        """Publish the whole database under *directory* atomically.

        The farm is written to a staging sibling and swapped in, so a
        crash mid-save never leaves a half-written farm behind and a
        concurrent :meth:`load` sees either the old or the new version.
        *version*/*schema_version* are the engine's commit counters at
        the time of the snapshot; recovery replays only write-ahead-log
        records younger than the farm's recorded version.
        """
        publish_farm(
            Path(directory),
            lambda staging: self._write_farm(staging, version, schema_version),
        )

    def _write_farm(
        self, directory: Path, version: int = 0, schema_version: int = 0
    ) -> None:
        """Write manifest + BATs into an (existing, empty) directory."""
        manifest: dict = {
            "format": _FARM_FORMAT,
            "version": version,
            "schema_version": schema_version,
            "objects": [],
        }
        for name, obj in sorted(self._objects.items()):
            entry: dict = {"name": name, "kind": obj.kind}
            if isinstance(obj, Table):
                entry["columns"] = [
                    {
                        "name": c.name,
                        "atom": c.atom.value,
                        "default": c.default,
                        "has_default": c.has_default,
                    }
                    for c in obj.columns
                ]
            else:
                entry["dimensions"] = [
                    {
                        "name": d.name,
                        "atom": d.atom.value,
                        "start": d.start,
                        "step": d.step,
                        "stop": d.stop,
                    }
                    for d in obj.dimensions
                ]
                entry["attributes"] = [
                    {
                        "name": a.name,
                        "atom": a.atom.value,
                        "default": a.default,
                        "has_default": a.has_default,
                    }
                    for a in obj.attributes
                ]
            manifest["objects"].append(entry)
            subdir = directory / name
            for column, bat in obj.bats.items():
                save_bat(bat, subdir, column)
        atomic_write_bytes(
            directory / _CATALOG_FILE, json.dumps(manifest, indent=1).encode()
        )

    @classmethod
    def load(cls, directory: Path) -> "Catalog":
        """Read a database previously written by :meth:`save`.

        Adopts a stranded ``<name>.retired`` farm first (a crash
        between the two renames of a publish can leave the retired
        copy as the only farm on disk), so a bare :meth:`load` is as
        crash-tolerant as the engine's recovery path.
        """
        directory = Path(directory)
        recover_farm(directory)
        manifest = read_manifest(directory)
        catalog = cls()
        for entry in manifest["objects"]:
            name = entry["name"]
            subdir = directory / name
            if entry["kind"] == "table":
                columns = [
                    ColumnDef(
                        c["name"], Atom(c["atom"]), c["default"], c["has_default"]
                    )
                    for c in entry["columns"]
                ]
                table = Table(name, columns)
                for column in table.column_names():
                    table.bats[column] = load_bat(subdir, column)
                catalog._objects[name] = table
            else:
                dimensions = [
                    DimensionDef(
                        d["name"], Atom(d["atom"]), d["start"], d["step"], d["stop"]
                    )
                    for d in entry["dimensions"]
                ]
                attributes = [
                    ColumnDef(
                        a["name"], Atom(a["atom"]), a["default"], a["has_default"]
                    )
                    for a in entry["attributes"]
                ]
                array = Array(name, dimensions, attributes, materialise=False)
                for column in array.column_names():
                    array.bats[column] = load_bat(subdir, column)
                catalog._objects[name] = array
        return catalog
