"""Catalog object descriptors: columns, dimensions, tables, arrays.

A SciQL array differs from a table in one semantic point the whole
paper builds on: *all cells covered by the dimensions always exist
conceptually* (Section 1).  The catalog therefore materialises every
array at creation time — one BAT per dimension plus one per cell
attribute, exactly as Figure 3 shows — whereas tables start empty.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.errors import CatalogError, DimensionError
from repro.gdk import dictenc
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column


@dataclass
class ColumnDef:
    """A non-dimensional attribute: name, atom type, optional DEFAULT.

    Omitting the default implies NULL (paper, Section 2).
    """

    name: str
    atom: Atom
    default: Any = None
    has_default: bool = False


@dataclass
class DimensionDef:
    """A named dimension with range constraint ``[start:step:stop)``.

    The interval is right-open; a dimension is *fixed* when all three
    range expressions are literal (we keep only fixed and derived-fixed
    dimensions materialised; see :mod:`repro.core.coercion` for how
    unbounded dimensions obtain an actual size).
    """

    name: str
    atom: Atom
    start: int
    step: int
    stop: int

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise DimensionError(
                f"dimension {self.name}: step must be positive, got {self.step}"
            )
        if self.stop < self.start:
            raise DimensionError(
                f"dimension {self.name}: empty range [{self.start}:{self.step}:{self.stop}]"
            )

    @property
    def size(self) -> int:
        """Number of valid dimension values."""
        return max(0, math.ceil((self.stop - self.start) / self.step))

    def values(self) -> np.ndarray:
        """All valid dimension values, ascending."""
        return np.arange(self.start, self.stop, self.step, dtype=np.int64)

    def contains(self, value: int) -> bool:
        """True when *value* is a valid value of this dimension."""
        if value < self.start or value >= self.stop:
            return False
        return (value - self.start) % self.step == 0

    def rank_of(self, value: np.ndarray) -> np.ndarray:
        """Position of dimension values within the range (vectorised).

        Out-of-domain values map to ``-1``.
        """
        value = np.asarray(value, dtype=np.int64)
        offset = value - self.start
        rank = offset // self.step
        valid = (value >= self.start) & (value < self.stop) & (offset % self.step == 0)
        return np.where(valid, rank, -1)

    def spec(self) -> str:
        """Render the range constraint as SciQL surface syntax."""
        return f"[{self.start}:{self.step}:{self.stop}]"


class _DeltaJournal:
    """Mix-in: record logical mutations for O(delta) durable commits.

    A transaction fork arms each cloned object with an empty journal
    (:meth:`_arm_journal`); every mutating method then appends one
    ``(method, payload)`` entry describing its *inputs* — the logical
    delta — and snapshots the resulting BAT bindings.  At commit time
    the WAL (:mod:`repro.engine.wal`) replays exactly these entries, so
    a durable commit costs O(changed rows), not O(database).

    The BAT-binding snapshot is the faithfulness check: code that
    assigns ``obj.bats[...]`` directly (bypassing the journaled
    methods) leaves the snapshot stale, and the WAL falls back to
    logging the object's full state instead of an incomplete delta.
    Objects built outside a fork carry ``journal = None`` and pay
    nothing.
    """

    journal: Optional[list] = None
    _journal_bats: Optional[dict] = None
    _journal_base: Optional[object] = None

    def _arm_journal(self, base: Optional[object] = None) -> None:
        self.journal = []
        self._journal_bats = dict(self.bats)
        self._journal_base = base

    def _disarm_journal(self) -> None:
        self.journal = None
        self._journal_bats = None
        self._journal_base = None

    def _journal_op(self, method: str, payload: dict) -> None:
        if self.journal is not None:
            self.journal.append((method, payload))
            self._journal_bats = dict(self.bats)

    def journal_faithful(self) -> bool:
        """True when the journal provably covers every BAT rebinding."""
        if self.journal is None or self._journal_bats is None:
            return False
        if self._journal_bats.keys() != self.bats.keys():
            return False
        return all(
            self.bats[name] is bat for name, bat in self._journal_bats.items()
        )


class Table(_DeltaJournal):
    """A relational table: a bag of tuples stored column-wise in BATs."""

    kind = "table"

    def __init__(self, name: str, columns: list[ColumnDef]):
        if not columns:
            raise CatalogError(f"table {name}: needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {name}: duplicate column names")
        self.name = name
        self.columns = columns
        self.bats: dict[str, BAT] = {
            c.name: BAT.empty(c.atom) for c in columns
        }

    @property
    def count(self) -> int:
        """Number of tuples."""
        first = next(iter(self.bats.values()))
        return len(first)

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_def(self, name: str) -> ColumnDef:
        for column in self.columns:
            if column.name == name:
                return column
        raise CatalogError(f"table {self.name}: no column {name!r}")

    def bind(self, column: str) -> BAT:
        """The storage BAT of one column (MAL's ``sql.bind``)."""
        try:
            return self.bats[column]
        except KeyError:
            raise CatalogError(f"table {self.name}: no column {column!r}") from None

    def clone(self) -> "Table":
        """Structural copy sharing the (immutable) storage BATs.

        Mutating operations rebind entries of ``self.bats`` with fresh
        BATs instead of mutating payloads in place, so a clone is a true
        copy-on-write snapshot: writes against the clone never surface
        in the original and vice versa.
        """
        other = Table.__new__(Table)
        other.name = self.name
        other.columns = list(self.columns)
        other.bats = dict(self.bats)
        other._arm_journal(self)
        return other

    def append_rows(self, columns: dict[str, Column]) -> int:
        """Bulk-append aligned columns; missing attributes get defaults."""
        lengths = {len(c) for c in columns.values()}
        if len(lengths) != 1:
            raise CatalogError("append: misaligned input columns")
        n = lengths.pop()
        for cdef in self.columns:
            if cdef.name in columns:
                incoming = columns[cdef.name]
                if incoming.atom is not cdef.atom:
                    incoming = incoming.cast(cdef.atom)
            elif cdef.has_default and cdef.default is not None:
                incoming = Column.constant(cdef.atom, cdef.default, n)
            else:
                incoming = Column.nulls(cdef.atom, n)
            appended = self.bats[cdef.name].append(BAT(incoming))
            # Re-evaluate dictionary encoding on the grown column before
            # the journal snapshots it, so WAL replay converges to the
            # same representation (a column can cross the cardinality
            # threshold — in either direction — mid-append).
            self.bats[cdef.name] = dictenc.maybe_encode_bat(appended)
        self._journal_op("append_rows", {"columns": dict(columns)})
        return n

    def replace_values(self, column: str, oids: np.ndarray, values: Column) -> None:
        """Point-update one column at the given row oids."""
        cdef = self.column_def(column)
        if values.atom is not cdef.atom:
            values = values.cast(cdef.atom)
        self.bats[column] = self.bats[column].replace(oids, values)
        self._journal_op(
            "replace_values",
            {
                "column": column,
                "oids": np.asarray(oids, dtype=np.int64),
                "values": values,
            },
        )

    def delete_rows(self, oids: np.ndarray) -> int:
        """Physically remove rows (tables are bags; arrays never do this)."""
        keep = np.setdiff1d(
            np.arange(self.count, dtype=np.int64), np.asarray(oids, dtype=np.int64)
        )
        for name, bat in self.bats.items():
            self.bats[name] = BAT(bat.tail.take(keep), 0)
        self._journal_op(
            "delete_rows", {"oids": np.asarray(oids, dtype=np.int64)}
        )
        return self.count

    def clear(self) -> None:
        """Remove all tuples."""
        for cdef in self.columns:
            self.bats[cdef.name] = BAT.empty(cdef.atom)
        self._journal_op("clear", {})


class Array(_DeltaJournal):
    """A SciQL array: dimensions + cell attributes, fully materialised.

    Cells are stored in *dimension-major* order: the first declared
    dimension varies slowest (this matches the ``array.series``
    repetition factors of the paper's Figure 3).
    """

    kind = "array"

    def __init__(
        self,
        name: str,
        dimensions: list[DimensionDef],
        attributes: list[ColumnDef],
        materialise: bool = True,
    ):
        if not dimensions:
            raise CatalogError(f"array {name}: needs at least one dimension")
        if not attributes:
            raise CatalogError(f"array {name}: needs at least one cell attribute")
        names = [d.name for d in dimensions] + [a.name for a in attributes]
        if len(set(names)) != len(names):
            raise CatalogError(f"array {name}: duplicate column/dimension names")
        self.name = name
        self.dimensions = dimensions
        self.attributes = attributes
        self.bats: dict[str, BAT] = {}
        # ``materialise=False`` leaves the BATs to the caller — the farm
        # loader fills them from disk (possibly as lazy mmap windows);
        # materialising a large grid here just to overwrite it would
        # fault the whole heap into memory.
        if materialise:
            self.materialise()

    # ------------------------------------------------------------------
    # materialisation (paper Section 3, Figure 3)
    # ------------------------------------------------------------------
    @property
    def cell_count(self) -> int:
        """Total number of cells (product of dimension sizes)."""
        count = 1
        for dimension in self.dimensions:
            count *= dimension.size
        return count

    def shape(self) -> tuple[int, ...]:
        """Dimension sizes in declaration order."""
        return tuple(d.size for d in self.dimensions)

    def series_parameters(self, index: int) -> tuple[int, int]:
        """The (N, M) repetition factors of ``array.series`` for dimension i.

        N is the number of consecutive repetitions of each value, M the
        number of repetitions of the whole sequence — "determined by the
        position of a dimension in the array definition and the sizes of
        other dimensions" (Section 3).
        """
        sizes = self.shape()
        inner = 1
        for size in sizes[index + 1:]:
            inner *= size
        outer = 1
        for size in sizes[:index]:
            outer *= size
        return inner, outer

    def materialise(self) -> None:
        """(Re)create all BATs: series per dimension, filler per attribute."""
        from repro.mal.modules.array_mod import filler_column, series_column

        count = self.cell_count
        for index, dimension in enumerate(self.dimensions):
            inner, outer = self.series_parameters(index)
            column = series_column(
                dimension.start, dimension.step, dimension.stop, inner, outer
            )
            self.bats[dimension.name] = BAT(column.cast(dimension.atom))
        for attribute in self.attributes:
            default = attribute.default if attribute.has_default else None
            self.bats[attribute.name] = BAT(
                filler_column(count, default, attribute.atom)
            )

    def clone(self) -> "Array":
        """Structural copy sharing the (immutable) storage BATs.

        Same copy-on-write contract as :meth:`Table.clone`; dimension
        and attribute definition lists are copied so ``alter_dimension``
        on the clone never reshapes the original.
        """
        other = Array.__new__(Array)
        other.name = self.name
        other.dimensions = list(self.dimensions)
        other.attributes = list(self.attributes)
        other.bats = dict(self.bats)
        other._arm_journal(self)
        return other

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self.cell_count

    def column_names(self) -> list[str]:
        return [d.name for d in self.dimensions] + [a.name for a in self.attributes]

    def dimension_names(self) -> list[str]:
        return [d.name for d in self.dimensions]

    def is_dimension(self, name: str) -> bool:
        return any(d.name == name for d in self.dimensions)

    def dimension_def(self, name: str) -> DimensionDef:
        for dimension in self.dimensions:
            if dimension.name == name:
                return dimension
        raise CatalogError(f"array {self.name}: no dimension {name!r}")

    def dimension_index(self, name: str) -> int:
        for index, dimension in enumerate(self.dimensions):
            if dimension.name == name:
                return index
        raise CatalogError(f"array {self.name}: no dimension {name!r}")

    def attribute_def(self, name: str) -> ColumnDef:
        for attribute in self.attributes:
            if attribute.name == name:
                return attribute
        raise CatalogError(f"array {self.name}: no attribute {name!r}")

    def column_def(self, name: str) -> ColumnDef:
        """Uniform view: dimensions appear as not-null INT columns."""
        for dimension in self.dimensions:
            if dimension.name == name:
                return ColumnDef(dimension.name, dimension.atom)
        return self.attribute_def(name)

    def bind(self, column: str) -> BAT:
        try:
            return self.bats[column]
        except KeyError:
            raise CatalogError(f"array {self.name}: no column {column!r}") from None

    # ------------------------------------------------------------------
    # cell addressing
    # ------------------------------------------------------------------
    def cell_oids(self, coordinates: list[np.ndarray]) -> np.ndarray:
        """Linear cell oids for per-dimension coordinate arrays.

        Coordinates outside the dimension domains yield ``-1``.
        """
        if len(coordinates) != len(self.dimensions):
            raise DimensionError(
                f"array {self.name}: expected {len(self.dimensions)} coordinates"
            )
        sizes = self.shape()
        oids = np.zeros(len(coordinates[0]) if coordinates else 0, dtype=np.int64)
        valid = np.ones_like(oids, dtype=np.bool_)
        stride = 1
        for size in sizes:
            stride *= size
        for dimension, size, coordinate in zip(self.dimensions, sizes, coordinates):
            stride //= size
            rank = dimension.rank_of(np.asarray(coordinate, dtype=np.int64))
            valid &= rank >= 0
            oids += np.where(rank >= 0, rank, 0) * stride
        return np.where(valid, oids, -1)

    def grid(self, attribute: str) -> np.ndarray:
        """Cell values of one attribute as an ndarray of ``shape()``.

        NULL cells (holes) surface as ``numpy.nan`` for numeric atoms.
        """
        column = self.bind(attribute).tail
        return column.to_numpy().reshape(self.shape())

    # ------------------------------------------------------------------
    # mutation: SciQL semantics (Section 2)
    # ------------------------------------------------------------------
    def replace_values(self, attribute: str, oids: np.ndarray, values: Column) -> None:
        """Point-update cells; INSERT/UPDATE/DELETE all reduce to this."""
        adef = self.attribute_def(attribute)
        if values.atom is not adef.atom:
            values = values.cast(adef.atom)
        self.bats[attribute] = self.bats[attribute].replace(oids, values)
        self._journal_op(
            "replace_values",
            {
                "column": attribute,
                "oids": np.asarray(oids, dtype=np.int64),
                "values": values,
            },
        )

    def delete_cells(self, oids: np.ndarray) -> None:
        """DELETE "creates holes by assigning NULL" to every attribute."""
        for attribute in self.attributes:
            nulls = Column.nulls(attribute.atom, len(oids))
            self.bats[attribute.name] = self.bats[attribute.name].replace(oids, nulls)
        self._journal_op(
            "delete_cells", {"oids": np.asarray(oids, dtype=np.int64)}
        )

    def alter_dimension(self, name: str, start: int, step: int, stop: int) -> None:
        """ALTER ARRAY ... ALTER DIMENSION ... SET RANGE (Figure 1(f)).

        The array is re-materialised on the new shape; cells that exist
        in both shapes keep their values, new cells take the attribute
        default (or NULL without one).
        """
        index = self.dimension_index(name)
        old_dimensions = list(self.dimensions)
        old_values = {
            a.name: self.bats[a.name].tail.copy() for a in self.attributes
        }
        old_dim_columns = [self.bats[d.name].tail.values.copy() for d in self.dimensions]

        new_dimension = DimensionDef(name, self.dimensions[index].atom, start, step, stop)
        self.dimensions = (
            old_dimensions[:index] + [new_dimension] + old_dimensions[index + 1:]
        )
        self.materialise()

        # Remap surviving cells: their coordinates must be valid in the
        # new shape.
        coordinates = [np.asarray(values, dtype=np.int64) for values in old_dim_columns]
        new_oids = self.cell_oids(coordinates)
        surviving = new_oids >= 0
        targets = new_oids[surviving]
        for attribute in self.attributes:
            source = old_values[attribute.name]
            keep_positions = np.flatnonzero(surviving)
            self.bats[attribute.name] = self.bats[attribute.name].replace(
                targets, source.take(keep_positions)
            )
        self._journal_op(
            "alter_dimension",
            {"dimension": name, "start": start, "step": step, "stop": stop},
        )
