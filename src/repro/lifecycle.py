"""Query lifecycle governance: cancellation, deadlines, memory budgets.

Every statement a :class:`~repro.engine.connection.Connection` executes
carries a :class:`QueryContext` — one query id, one cancellation token,
an optional deadline and an optional memory budget.  The MAL
interpreter consults the context at every instruction dispatch (the
sequential loop, the dataflow scheduler *and* each pool worker), so a
runaway query is stopped cooperatively within one instruction boundary
rather than holding a worker thread and its intermediates forever.

The module sits below the engine (it imports only :mod:`repro.errors`)
so both :mod:`repro.mal.interpreter` and :mod:`repro.engine` can use it
without an import cycle.  The per-database registry that makes running
queries observable (``SHOW QUERIES``) and killable (``KILL <qid>``)
lives here too; :class:`~repro.engine.database.Database` owns one
instance.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional

from repro.errors import (
    ProgrammingError,
    QueryCancelledError,
    QueryTimeoutError,
    ResourceError,
)


class QueryContext:
    """Governance state for one executing statement.

    The cancellation token is a plain flag set by *other* threads
    (``kill_query``, the network server's CANCEL path) and polled by
    the executing thread via :meth:`check` — cooperative, lock-free on
    the hot path.  ``bytes_materialised`` totals the bytes of every BAT
    an instruction produced; crossing ``mem_budget_bytes`` raises
    :class:`ResourceError` at the next boundary.  Deadlines use the
    monotonic clock.
    """

    __slots__ = (
        "qid",
        "sql",
        "session_id",
        "started_at",
        "_started_monotonic",
        "deadline",
        "mem_budget_bytes",
        "bytes_materialised",
        "rows_materialised",
        "_cancelled",
        "_cancel_reason",
    )

    def __init__(
        self,
        qid: int,
        sql: str = "",
        session_id: int = 0,
        timeout: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
    ):
        self.qid = qid
        self.sql = sql
        self.session_id = session_id
        self.started_at = time.time()
        self._started_monotonic = time.monotonic()
        self.deadline = (
            None if timeout is None else self._started_monotonic + timeout
        )
        self.mem_budget_bytes = mem_budget_bytes
        self.bytes_materialised = 0
        self.rows_materialised = 0
        self._cancelled = False
        self._cancel_reason = ""

    # ------------------------------------------------------------------
    # cancellation token
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "") -> None:
        """Request cancellation; the query aborts at its next boundary."""
        self._cancel_reason = reason or self._cancel_reason
        self._cancelled = True

    def check(self) -> None:
        """Raise the pending governance error, if any (hot-path poll)."""
        if self._cancelled:
            reason = self._cancel_reason or "query cancelled"
            raise QueryCancelledError(f"query {self.qid} cancelled: {reason}")
        deadline = self.deadline
        if deadline is not None and time.monotonic() >= deadline:
            elapsed = time.monotonic() - self._started_monotonic
            raise QueryTimeoutError(
                f"query {self.qid} exceeded its statement timeout "
                f"after {elapsed:.3f}s"
            )

    # ------------------------------------------------------------------
    # memory accounting
    # ------------------------------------------------------------------
    def note_materialised(self, nbytes: int, rows: int) -> None:
        """Account one instruction's output; enforce the byte budget.

        Races between pool workers can transiently under-count (the
        ``+=`` is not atomic under free-threading), but the budget is a
        backstop, not an invoice — the check re-runs at every
        subsequent boundary.
        """
        self.bytes_materialised += nbytes
        self.rows_materialised += rows
        budget = self.mem_budget_bytes
        if budget is not None and self.bytes_materialised > budget:
            raise ResourceError(
                f"query {self.qid} exceeded its memory budget: "
                f"{self.bytes_materialised} bytes materialised "
                f"(budget {budget})"
            )

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Wall-clock seconds since this query started."""
        return time.monotonic() - self._started_monotonic

    def describe(self) -> dict[str, Any]:
        """One JSON-able row for ``SHOW QUERIES`` / ``list_queries``."""
        return {
            "qid": self.qid,
            "session": self.session_id,
            "sql": self.sql,
            "status": "cancelling" if self._cancelled else "running",
            "elapsed_ms": self.elapsed * 1000.0,
            "rows": self.rows_materialised,
            "bytes": self.bytes_materialised,
        }


class QueryRegistry:
    """The database-wide table of running statements.

    Registration happens once per top-level statement (not per
    interpreter run — an ``executemany`` batch is one entry), so
    ``SHOW QUERIES`` mirrors what a client sees as in-flight work and
    ``KILL <qid>`` aborts the whole batch.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._running: dict[int, QueryContext] = {}
        self._next_qid = 0

    def register(
        self,
        sql: str = "",
        session_id: int = 0,
        timeout: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
    ) -> QueryContext:
        with self._lock:
            self._next_qid += 1
            query = QueryContext(
                self._next_qid, sql, session_id, timeout, mem_budget_bytes
            )
            self._running[query.qid] = query
            return query

    def finish(self, query: QueryContext) -> None:
        with self._lock:
            self._running.pop(query.qid, None)

    def list(self) -> list[dict[str, Any]]:
        with self._lock:
            contexts = list(self._running.values())
        return [context.describe() for context in sorted(
            contexts, key=lambda context: context.qid
        )]

    def kill(self, qid: int, reason: str = "") -> None:
        """Cancel the running query *qid* (cooperative, returns at once).

        Raises :class:`ProgrammingError` when no such query is running
        — a qid from ``SHOW QUERIES`` that already finished is gone.
        """
        with self._lock:
            query = self._running.get(qid)
        if query is None:
            raise ProgrammingError(f"no running query with qid {qid}")
        query.cancel(reason or f"killed via kill_query({qid})")
