"""The public entry point: DB-API 2.0 sessions over a shared Database.

A :class:`Connection` is one *session* against a shared
:class:`~repro.engine.database.Database` engine.  The engine owns the
committed catalog versions, the global dataflow scheduler and the
cross-session plan cache; the session owns its transaction state, its
execution knobs and its observability counters.  Every statement still
drives the full Figure 2 pipeline for *new* statement text:

    parse → bind/compile → MAL generation → MAL optimization →
    MAL interpretation → result

Compiled plans live in the **shared** LRU statement cache keyed on the
SQL text, the session knobs and the schema version of the snapshot the
plan was compiled against, so repeated :meth:`Connection.execute` calls
— from any session — and every re-execution of a
:class:`PreparedStatement` skip straight from parameter binding to MAL
interpretation.  Committed DDL advances the schema version, which
lazily retires every stale entry.

Transactions (snapshot isolation):

* Autocommit is the default — each statement is its own transaction,
  exactly like the engine behaved before sessions existed.
* ``BEGIN`` / :meth:`Connection.begin` opens an explicit transaction: a
  copy-on-write fork of the committed snapshot.  Reads inside the
  transaction see the fork (their own staged writes included), readers
  elsewhere keep seeing committed state only.
* ``COMMIT`` publishes the fork atomically; the first committer wins —
  if a concurrent commit modified an object this transaction wrote,
  commit raises :class:`~repro.errors.OperationalError`.
* ``ROLLBACK`` discards the fork; catalog and storage are restored
  byte-identically because the committed snapshot was never touched.

Sessions are safe to share between threads (PEP 249
``threadsafety == 2``): statements on one session serialise on a
session lock, different sessions execute concurrently on the shared
scheduler.
"""

from __future__ import annotations

import re
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro import errors
from repro.errors import InterfaceError, ProgrammingError, QueryGovernanceError
from repro.lifecycle import QueryContext
from repro.catalog import Catalog
from repro.catalog.objects import Array, ColumnDef, DimensionDef
from repro.gdk import storage as gdk_storage
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.algebra import nodes
from repro.algebra.compiler import plan_statement
from repro.algebra.malgen import MALGenerator
from repro.mal.interpreter import ExecutionStats
from repro.mal.analysis import annotate_program, verify_program
from repro.mal.optimizer import optimize
from repro.mal.program import MALProgram
from repro.semantic.binder import Parameter
from repro.sql import ast_nodes as ast
from repro.sql.parser import Parser, parse
from repro.engine.cursor import Cursor, Params
from repro.engine.database import (
    DEFAULT_STATEMENT_CACHE_SIZE,
    Database,
    Transaction,
    default_mem_budget,
    default_statement_timeout,
    resolve_durable_mode,
    resolve_fragment_rows,
    resolve_nr_threads,
)
from repro.engine.result import Result
from repro.testing.faultpoints import crash_point

#: statements whose execution changes the schema (bumps the version).
_DDL_NODES = (
    ast.CreateTable,
    ast.CreateArray,
    ast.DropObject,
    ast.AlterArrayDimension,
)

#: transaction-control statements intercepted before the SQL parser
#: (``BEGIN`` / ``START TRANSACTION`` / ``COMMIT`` / ``ROLLBACK``).
_TXN_COMMAND = re.compile(
    r"^\s*(?:(?P<begin>BEGIN|START\s+TRANSACTION)|(?P<commit>COMMIT)"
    r"|(?P<rollback>ROLLBACK))(?:\s+(?:TRANSACTION|WORK))?\s*;?\s*$",
    re.IGNORECASE,
)


@dataclass
class CompiledStatement:
    """One fully compiled statement: the unit the plan cache stores."""

    sql: str
    program: MALProgram
    param_keys: tuple
    is_explain: bool
    is_ddl: bool
    #: plan-validity token of the snapshot this was compiled against:
    #: the committed schema version (int) or a transaction-private tuple.
    schema_token: Any
    #: InsertValuesPlan for the executemany bulk-ingestion fast path
    #: (single parameterized VALUES row), else None.
    bulk_insert: Optional[nodes.InsertValuesPlan] = None
    #: lowercased catalog objects the program mutates (empty = read-only).
    write_targets: frozenset = frozenset()
    #: the parsed AST when the entry came from a script (no SQL text).
    statement: Any = None
    #: VerificationReport when compiled via EXPLAIN VERIFY, else None.
    verify_report: Any = None
    #: administrative AST node (SHOW QUERIES / KILL) — executed against
    #: the query registry instead of the MAL interpreter.
    admin: Any = None

    @property
    def is_write(self) -> bool:
        return bool(self.write_targets)


def _normalize_value(value: Any) -> Any:
    """NumPy scalars -> Python scalars; everything else passes through."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def bind_parameters(param_keys: tuple, params: Params) -> dict:
    """Validate *params* against a statement's parameter signature.

    Returns the ``key -> value`` bindings the interpreter resolves
    :class:`~repro.mal.program.Param` operands from.  Raises
    :class:`ProgrammingError` on arity or style mismatches.
    """
    if not param_keys:
        if params:
            raise ProgrammingError(
                "statement takes no parameters but bindings were supplied"
            )
        return {}
    if isinstance(param_keys[0], str):  # named style (:name)
        if not isinstance(params, Mapping):
            raise ProgrammingError(
                "statement uses named parameters; supply a mapping"
            )
        bindings = {}
        for key in param_keys:
            if key not in params:
                raise ProgrammingError(f"missing value for parameter :{key}")
            bindings[key] = _normalize_value(params[key])
        return bindings
    expected = max(param_keys) + 1  # positional style (?)
    if (
        params is None
        or isinstance(params, (str, bytes, Mapping))
        or not isinstance(params, Sequence)
    ):
        raise ProgrammingError(
            f"statement takes {expected} positional parameters; "
            "supply a sequence"
        )
    if len(params) != expected:
        raise ProgrammingError(
            f"statement takes {expected} positional parameters, "
            f"{len(params)} given"
        )
    return {index: _normalize_value(value) for index, value in enumerate(params)}


def _atom_for_dtype(dtype: np.dtype) -> Atom:
    """The narrowest atom able to store an ndarray of *dtype*."""
    if dtype.kind == "b":
        return Atom.BIT
    if dtype.kind in "iu":
        return Atom.INT if dtype.itemsize <= 4 and dtype.kind == "i" else Atom.LNG
    if dtype.kind == "f":
        return Atom.DBL
    if dtype.kind in "OUS":
        return Atom.STR
    raise ProgrammingError(f"cannot store ndarrays of dtype {dtype} as an array")


def _ingest_column(array_values: np.ndarray, atom: Atom) -> Column:
    """Flatten one attribute ndarray into a Column (NaN/None -> NULL)."""
    flat = np.ascontiguousarray(array_values).reshape(-1)
    if atom is Atom.DBL:
        mask = np.isnan(flat.astype(np.float64))
        return Column(atom, flat, mask if mask.any() else None)
    if atom is Atom.STR:
        out = flat.astype(object)
        mask = np.array([v is None for v in out], dtype=np.bool_)
        if mask.any():
            out = out.copy()
            out[mask] = ""
            return Column(atom, out, mask)
        return Column(atom, out)
    return Column(atom, flat)


_DEFAULT_DIMENSION_NAMES = ("x", "y", "z", "w")


class Connection:
    """One transactional session against a shared :class:`Database`."""

    # PEP 249: exceptions available as Connection attributes.
    Warning = errors.Warning
    Error = errors.Error
    InterfaceError = errors.InterfaceError
    DatabaseError = errors.DatabaseError
    DataError = errors.DataError
    OperationalError = errors.OperationalError
    IntegrityError = errors.IntegrityError
    InternalError = errors.InternalError
    ProgrammingError = errors.ProgrammingError
    NotSupportedError = errors.NotSupportedError

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        optimize: bool = True,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
        database: Optional[Database] = None,
    ):
        if database is None:
            # Single-session shorthand: a private engine this session
            # owns (closing the session closes the engine).
            database = Database(
                catalog=catalog,
                optimize=optimize,
                statement_cache_size=statement_cache_size,
                nr_threads=nr_threads,
                fragment_rows=fragment_rows,
            )
            self._owns_database = True
        else:
            if catalog is not None:
                raise ProgrammingError(
                    "pass either a catalog or a database, not both"
                )
            self._owns_database = False
        self._database = database
        #: execution knobs: worker threads for the dataflow scheduler and
        #: the mitosis fragment size.  ``nr_threads=1, fragment_rows=inf``
        #: reproduces the sequential engine exactly (plans included).
        self._nr_threads = (
            database._nr_threads
            if nr_threads is None
            else resolve_nr_threads(nr_threads)
        )
        self._fragment_rows = (
            database._fragment_rows
            if fragment_rows is None
            else resolve_fragment_rows(fragment_rows)
        )
        self.optimize_programs = optimize
        self.pipeline = database.pipeline_for(
            self._nr_threads, self._fragment_rows
        )
        #: statistics of the last executed statement (instruction counts).
        self.last_stats: Optional[ExecutionStats] = None
        #: session-accurate observability counters (updated race-free
        #: under the engine's cache lock).
        self.compile_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self._txn: Optional[Transaction] = None
        self._lock = threading.RLock()
        self._closed = False
        #: query governance: deadline (seconds; None = unbounded) and
        #: per-query memory budget (bytes; None = unbounded), seeded
        #: from REPRO_STATEMENT_TIMEOUT_MS / REPRO_MEM_BUDGET_BYTES.
        self.statement_timeout: Optional[float] = default_statement_timeout()
        self.mem_budget_bytes: Optional[int] = default_mem_budget()
        #: the statement currently executing on this session.  Guarded
        #: by ``_query_lock`` (NOT the session lock) so other threads —
        #: kill_query, the server's CANCEL path — can cancel while the
        #: executing thread holds ``_lock``.
        self._query_lock = threading.Lock()
        self._active_query: Optional[QueryContext] = None
        self._session_id = 0  # assigned by _register_session
        database._register_session(self)

    # ------------------------------------------------------------------
    # shared-engine accessors
    # ------------------------------------------------------------------
    @property
    def database(self) -> Database:
        """The shared engine this session talks to."""
        return self._database

    @property
    def catalog(self) -> Catalog:
        """The catalog this session currently sees.

        Inside a transaction: the transaction's private fork (staged
        writes included).  Otherwise: the committed head snapshot.
        Direct mutation through this property bypasses write tracking —
        inside a transaction, pair it with
        :meth:`Transaction.note_write` (see :meth:`transaction`).
        """
        txn = self._txn
        if txn is not None:
            return txn.catalog
        return self._database.head().catalog

    @property
    def interpreter(self):
        """The shared dataflow scheduler (binds against the live head)."""
        return self._database.interpreter

    @property
    def statement_cache_size(self) -> int:
        """Capacity of the engine-wide plan cache (0 disables caching)."""
        return self._database.statement_cache_size

    @statement_cache_size.setter
    def statement_cache_size(self, value: int) -> None:
        self._database.statement_cache_size = value

    # ------------------------------------------------------------------
    # execution knobs (parallel fragmented execution)
    # ------------------------------------------------------------------
    @property
    def nr_threads(self) -> int:
        """Dataflow worker threads (1 = the sequential interpreter)."""
        return self._nr_threads

    @nr_threads.setter
    def nr_threads(self, value: Optional[int]) -> None:
        self._nr_threads = resolve_nr_threads(value)
        database = self._database
        if self._nr_threads > database.interpreter.nr_threads:
            # Growing the pool tears the executor down, which is only
            # safe while no other session can be mid-execution on it.
            # With co-resident sessions the pool keeps its size: this
            # session still schedules dataflow, just on fewer workers.
            with database._writer_lock:
                if len(database._sessions) <= 1:
                    database.interpreter.set_threads(self._nr_threads)
        self.pipeline = database.pipeline_for(
            self._nr_threads, self._fragment_rows
        )

    @property
    def fragment_rows(self):
        """Mitosis fragment size: int, ``None`` (auto) or ``inf`` (off)."""
        return self._fragment_rows

    @fragment_rows.setter
    def fragment_rows(self, value) -> None:
        self._fragment_rows = resolve_fragment_rows(value)
        self.pipeline = self._database.pipeline_for(
            self._nr_threads, self._fragment_rows
        )

    def last_profile(self) -> list[dict]:
        """Per-operation profile of the last ``collect_stats`` execution.

        Returns one entry per MAL operation, ordered by cumulative wall
        time (descending): ``{"operation", "calls", "rows", "seconds"}``.
        Returns an empty list when the last statement ran without
        ``collect_stats=True``.
        """
        stats = self.last_stats
        if stats is None:
            return []
        out = [
            {
                "operation": operation,
                "calls": stats.per_operation.get(operation, 0),
                "rows": stats.rows_per_operation.get(operation, 0),
                "seconds": seconds,
            }
            for operation, seconds in stats.seconds_per_operation.items()
        ]
        out.sort(key=lambda entry: entry["seconds"], reverse=True)
        # Storage-engine counters ride along as synthetic zero-time
        # entries so profiles expose pruning/fault behaviour without a
        # schema change: "calls" carries the count, "rows" the bytes.
        if stats.fragments_pruned:
            out.append({
                "operation": "storage.fragments_pruned",
                "calls": stats.fragments_pruned,
                "rows": 0,
                "seconds": 0.0,
            })
        if stats.bytes_faulted:
            out.append({
                "operation": "storage.bytes_faulted",
                "calls": 1,
                "rows": stats.bytes_faulted,
                "seconds": 0.0,
            })
        return out

    # ------------------------------------------------------------------
    # PEP 249 lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")
        if self._database.closed:
            raise InterfaceError("database is closed")

    @property
    def closed(self) -> bool:
        return self._closed or self._database.closed

    def cursor(self) -> Cursor:
        """A new DB-API cursor over this session."""
        self._check_open()
        return Cursor(self)

    def _close_session(self) -> None:
        """Close this session only (rolls back any open transaction)."""
        with self._lock:
            self._txn = None
            self._closed = True

    def close(self) -> None:
        """Close the session; further operations raise InterfaceError.

        A session created by ``repro.connect()`` owns its private
        engine, so closing it also shuts the engine down (scheduler
        pool included).  Sessions from :meth:`Database.connect` leave
        the shared engine running.
        """
        self._close_session()
        if self._owns_database:
            self._database.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        """True while an explicit transaction is open."""
        return self._txn is not None

    def begin(self) -> None:
        """Open an explicit transaction on the current committed snapshot.

        All statements until :meth:`commit` / :meth:`rollback` execute
        against a private copy-on-write fork (snapshot isolation).
        """
        with self._lock:
            self._check_open()
            if self._txn is not None:
                raise ProgrammingError("a transaction is already active")
            self._txn = self._database.begin_transaction()

    def commit(self) -> None:
        """Publish the open transaction atomically (PEP 249 commit).

        First committer wins: raises :class:`OperationalError` when a
        concurrent commit modified an object this transaction wrote
        (the transaction is rolled back in that case).  Outside a
        transaction this is a no-op — the session autocommits.
        """
        with self._lock:
            self._check_open()
            txn, self._txn = self._txn, None
            if txn is not None and txn.dirty:
                self._database.commit_transaction(txn)

    def rollback(self) -> None:
        """Discard the open transaction (PEP 249 rollback).

        The committed snapshot was never touched, so catalog and
        storage are restored exactly.  Outside a transaction this is a
        no-op.
        """
        with self._lock:
            self._check_open()
            self._txn = None

    @contextmanager
    def transaction(self):
        """``with conn.transaction() as txn:`` — begin/commit/rollback.

        Commits on clean exit, rolls back when the block raises.  The
        yielded :class:`Transaction` exposes
        :meth:`~Transaction.note_write` for code that stages changes by
        mutating ``conn.catalog`` objects directly instead of executing
        SQL (the bulk-ingestion helpers do this).
        """
        # Hold the session lock for the whole span so the begin → body
        # → commit sequence is atomic with respect to other threads
        # sharing this session (their statements queue until the block
        # finishes; the lock is reentrant for the body's own calls).
        with self._lock:
            self.begin()
            try:
                yield self._txn
            except BaseException:
                self.rollback()
                raise
            else:
                self.commit()

    @contextmanager
    def staging(self):
        """A transaction to stage direct catalog writes into.

        Yields the session's open transaction when one is active (and
        leaves it open), otherwise wraps the block in a private
        transaction that commits on exit.  The bulk-ingestion helpers
        (CSV import, ``ArrayHandle.from_numpy``, the demo apps) use
        this so their direct storage writes publish atomically and are
        tracked for conflict detection via
        :meth:`Transaction.note_write`.  The session lock is held for
        the whole block, so concurrent threads sharing the session can
        neither interleave statements nor roll the transaction back
        underneath the staged writes.
        """
        with self._lock:
            if self._txn is not None:
                yield self._txn
            else:
                with self.transaction() as txn:
                    yield txn

    # ------------------------------------------------------------------
    # compilation + the shared statement cache
    # ------------------------------------------------------------------
    def _schema_token(self):
        """Plan-validity token of the snapshot this session executes on."""
        txn = self._txn
        if txn is not None:
            return txn.schema_token
        return self._database.head().schema_version

    def _exec_catalog(self) -> Catalog:
        txn = self._txn
        if txn is not None:
            return txn.catalog
        return self._database.head().catalog

    def _compile_plan(
        self,
        plan: nodes.StatementPlan,
        catalog: Catalog,
        verify: Optional[bool] = None,
    ) -> MALProgram:
        self._database.note_compile(self)
        program = MALGenerator(catalog).generate(plan)
        if self.optimize_programs:
            program = optimize(program, self.pipeline, verify=verify)
        return program

    def _cache_key(self, sql: str) -> tuple:
        # The optimizer settings are part of the identity: benchmarks
        # flip them per-session, ablation runs swap pipelines, and the
        # fragmentation knobs change the compiled plan shape.  The
        # schema token makes entries snapshot-valid: committed DDL
        # mints keys no stale entry can match.
        # storage_token folds in the mmap knobs: flipping
        # REPRO_STORAGE_MMAP mid-process must not replay plans whose
        # cost assumptions (lazy vs eager heaps) no longer hold.
        return (
            sql,
            self.optimize_programs,
            self.pipeline,
            self._nr_threads,
            self._fragment_rows,
            self._schema_token(),
            gdk_storage.storage_token(),
        )

    def _build_entry(
        self,
        statement,
        param_keys: tuple,
        sql: str,
        token,
        catalog: Catalog,
    ) -> CompiledStatement:
        is_explain = isinstance(statement, ast.Explain)
        wants_verify = is_explain and statement.verify
        inner = statement.statement if is_explain else statement
        if isinstance(inner, (ast.ShowQueries, ast.KillQuery)):
            if is_explain:
                raise ProgrammingError(
                    "cannot EXPLAIN an administrative statement"
                )
            # Administrative statements never reach the planner: they
            # execute against the query registry at run time.
            return CompiledStatement(
                sql,
                MALProgram(),
                param_keys,
                False,
                False,
                token,
                statement=None if sql else statement,
                admin=inner,
            )
        plan = plan_statement(inner, catalog)
        program = self._compile_plan(
            plan, catalog, verify=True if wants_verify else None
        )
        program.param_keys = param_keys
        report = None
        if wants_verify:
            # The pipeline already re-checked after every pass; one
            # final run produces the report the listing displays.
            report = verify_program(program, phase="final")
        bulk = None
        if isinstance(plan, nodes.InsertValuesPlan) and len(plan.rows) == 1:
            bulk = plan
        return CompiledStatement(
            sql,
            program,
            param_keys,
            is_explain,
            isinstance(inner, _DDL_NODES),
            token,
            bulk,
            frozenset() if is_explain else program.write_targets(),
            None if sql else statement,
            report,
        )

    def _compile_sql(self, sql: str, token) -> CompiledStatement:
        parser = Parser(sql)
        statement = parser.parse_statement()
        return self._build_entry(
            statement, tuple(parser.parameters), sql, token, self._exec_catalog()
        )

    def _compiled(self, sql: str) -> CompiledStatement:
        """Shared-cache lookup or full compile of one statement text."""
        self._check_open()
        token = self._schema_token()
        database = self._database
        cacheable = (
            isinstance(token, int) and database.statement_cache_size > 0
        )
        if cacheable:
            key = self._cache_key(sql)
            entry = database.lookup_plan(key, self)
            if entry is not None:
                return entry
            entry = self._compile_sql(sql, token)
            database.store_plan(key, entry)
            return entry
        database.note_uncached_miss(self)
        return self._compile_sql(sql, token)

    def _refresh(self, entry: CompiledStatement) -> CompiledStatement:
        """Re-validate a compiled statement against the current snapshot."""
        if entry.schema_token == self._schema_token():
            return entry
        if entry.sql:
            return self._compiled(entry.sql)
        return self._build_entry(  # script entry: recompile from the AST
            entry.statement,
            entry.param_keys,
            "",
            self._schema_token(),
            self._exec_catalog(),
        )

    def compile(self, sql: str) -> MALProgram:
        """Compile one statement down to (optimized) MAL."""
        return self._compiled(sql).program

    def prepare(self, sql: str) -> "PreparedStatement":
        """Compile once; re-execute under fresh parameter bindings."""
        return PreparedStatement(self, self._compiled(sql))

    # ------------------------------------------------------------------
    # query lifecycle governance
    # ------------------------------------------------------------------
    @property
    def session_id(self) -> int:
        """Engine-assigned session serial (shown by ``SHOW QUERIES``)."""
        return self._session_id

    def cancel_running(self, reason: str = "") -> bool:
        """Cancel whatever statement this session is executing right now.

        Safe to call from any thread (the network server's CANCEL path
        and disconnect reclaim use it); returns False when the session
        is idle.  The executing thread aborts at its next instruction
        boundary with :class:`~repro.errors.QueryCancelledError`.
        """
        with self._query_lock:
            query = self._active_query
        if query is None:
            return False
        query.cancel(reason or "cancelled by request")
        return True

    @contextmanager
    def _governed(self, sql: str):
        """Register one top-level statement with the query registry.

        Reentrant: nested execution (``executemany`` driving
        ``_run_compiled`` per row, the bulk-insert path) rides on the
        already-active context so the whole batch is one qid, one
        deadline and one budget.  Callers hold the session lock, so the
        reuse check cannot race another statement of this session.

        A governance abort (cancel / deadline / budget) rolls any open
        transaction back before the error surfaces: the statement may
        have died mid-write inside the transaction fork, and a torn
        fork must never survive into the next statement.
        """
        with self._query_lock:
            active = self._active_query
        if active is not None:
            yield active
            return
        database = self._database
        query = database.register_query(
            sql,
            self._session_id,
            self.statement_timeout,
            self.mem_budget_bytes,
        )
        with self._query_lock:
            self._active_query = query
        try:
            # One upfront poll so an already-expired deadline (or a
            # pre-armed cancel) aborts even statements that never enter
            # the interpreter (bulk ingestion, empty programs).
            query.check()
            yield query
        except QueryGovernanceError:
            self._txn = None
            # Kill-during-rollback must recover byte-identically: the
            # crash matrix dies here and asserts the farm digest.
            crash_point("govern.cancel_rollback")
            raise
        finally:
            with self._query_lock:
                if self._active_query is query:
                    self._active_query = None
            database.finish_query(query)

    def _admin_result(self, admin) -> Result:
        """Execute SHOW QUERIES / KILL against the query registry."""
        if isinstance(admin, ast.ShowQueries):
            rows = self._database.list_queries()
            atoms = [
                Atom.LNG, Atom.LNG, Atom.STR, Atom.DBL,
                Atom.LNG, Atom.LNG, Atom.STR,
            ]
            names = [
                "qid", "session", "status", "elapsed_ms",
                "rows", "bytes", "sql",
            ]
            return Result(
                "table",
                names,
                [
                    Column.from_pylist(atom, [row[name] for row in rows])
                    for name, atom in zip(names, atoms)
                ],
                {"dims": [], "atoms": [atom.value for atom in atoms]},
            )
        self._database.kill_query(admin.qid, f"killed by KILL {admin.qid}")
        return Result(affected=1)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, params: Params = None, collect_stats: bool = False
    ) -> Result:
        """Execute one statement and return its result.

        ``params`` binds ``?`` (sequence) or ``:name`` (mapping)
        placeholders.  ``EXPLAIN <statement>`` returns the optimized
        MAL program text as a one-column result instead of executing
        the statement.  ``BEGIN`` / ``COMMIT`` / ``ROLLBACK`` control
        the session transaction.
        """
        command = _TXN_COMMAND.match(sql)
        if command is not None:
            self._check_open()
            if params:
                raise ProgrammingError(
                    "transaction control statements take no parameters"
                )
            if command.group("begin"):
                self.begin()
            elif command.group("commit"):
                self.commit()
            else:
                self.rollback()
            return Result()
        return self._run_compiled(self._compiled(sql), params, collect_stats)

    def _explain_result(self, program: MALProgram, report=None) -> Result:
        lines = annotate_program(program).splitlines()
        if report is not None:
            lines.append(
                f"# verified: {report.checked_ops} ops, {report.frees} frees, "
                f"{len(report.fragment_groups)} fragment groups"
            )
        return Result(
            "table",
            ["mal"],
            [Column.from_pylist(Atom.STR, lines)],
            {"dims": [], "atoms": [Atom.STR.value]},
        )

    def _execute_on(
        self,
        catalog: Catalog,
        entry: CompiledStatement,
        bindings: dict,
        collect_stats: bool,
    ) -> Result:
        with self._query_lock:
            query = self._active_query
        context, stats = self._database.interpreter.run(
            entry.program,
            collect_stats,
            bindings,
            catalog=catalog,
            nr_threads=self._nr_threads,
            query=query,
        )
        self.last_stats = stats if collect_stats else None
        if context.result is not None:
            return Result.from_internal(context.result, context.affected)
        return Result(affected=context.affected)

    def _apply_entry(
        self,
        txn: Transaction,
        entry: CompiledStatement,
        bindings: dict,
        collect_stats: bool,
    ) -> Result:
        # Track targets before running so a half-failed statement still
        # conflicts correctly at commit time.
        txn.writes.update(entry.write_targets)
        if entry.is_ddl:
            txn.note_schema_change()
        return self._execute_on(txn.catalog, entry, bindings, collect_stats)

    def _run_compiled(
        self,
        entry: CompiledStatement,
        params: Params = None,
        collect_stats: bool = False,
    ) -> Result:
        self._check_open()
        if entry.is_explain:
            return self._explain_result(entry.program, entry.verify_report)
        if entry.admin is not None:
            if params:
                raise ProgrammingError(
                    "administrative statements take no parameters"
                )
            return self._admin_result(entry.admin)
        bindings = bind_parameters(entry.param_keys, params)
        with self._lock:
            with self._governed(entry.sql or "<script statement>"):
                txn = self._txn
                if txn is not None:
                    return self._apply_entry(txn, entry, bindings, collect_stats)
                if not entry.is_write:
                    # Read-only autocommit: bind against the committed
                    # head snapshot — never blocks on, nor observes,
                    # writers.
                    return self._execute_on(
                        self._database.head().catalog,
                        entry,
                        bindings,
                        collect_stats,
                    )
                # Autocommit write: fork, execute, publish — all under
                # the writer lock, so concurrent autocommit writers
                # serialise instead of conflicting.
                database = self._database
                with database._writer_lock:
                    entry = self._refresh(entry)
                    txn = database.begin_transaction()
                    result = self._apply_entry(txn, entry, bindings, collect_stats)
                    database.commit_transaction(txn)
                    return result

    def executemany(
        self, sql: str, seq_of_params: Iterable[Params]
    ) -> Result:
        """Execute the statement once per parameter set.

        Single-row parameterized ``INSERT ... VALUES`` statements take
        a bulk path: the parameter sets are transposed into columns and
        appended (tables) or scattered into cells (arrays) in one go.
        The returned Result totals the affected rows.
        """
        return self._executemany_compiled(self._compiled(sql), seq_of_params)

    def _executemany_compiled(
        self, entry: CompiledStatement, seq_of_params: Iterable[Params]
    ) -> Result:
        self._check_open()
        if entry.is_explain:
            raise ProgrammingError("cannot executemany an EXPLAIN statement")
        if entry.admin is not None:
            raise ProgrammingError(
                "cannot executemany an administrative statement"
            )
        seq = list(seq_of_params)
        # The whole batch is one governed statement: one qid, one
        # deadline, one budget — KILL aborts every remaining row.
        with self._lock, self._governed(entry.sql or "<script statement>"):
            if entry.bulk_insert is not None and entry.param_keys and seq:
                txn = self._txn
                if txn is not None:
                    txn.writes.update(entry.write_targets)
                    return Result(
                        affected=self._bulk_insert(txn.catalog, entry, seq)
                    )
                database = self._database
                with database._writer_lock:
                    entry = self._refresh(entry)
                    txn = database.begin_transaction()
                    txn.writes.update(entry.write_targets)
                    result = Result(
                        affected=self._bulk_insert(txn.catalog, entry, seq)
                    )
                    database.commit_transaction(txn)
                    return result
            if entry.is_write:
                # One implicit transaction for the whole batch: a single
                # fork + publish instead of one per parameter row, and
                # the batch becomes atomic (all rows or none).
                if self._txn is not None:
                    total = 0
                    for params in seq:
                        total += self._run_compiled(entry, params).affected
                    return Result(affected=total)
                database = self._database
                with database._writer_lock:
                    entry = self._refresh(entry)
                    txn = database.begin_transaction()
                    total = 0
                    for params in seq:
                        total += self._apply_entry(
                            txn, entry, bind_parameters(entry.param_keys, params),
                            False,
                        ).affected
                    database.commit_transaction(txn)
                    return Result(affected=total)
            total = 0
            for params in seq:
                total += self._run_compiled(entry, params).affected
            return Result(affected=total)

    def _bulk_insert(
        self, catalog: Catalog, entry: CompiledStatement, seq: list
    ) -> int:
        """Columnar ingestion of many parameter sets for one VALUES row."""
        plan = entry.bulk_insert
        bound = [bind_parameters(entry.param_keys, params) for params in seq]
        per_column: dict[str, list] = {}
        for column, template in zip(plan.columns, plan.rows[0]):
            if isinstance(template, Parameter):
                per_column[column] = [row[template.key] for row in bound]
            else:
                per_column[column] = [template] * len(seq)
        if plan.target_kind == "table":
            table = catalog.get_table(plan.target)
            return table.append_rows(
                {
                    name: Column.from_pylist(table.column_def(name).atom, values)
                    for name, values in per_column.items()
                }
            )
        array = catalog.get_array(plan.target)
        coordinates = []
        valid_rows = np.ones(len(seq), dtype=np.bool_)
        for dimension in array.dimensions:
            column = Column.from_pylist(Atom.LNG, per_column[dimension.name])
            if column.mask is not None:
                # NULL coordinates never address a cell — drop those
                # rows, exactly like the per-row execute path does.
                valid_rows &= ~column.mask
            coordinates.append(column.values)
        oids = np.where(valid_rows, array.cell_oids(coordinates), -1)
        keep = oids >= 0
        positions = np.flatnonzero(keep)
        for column in plan.columns:
            if array.is_dimension(column):
                continue
            values = Column.from_pylist(
                array.attribute_def(column).atom, per_column[column]
            )
            array.replace_values(column, oids[keep], values.take(positions))
        return int(keep.sum())

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script; returns one result each.

        Each statement autocommits, or stages into the session's open
        transaction.  Transaction-control statements
        (``BEGIN``/``COMMIT``/``ROLLBACK``) are not part of the script
        grammar — open a transaction around the call instead
        (``with conn.transaction(): conn.execute_script(...)``).
        """
        self._check_open()
        parser = Parser(sql)
        statements = parser.parse_script()
        if parser.parameters:
            raise ProgrammingError("bind parameters are not allowed in scripts")
        results = []
        for statement in statements:
            entry = self._build_entry(
                statement, (), "", self._schema_token(), self._exec_catalog()
            )
            results.append(self._run_compiled(entry))
        return results

    # ------------------------------------------------------------------
    # plan inspection
    # ------------------------------------------------------------------
    def explain(self, sql: str) -> str:
        """The optimized MAL program of a statement as MAL surface text.

        The listing is prefixed with a stable content digest and one
        line per mitosis fragment group, so plan-shape regressions
        diff cleanly in golden tests.
        """
        return annotate_program(self.compile(sql))

    def verify_plan(self, sql: str):
        """Statically verify the optimized plan of *sql*.

        Recompiles the statement with per-pass verification forced on
        (regardless of ``REPRO_VERIFY_PLANS``) and returns the final
        :class:`~repro.mal.analysis.VerificationReport`; a malformed
        plan raises :class:`~repro.errors.PlanVerificationError`
        naming the offending pass and instruction.
        """
        self._check_open()
        statement = parse(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        catalog = self._exec_catalog()
        plan = plan_statement(statement, catalog)
        program = self._compile_plan(plan, catalog, verify=True)
        return verify_program(program, phase="final")

    def explain_unoptimized(self, sql: str) -> str:
        """The MAL program before the optimizer pipeline runs."""
        self._check_open()
        statement = parse(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        catalog = self._exec_catalog()
        plan = plan_statement(statement, catalog)
        return MALGenerator(catalog).generate(plan).to_text()

    # ------------------------------------------------------------------
    # NumPy array ingestion
    # ------------------------------------------------------------------
    def register_array(
        self,
        name: str,
        values: Union[np.ndarray, Mapping[str, np.ndarray]],
        dims: Optional[Sequence[str]] = None,
        attribute: str = "v",
    ) -> Array:
        """Install an ndarray as a SciQL array, bypassing SQL literals.

        ``values`` is one ndarray (stored under *attribute*) or a
        mapping of attribute name to ndarray (all of one shape).  Each
        axis becomes an INT dimension ``[0:1:size]`` named after
        ``dims`` (default ``x``, ``y``, ``z``, ``w``, then ``d4``...).
        Float NaNs and object-array ``None`` entries become NULL cells,
        so round-tripping through ``Result.grid()`` is exact.  The
        installation is transactional DDL: it stages into an open
        transaction, or publishes immediately under autocommit.
        """
        self._check_open()
        if isinstance(values, Mapping):
            arrays = {key: np.asarray(value) for key, value in values.items()}
        else:
            arrays = {attribute: np.asarray(values)}
        if not arrays:
            raise ProgrammingError("register_array needs at least one attribute")
        shapes = {array.shape for array in arrays.values()}
        if len(shapes) != 1:
            raise ProgrammingError(
                f"attribute arrays must share one shape, got {sorted(shapes)}"
            )
        shape = shapes.pop()
        if len(shape) == 0:
            raise ProgrammingError("register_array needs at least one axis")
        if dims is None:
            dims = [
                _DEFAULT_DIMENSION_NAMES[i]
                if i < len(_DEFAULT_DIMENSION_NAMES)
                else f"d{i}"
                for i in range(len(shape))
            ]
        if len(dims) != len(shape):
            raise ProgrammingError(
                f"array has {len(shape)} axes but {len(dims)} dimension names"
            )
        dimensions = [
            DimensionDef(dim_name, Atom.INT, 0, 1, int(size))
            for dim_name, size in zip(dims, shape)
        ]
        atoms = {
            attr: _atom_for_dtype(array.dtype) for attr, array in arrays.items()
        }
        attributes = [ColumnDef(attr, atoms[attr]) for attr in arrays]
        with self._lock:
            txn = self._txn
            if txn is not None:
                return self._install_array(
                    txn, name, dimensions, attributes, arrays, atoms
                )
            database = self._database
            with database._writer_lock:
                txn = database.begin_transaction()
                array_obj = self._install_array(
                    txn, name, dimensions, attributes, arrays, atoms
                )
                database.commit_transaction(txn)
                return array_obj

    def _install_array(
        self, txn: Transaction, name, dimensions, attributes, arrays, atoms
    ) -> Array:
        array_obj = txn.catalog.create_array(name, dimensions, attributes)
        for attr, array in arrays.items():
            array_obj.bats[attr] = BAT(_ingest_column(array, atoms[attr]))
        txn.note_write(name)
        txn.note_schema_change()
        return array_obj

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the committed database under *directory* (the "farm").

        The farm swap is atomic; staged (uncommitted) transaction state
        is not included.
        """
        self._check_open()
        self._database.save(directory)

    @classmethod
    def open(
        cls,
        directory: str | Path,
        optimize: bool = True,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        durable: bool | str = False,
    ) -> "Connection":
        """Open a database previously written by :meth:`save`.

        Opening runs crash recovery (checkpoint + write-ahead-log
        replay; see :meth:`Database.open`).  Returns an owning session
        of the freshly loaded engine; ``durable=True`` keeps every
        commit durable via the WAL, ``durable="full"`` republishes the
        whole farm per commit instead.
        """
        database = Database.open(
            directory,
            optimize=optimize,
            statement_cache_size=statement_cache_size,
            nr_threads=nr_threads,
            fragment_rows=fragment_rows,
            durable=durable,
        )
        connection = database.connect()
        connection._owns_database = True
        return connection


class PreparedStatement:
    """A statement compiled once, re-executed under fresh bindings.

    Re-execution skips lexing, parsing, binding, MAL generation and
    optimization entirely: only parameter validation and MAL
    interpretation run.  If the schema changed since compilation the
    statement transparently re-prepares itself first.
    """

    def __init__(self, connection: Connection, compiled: CompiledStatement):
        self.connection = connection
        self._compiled = compiled

    @property
    def sql(self) -> str:
        return self._compiled.sql

    @property
    def parameters(self) -> tuple:
        """Bind-parameter keys in occurrence order."""
        return self._compiled.param_keys

    @property
    def program(self) -> MALProgram:
        """The compiled (optimized) MAL program."""
        return self._compiled.program

    def execute(self, params: Params = None, collect_stats: bool = False) -> Result:
        """Run the compiled plan under *params*."""
        self._compiled = self.connection._refresh(self._compiled)
        return self.connection._run_compiled(self._compiled, params, collect_stats)

    def executemany(self, seq_of_params: Iterable[Params]) -> Result:
        """Run once per parameter set; the Result totals affected rows.

        Single-row parameterized INSERTs take the same bulk columnar
        path as :meth:`Connection.executemany`.
        """
        self._compiled = self.connection._refresh(self._compiled)
        return self.connection._executemany_compiled(self._compiled, seq_of_params)

    def explain(self) -> str:
        """MAL surface text of the compiled plan."""
        return self.program.to_text()


def connect(
    path: Optional[str | Path] = None,
    optimize: bool = True,
    statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
    nr_threads: Optional[int] = None,
    fragment_rows: Optional[float] = None,
    durable: bool | str = False,
    **client_options,
) -> Connection:
    """Create a session: in-memory by default, or load a saved farm.

    The returned :class:`Connection` owns a private
    :class:`Database`; use ``conn.database.connect()`` (or build a
    :class:`Database` directly) for additional concurrent sessions
    against the same store.

    ``nr_threads`` sizes the dataflow scheduler's worker pool (default:
    auto from ``os.cpu_count()``, capped at 8; 1 keeps the sequential
    interpreter).  ``fragment_rows`` sizes the mitosis scan fragments
    (default: auto — roughly one fragment per worker for large scans;
    ``float('inf')`` disables fragmentation).  Both accept
    ``REPRO_NR_THREADS`` / ``REPRO_FRAGMENT_ROWS`` environment
    overrides when not given explicitly.  ``durable=True`` (with a
    *path*) makes every commit crash-safe: the commit's logical delta
    is fsync'd to a write-ahead log (``<path>.wal``) before the commit
    returns, and checkpoints fold the log into the farm; reopening the
    path replays the log automatically.  ``durable="full"`` keeps the
    legacy mode of republishing the whole farm per commit.

    *path* may also be a ``repro://host:port`` URL, in which case the
    call connects to a running :mod:`repro.net` server instead and
    returns a :class:`~repro.net.client.RemoteConnection` with the
    same DB-API surface (the remaining keyword arguments are
    server-side concerns and are ignored for remote sessions).
    Extra keyword arguments — ``user``, ``password``, ``batch_rows``,
    ``timeout``, ``statement_timeout_ms`` — are client options
    forwarded to the remote connection and are an error otherwise.

    ``durable`` without a *path* cannot be honoured — there is no farm
    to log against — so it emits a :class:`DurabilityWarning` and
    continues in memory.
    """
    if isinstance(path, str) and path.startswith("repro://"):
        from repro.net.client import connect_url

        return connect_url(path, **client_options)
    if client_options:
        raise ProgrammingError(
            f"option(s) {sorted(client_options)} only apply to "
            "repro:// URLs"
        )
    if path is None:
        resolve_durable_mode(durable, None)
        return Connection(
            optimize=optimize,
            statement_cache_size=statement_cache_size,
            nr_threads=nr_threads,
            fragment_rows=fragment_rows,
        )
    return Connection.open(
        Path(path),
        optimize=optimize,
        nr_threads=nr_threads,
        fragment_rows=fragment_rows,
        statement_cache_size=statement_cache_size,
        durable=durable,
    )
