"""The public entry point: connections executing SQL/SciQL statements.

A connection drives the full Figure 2 pipeline for every statement:

    parse → bind/compile → MAL generation → MAL optimization →
    MAL interpretation → result

``Connection.explain`` exposes the optimized MAL program text, and the
optimizer pipeline can be switched off (``optimize=False``) for the
ablation benchmarks.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.errors import SciQLError
from repro.catalog import Catalog
from repro.algebra.compiler import plan_statement
from repro.algebra.malgen import MALGenerator
from repro.mal.interpreter import ExecutionStats, Interpreter
from repro.mal.optimizer import DEFAULT_PIPELINE, optimize
from repro.mal.program import MALProgram
from repro.sql.parser import parse, parse_script
from repro.engine.result import Result


class Connection:
    """A single-user session against an in-memory (or loaded) database."""

    def __init__(self, catalog: Optional[Catalog] = None, optimize: bool = True):
        self.catalog = catalog if catalog is not None else Catalog()
        self.interpreter = Interpreter(self.catalog)
        self.optimize_programs = optimize
        self.pipeline = DEFAULT_PIPELINE
        #: statistics of the last executed statement (instruction counts).
        self.last_stats: Optional[ExecutionStats] = None

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _compile_statement(self, statement) -> MALProgram:
        plan = plan_statement(statement, self.catalog)
        program = MALGenerator(self.catalog).generate(plan)
        if self.optimize_programs:
            program = optimize(program, self.pipeline)
        return program

    def compile(self, sql: str) -> MALProgram:
        """Compile one statement down to (optimized) MAL."""
        from repro.sql.ast_nodes import Explain

        statement = parse(sql)
        if isinstance(statement, Explain):
            statement = statement.statement
        return self._compile_statement(statement)

    def execute(self, sql: str, collect_stats: bool = False) -> Result:
        """Execute one statement and return its result.

        ``EXPLAIN <statement>`` returns the optimized MAL program text
        as a one-column result instead of executing the statement.
        """
        from repro.gdk.atoms import Atom
        from repro.gdk.column import Column
        from repro.sql.ast_nodes import Explain

        statement = parse(sql)
        if isinstance(statement, Explain):
            program = self._compile_statement(statement.statement)
            lines = program.to_text().splitlines()
            return Result(
                "table",
                ["mal"],
                [Column.from_pylist(Atom.STR, lines)],
                {"dims": []},
            )
        program = self._compile_statement(statement)
        context, stats = self.interpreter.run(program, collect_stats)
        self.last_stats = stats if collect_stats else None
        if context.result is not None:
            return Result.from_internal(context.result, context.affected)
        return Result(affected=context.affected)

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script; returns one result each."""
        results: list[Result] = []
        for statement in parse_script(sql):
            plan = plan_statement(statement, self.catalog)
            program = MALGenerator(self.catalog).generate(plan)
            if self.optimize_programs:
                program = optimize(program, self.pipeline)
            context, _ = self.interpreter.run(program)
            if context.result is not None:
                results.append(Result.from_internal(context.result, context.affected))
            else:
                results.append(Result(affected=context.affected))
        return results

    def explain(self, sql: str) -> str:
        """The optimized MAL program of a statement as MAL surface text."""
        return self.compile(sql).to_text()

    def explain_unoptimized(self, sql: str) -> str:
        """The MAL program before the optimizer pipeline runs."""
        statement = parse(sql)
        plan = plan_statement(statement, self.catalog)
        return MALGenerator(self.catalog).generate(plan).to_text()

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the whole database under *directory* (the "farm")."""
        self.catalog.save(Path(directory))

    @classmethod
    def open(cls, directory: str | Path, optimize: bool = True) -> "Connection":
        """Open a database previously written by :meth:`save`."""
        return cls(Catalog.load(Path(directory)), optimize)


def connect(path: Optional[str | Path] = None, optimize: bool = True) -> Connection:
    """Create a connection: in-memory by default, or load a saved farm."""
    if path is None:
        return Connection(optimize=optimize)
    path = Path(path)
    if path.exists():
        return Connection.open(path, optimize)
    raise SciQLError(f"no database at {path}; use connect() and save()")
