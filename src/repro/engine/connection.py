"""The public entry point: a DB-API 2.0 connection executing SQL/SciQL.

A connection drives the full Figure 2 pipeline for every *new*
statement text:

    parse → bind/compile → MAL generation → MAL optimization →
    MAL interpretation → result

Compiled plans are cached in an LRU statement cache keyed on the SQL
text, so repeated :meth:`Connection.execute` calls — and every
re-execution of a :class:`PreparedStatement` — skip straight from
parameter binding to MAL interpretation.  DDL bumps an internal schema
version, which lazily invalidates every cached (and prepared) plan.

PEP 249 surface: :func:`connect` / :meth:`Connection.cursor` /
``commit`` / ``close``, ``qmark`` (``?``) and named (``:name``)
parameter binding, and the module-level exception hierarchy re-exported
as ``Connection`` class attributes.  Engine extensions on top:
``execute`` returning the rich :class:`Result`, ``prepare`` for
explicit prepared statements, ``register_array`` for zero-copy NumPy
array ingestion, ``explain`` / ``explain_unoptimized``, and ``save`` /
``open`` persistence.
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from repro import errors
from repro.errors import (
    InterfaceError,
    NotSupportedError,
    ProgrammingError,
    SciQLError,
)
from repro.catalog import Catalog
from repro.catalog.objects import Array, ColumnDef, DimensionDef
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.algebra import nodes
from repro.algebra.compiler import plan_statement
from repro.algebra.malgen import MALGenerator
from repro.mal.interpreter import ExecutionStats, Interpreter
from repro.mal.optimizer import DEFAULT_PIPELINE, build_pipeline, optimize
from repro.mal.program import MALProgram
from repro.semantic.binder import Parameter
from repro.sql import ast_nodes as ast
from repro.sql.parser import Parser, parse
from repro.engine.cursor import Cursor, Params
from repro.engine.result import Result

#: statements whose execution changes the schema (invalidates plans).
_DDL_NODES = (
    ast.CreateTable,
    ast.CreateArray,
    ast.DropObject,
    ast.AlterArrayDimension,
)

#: default capacity of the per-connection LRU statement cache.
DEFAULT_STATEMENT_CACHE_SIZE = 128

#: cap on the automatic worker-thread count.
MAX_AUTO_THREADS = 8


def _resolve_nr_threads(value: Optional[int]) -> int:
    """Worker count: explicit knob > ``REPRO_NR_THREADS`` > cpu count."""
    source = "nr_threads"
    if value is None:
        env = os.environ.get("REPRO_NR_THREADS")
        if env:
            value = env
            source = "REPRO_NR_THREADS"
    if value is None:
        value = min(os.cpu_count() or 1, MAX_AUTO_THREADS)
    try:
        return max(1, int(value))
    except (TypeError, ValueError):
        raise ProgrammingError(
            f"invalid {source} value {value!r}: expected an integer"
        ) from None


def _resolve_fragment_rows(value) -> Optional[float]:
    """Fragment size: ``None`` = auto, ``math.inf`` = fragmentation off.

    Accepts ints, ``float('inf')``, and the ``REPRO_FRAGMENT_ROWS``
    environment override (``"inf"``/``"off"``/``"0"`` disable).
    """
    source = "fragment_rows"
    if value is None:
        env = os.environ.get("REPRO_FRAGMENT_ROWS")
        if env is not None:
            value = env
            source = "REPRO_FRAGMENT_ROWS"
    if value is None:
        return None
    try:
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("", "inf", "off", "none", "auto"):
                return math.inf if lowered != "auto" else None
        value = float(value)
    except (TypeError, ValueError):
        raise ProgrammingError(
            f"invalid {source} value {value!r}: expected a row count, "
            "'inf'/'off' or 'auto'"
        ) from None
    if math.isinf(value) or value <= 0:
        return math.inf
    return int(value)


@dataclass
class CompiledStatement:
    """One fully compiled statement: the unit the plan cache stores."""

    sql: str
    program: MALProgram
    param_keys: tuple
    is_explain: bool
    is_ddl: bool
    schema_version: int
    #: InsertValuesPlan for the executemany bulk-ingestion fast path
    #: (single parameterized VALUES row), else None.
    bulk_insert: Optional[nodes.InsertValuesPlan] = None


def _normalize_value(value: Any) -> Any:
    """NumPy scalars -> Python scalars; everything else passes through."""
    if isinstance(value, np.generic):
        return value.item()
    return value


def bind_parameters(param_keys: tuple, params: Params) -> dict:
    """Validate *params* against a statement's parameter signature.

    Returns the ``key -> value`` bindings the interpreter resolves
    :class:`~repro.mal.program.Param` operands from.  Raises
    :class:`ProgrammingError` on arity or style mismatches.
    """
    if not param_keys:
        if params:
            raise ProgrammingError(
                "statement takes no parameters but bindings were supplied"
            )
        return {}
    if isinstance(param_keys[0], str):  # named style (:name)
        if not isinstance(params, Mapping):
            raise ProgrammingError(
                "statement uses named parameters; supply a mapping"
            )
        bindings = {}
        for key in param_keys:
            if key not in params:
                raise ProgrammingError(f"missing value for parameter :{key}")
            bindings[key] = _normalize_value(params[key])
        return bindings
    expected = max(param_keys) + 1  # positional style (?)
    if (
        params is None
        or isinstance(params, (str, bytes, Mapping))
        or not isinstance(params, Sequence)
    ):
        raise ProgrammingError(
            f"statement takes {expected} positional parameters; "
            "supply a sequence"
        )
    if len(params) != expected:
        raise ProgrammingError(
            f"statement takes {expected} positional parameters, "
            f"{len(params)} given"
        )
    return {index: _normalize_value(value) for index, value in enumerate(params)}


def _atom_for_dtype(dtype: np.dtype) -> Atom:
    """The narrowest atom able to store an ndarray of *dtype*."""
    if dtype.kind == "b":
        return Atom.BIT
    if dtype.kind in "iu":
        return Atom.INT if dtype.itemsize <= 4 and dtype.kind == "i" else Atom.LNG
    if dtype.kind == "f":
        return Atom.DBL
    if dtype.kind in "OUS":
        return Atom.STR
    raise ProgrammingError(f"cannot store ndarrays of dtype {dtype} as an array")


def _ingest_column(array_values: np.ndarray, atom: Atom) -> Column:
    """Flatten one attribute ndarray into a Column (NaN/None -> NULL)."""
    flat = np.ascontiguousarray(array_values).reshape(-1)
    if atom is Atom.DBL:
        mask = np.isnan(flat.astype(np.float64))
        return Column(atom, flat, mask if mask.any() else None)
    if atom is Atom.STR:
        out = flat.astype(object)
        mask = np.array([v is None for v in out], dtype=np.bool_)
        if mask.any():
            out = out.copy()
            out[mask] = ""
            return Column(atom, out, mask)
        return Column(atom, out)
    return Column(atom, flat)


_DEFAULT_DIMENSION_NAMES = ("x", "y", "z", "w")


class Connection:
    """A single-user session against an in-memory (or loaded) database."""

    # PEP 249: exceptions available as Connection attributes.
    Warning = errors.Warning
    Error = errors.Error
    InterfaceError = errors.InterfaceError
    DatabaseError = errors.DatabaseError
    DataError = errors.DataError
    OperationalError = errors.OperationalError
    IntegrityError = errors.IntegrityError
    InternalError = errors.InternalError
    ProgrammingError = errors.ProgrammingError
    NotSupportedError = errors.NotSupportedError

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        optimize: bool = True,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
    ):
        self.catalog = catalog if catalog is not None else Catalog()
        #: execution knobs: worker threads for the dataflow scheduler and
        #: the mitosis fragment size.  ``nr_threads=1, fragment_rows=inf``
        #: reproduces the sequential engine exactly (plans included).
        self._nr_threads = _resolve_nr_threads(nr_threads)
        self._fragment_rows = _resolve_fragment_rows(fragment_rows)
        self.interpreter = Interpreter(self.catalog, self._nr_threads)
        self.optimize_programs = optimize
        self.pipeline = self._build_pipeline()
        #: statistics of the last executed statement (instruction counts).
        self.last_stats: Optional[ExecutionStats] = None
        #: LRU capacity of the compiled-plan cache (0 disables caching).
        self.statement_cache_size = statement_cache_size
        self._plan_cache: OrderedDict[tuple, CompiledStatement] = OrderedDict()
        self._schema_version = 0
        self._closed = False
        #: observability: full front-end compiles / plan-cache traffic.
        self.compile_count = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # execution knobs (parallel fragmented execution)
    # ------------------------------------------------------------------
    def _build_pipeline(self) -> tuple:
        fragmented = self._fragment_rows is not None and not (
            isinstance(self._fragment_rows, float)
            and math.isinf(self._fragment_rows)
        )
        if self._fragment_rows is None and self._nr_threads > 1:
            fragmented = True  # auto mode sizes fragments per thread
        if not fragmented:
            return DEFAULT_PIPELINE
        rows = None if self._fragment_rows is None else int(self._fragment_rows)
        return build_pipeline(
            self.catalog, rows, self._nr_threads, fragmented=True
        )

    @property
    def nr_threads(self) -> int:
        """Dataflow worker threads (1 = the sequential interpreter)."""
        return self._nr_threads

    @nr_threads.setter
    def nr_threads(self, value: Optional[int]) -> None:
        self._nr_threads = _resolve_nr_threads(value)
        self.interpreter.set_threads(self._nr_threads)
        self.pipeline = self._build_pipeline()

    @property
    def fragment_rows(self):
        """Mitosis fragment size: int, ``None`` (auto) or ``inf`` (off)."""
        return self._fragment_rows

    @fragment_rows.setter
    def fragment_rows(self, value) -> None:
        self._fragment_rows = _resolve_fragment_rows(value)
        self.pipeline = self._build_pipeline()

    def last_profile(self) -> list[dict]:
        """Per-operation profile of the last ``collect_stats`` execution.

        Returns one entry per MAL operation, ordered by cumulative wall
        time (descending): ``{"operation", "calls", "rows", "seconds"}``.
        Returns an empty list when the last statement ran without
        ``collect_stats=True``.
        """
        stats = self.last_stats
        if stats is None:
            return []
        out = [
            {
                "operation": operation,
                "calls": stats.per_operation.get(operation, 0),
                "rows": stats.rows_per_operation.get(operation, 0),
                "seconds": seconds,
            }
            for operation, seconds in stats.seconds_per_operation.items()
        ]
        out.sort(key=lambda entry: entry["seconds"], reverse=True)
        return out

    # ------------------------------------------------------------------
    # PEP 249 lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    def cursor(self) -> Cursor:
        """A new DB-API cursor over this connection."""
        self._check_open()
        return Cursor(self)

    def close(self) -> None:
        """Close the connection; further operations raise InterfaceError."""
        self._plan_cache.clear()
        self.interpreter.close()
        self._closed = True

    def commit(self) -> None:
        """PEP 249 commit: a no-op — every statement is applied directly."""
        self._check_open()

    def rollback(self) -> None:
        """PEP 249 rollback: unsupported, the engine has no transactions."""
        self._check_open()
        raise NotSupportedError("the engine does not support transactions")

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # compilation + statement cache
    # ------------------------------------------------------------------
    def _compile_plan(self, plan: nodes.StatementPlan) -> MALProgram:
        self.compile_count += 1
        program = MALGenerator(self.catalog).generate(plan)
        if self.optimize_programs:
            program = optimize(program, self.pipeline)
        return program

    def _compile_statement(self, statement) -> MALProgram:
        return self._compile_plan(plan_statement(statement, self.catalog))

    def _cache_key(self, sql: str) -> tuple:
        # The optimizer settings are part of the identity: benchmarks
        # flip them per-connection, ablation runs swap pipelines, and
        # the fragmentation knobs change the compiled plan shape.
        return (
            sql,
            self.optimize_programs,
            self.pipeline,
            self._nr_threads,
            self._fragment_rows,
        )

    def _compile_sql(self, sql: str) -> CompiledStatement:
        parser = Parser(sql)
        statement = parser.parse_statement()
        param_keys = tuple(parser.parameters)
        is_explain = isinstance(statement, ast.Explain)
        inner = statement.statement if is_explain else statement
        plan = plan_statement(inner, self.catalog)
        program = self._compile_plan(plan)
        program.param_keys = param_keys
        bulk = None
        if isinstance(plan, nodes.InsertValuesPlan) and len(plan.rows) == 1:
            bulk = plan
        return CompiledStatement(
            sql,
            program,
            param_keys,
            is_explain,
            isinstance(inner, _DDL_NODES),
            self._schema_version,
            bulk,
        )

    def _compiled(self, sql: str) -> CompiledStatement:
        """Cache lookup or full compile of one statement text."""
        self._check_open()
        key = self._cache_key(sql)
        entry = self._plan_cache.get(key)
        if entry is not None:
            if entry.schema_version == self._schema_version:
                self._plan_cache.move_to_end(key)
                self.cache_hits += 1
                return entry
            del self._plan_cache[key]  # stale: schema changed since
        self.cache_misses += 1
        entry = self._compile_sql(sql)
        if self.statement_cache_size > 0:
            self._plan_cache[key] = entry
            while len(self._plan_cache) > self.statement_cache_size:
                self._plan_cache.popitem(last=False)
        return entry

    def _refresh(self, entry: CompiledStatement) -> CompiledStatement:
        """Re-validate a compiled statement against the current schema."""
        if entry.schema_version == self._schema_version:
            return entry
        return self._compiled(entry.sql)

    def _note_schema_change(self) -> None:
        self._schema_version += 1

    def compile(self, sql: str) -> MALProgram:
        """Compile one statement down to (optimized) MAL."""
        return self._compiled(sql).program

    def prepare(self, sql: str) -> "PreparedStatement":
        """Compile once; re-execute under fresh parameter bindings."""
        return PreparedStatement(self, self._compiled(sql))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, sql: str, params: Params = None, collect_stats: bool = False
    ) -> Result:
        """Execute one statement and return its result.

        ``params`` binds ``?`` (sequence) or ``:name`` (mapping)
        placeholders.  ``EXPLAIN <statement>`` returns the optimized
        MAL program text as a one-column result instead of executing
        the statement.
        """
        return self._run_compiled(self._compiled(sql), params, collect_stats)

    def _explain_result(self, program: MALProgram) -> Result:
        lines = program.to_text().splitlines()
        return Result(
            "table",
            ["mal"],
            [Column.from_pylist(Atom.STR, lines)],
            {"dims": [], "atoms": [Atom.STR.value]},
        )

    def _run_compiled(
        self,
        entry: CompiledStatement,
        params: Params = None,
        collect_stats: bool = False,
    ) -> Result:
        self._check_open()
        if entry.is_explain:
            return self._explain_result(entry.program)
        bindings = bind_parameters(entry.param_keys, params)
        context, stats = self.interpreter.run(
            entry.program, collect_stats, bindings
        )
        self.last_stats = stats if collect_stats else None
        if entry.is_ddl:
            self._note_schema_change()
        if context.result is not None:
            return Result.from_internal(context.result, context.affected)
        return Result(affected=context.affected)

    def executemany(
        self, sql: str, seq_of_params: Iterable[Params]
    ) -> Result:
        """Execute the statement once per parameter set.

        Single-row parameterized ``INSERT ... VALUES`` statements take
        a bulk path: the parameter sets are transposed into columns and
        appended (tables) or scattered into cells (arrays) in one go.
        The returned Result totals the affected rows.
        """
        return self._executemany_compiled(self._compiled(sql), seq_of_params)

    def _executemany_compiled(
        self, entry: CompiledStatement, seq_of_params: Iterable[Params]
    ) -> Result:
        if entry.is_explain:
            raise ProgrammingError("cannot executemany an EXPLAIN statement")
        seq = list(seq_of_params)
        if entry.bulk_insert is not None and entry.param_keys and seq:
            return Result(affected=self._bulk_insert(entry, seq))
        total = 0
        for params in seq:
            total += self._run_compiled(entry, params).affected
        return Result(affected=total)

    def _bulk_insert(self, entry: CompiledStatement, seq: list) -> int:
        """Columnar ingestion of many parameter sets for one VALUES row."""
        plan = entry.bulk_insert
        bound = [bind_parameters(entry.param_keys, params) for params in seq]
        per_column: dict[str, list] = {}
        for column, template in zip(plan.columns, plan.rows[0]):
            if isinstance(template, Parameter):
                per_column[column] = [row[template.key] for row in bound]
            else:
                per_column[column] = [template] * len(seq)
        if plan.target_kind == "table":
            table = self.catalog.get_table(plan.target)
            return table.append_rows(
                {
                    name: Column.from_pylist(table.column_def(name).atom, values)
                    for name, values in per_column.items()
                }
            )
        array = self.catalog.get_array(plan.target)
        coordinates = []
        valid_rows = np.ones(len(seq), dtype=np.bool_)
        for dimension in array.dimensions:
            column = Column.from_pylist(Atom.LNG, per_column[dimension.name])
            if column.mask is not None:
                # NULL coordinates never address a cell — drop those
                # rows, exactly like the per-row execute path does.
                valid_rows &= ~column.mask
            coordinates.append(column.values)
        oids = np.where(valid_rows, array.cell_oids(coordinates), -1)
        keep = oids >= 0
        positions = np.flatnonzero(keep)
        for column in plan.columns:
            if array.is_dimension(column):
                continue
            values = Column.from_pylist(
                array.attribute_def(column).atom, per_column[column]
            )
            array.replace_values(column, oids[keep], values.take(positions))
        return int(keep.sum())

    def _execute_statement(self, statement: ast.Statement) -> Result:
        """Compile and run one already-parsed statement (script path)."""
        if isinstance(statement, ast.Explain):
            return self._explain_result(
                self._compile_statement(statement.statement)
            )
        program = self._compile_statement(statement)
        context, _ = self.interpreter.run(program)
        if isinstance(statement, _DDL_NODES):
            self._note_schema_change()
        if context.result is not None:
            return Result.from_internal(context.result, context.affected)
        return Result(affected=context.affected)

    def execute_script(self, sql: str) -> list[Result]:
        """Execute a ``;``-separated script; returns one result each."""
        self._check_open()
        parser = Parser(sql)
        statements = parser.parse_script()
        if parser.parameters:
            raise ProgrammingError("bind parameters are not allowed in scripts")
        return [self._execute_statement(statement) for statement in statements]

    # ------------------------------------------------------------------
    # plan inspection
    # ------------------------------------------------------------------
    def explain(self, sql: str) -> str:
        """The optimized MAL program of a statement as MAL surface text."""
        return self.compile(sql).to_text()

    def explain_unoptimized(self, sql: str) -> str:
        """The MAL program before the optimizer pipeline runs."""
        statement = parse(sql)
        if isinstance(statement, ast.Explain):
            statement = statement.statement
        plan = plan_statement(statement, self.catalog)
        return MALGenerator(self.catalog).generate(plan).to_text()

    # ------------------------------------------------------------------
    # NumPy array ingestion
    # ------------------------------------------------------------------
    def register_array(
        self,
        name: str,
        values: Union[np.ndarray, Mapping[str, np.ndarray]],
        dims: Optional[Sequence[str]] = None,
        attribute: str = "v",
    ) -> Array:
        """Install an ndarray as a SciQL array, bypassing SQL literals.

        ``values`` is one ndarray (stored under *attribute*) or a
        mapping of attribute name to ndarray (all of one shape).  Each
        axis becomes an INT dimension ``[0:1:size]`` named after
        ``dims`` (default ``x``, ``y``, ``z``, ``w``, then ``d4``...).
        Float NaNs and object-array ``None`` entries become NULL cells,
        so round-tripping through ``Result.grid()`` is exact.
        """
        self._check_open()
        if isinstance(values, Mapping):
            arrays = {key: np.asarray(value) for key, value in values.items()}
        else:
            arrays = {attribute: np.asarray(values)}
        if not arrays:
            raise ProgrammingError("register_array needs at least one attribute")
        shapes = {array.shape for array in arrays.values()}
        if len(shapes) != 1:
            raise ProgrammingError(
                f"attribute arrays must share one shape, got {sorted(shapes)}"
            )
        shape = shapes.pop()
        if len(shape) == 0:
            raise ProgrammingError("register_array needs at least one axis")
        if dims is None:
            dims = [
                _DEFAULT_DIMENSION_NAMES[i]
                if i < len(_DEFAULT_DIMENSION_NAMES)
                else f"d{i}"
                for i in range(len(shape))
            ]
        if len(dims) != len(shape):
            raise ProgrammingError(
                f"array has {len(shape)} axes but {len(dims)} dimension names"
            )
        dimensions = [
            DimensionDef(dim_name, Atom.INT, 0, 1, int(size))
            for dim_name, size in zip(dims, shape)
        ]
        atoms = {
            attr: _atom_for_dtype(array.dtype) for attr, array in arrays.items()
        }
        attributes = [ColumnDef(attr, atoms[attr]) for attr in arrays]
        array_obj = self.catalog.create_array(name, dimensions, attributes)
        for attr, array in arrays.items():
            array_obj.bats[attr] = BAT(_ingest_column(array, atoms[attr]))
        self._note_schema_change()
        return array_obj

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def save(self, directory: str | Path) -> None:
        """Persist the whole database under *directory* (the "farm")."""
        self._check_open()
        self.catalog.save(Path(directory))

    @classmethod
    def open(
        cls,
        directory: str | Path,
        optimize: bool = True,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
    ) -> "Connection":
        """Open a database previously written by :meth:`save`."""
        return cls(
            Catalog.load(Path(directory)),
            optimize,
            nr_threads=nr_threads,
            fragment_rows=fragment_rows,
        )


class PreparedStatement:
    """A statement compiled once, re-executed under fresh bindings.

    Re-execution skips lexing, parsing, binding, MAL generation and
    optimization entirely: only parameter validation and MAL
    interpretation run.  If the schema changed since compilation the
    statement transparently re-prepares itself first.
    """

    def __init__(self, connection: Connection, compiled: CompiledStatement):
        self.connection = connection
        self._compiled = compiled

    @property
    def sql(self) -> str:
        return self._compiled.sql

    @property
    def parameters(self) -> tuple:
        """Bind-parameter keys in occurrence order."""
        return self._compiled.param_keys

    @property
    def program(self) -> MALProgram:
        """The compiled (optimized) MAL program."""
        return self._compiled.program

    def execute(self, params: Params = None, collect_stats: bool = False) -> Result:
        """Run the compiled plan under *params*."""
        self._compiled = self.connection._refresh(self._compiled)
        return self.connection._run_compiled(self._compiled, params, collect_stats)

    def executemany(self, seq_of_params: Iterable[Params]) -> Result:
        """Run once per parameter set; the Result totals affected rows.

        Single-row parameterized INSERTs take the same bulk columnar
        path as :meth:`Connection.executemany`.
        """
        self._compiled = self.connection._refresh(self._compiled)
        return self.connection._executemany_compiled(self._compiled, seq_of_params)

    def explain(self) -> str:
        """MAL surface text of the compiled plan."""
        return self.program.to_text()


def connect(
    path: Optional[str | Path] = None,
    optimize: bool = True,
    statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
    nr_threads: Optional[int] = None,
    fragment_rows: Optional[float] = None,
) -> Connection:
    """Create a connection: in-memory by default, or load a saved farm.

    ``nr_threads`` sizes the dataflow scheduler's worker pool (default:
    auto from ``os.cpu_count()``, capped at 8; 1 keeps the sequential
    interpreter).  ``fragment_rows`` sizes the mitosis scan fragments
    (default: auto — roughly one fragment per worker for large scans;
    ``float('inf')`` disables fragmentation).  Both accept
    ``REPRO_NR_THREADS`` / ``REPRO_FRAGMENT_ROWS`` environment
    overrides when not given explicitly.
    """
    if path is None:
        return Connection(
            optimize=optimize,
            statement_cache_size=statement_cache_size,
            nr_threads=nr_threads,
            fragment_rows=fragment_rows,
        )
    path = Path(path)
    if path.exists():
        connection = Connection.open(
            path, optimize, nr_threads=nr_threads, fragment_rows=fragment_rows
        )
        connection.statement_cache_size = statement_cache_size
        return connection
    raise SciQLError(f"no database at {path}; use connect() and save()")
