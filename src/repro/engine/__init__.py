"""Execution engine: connections, cursors, prepared statements, results."""

from repro.engine.connection import Connection, PreparedStatement, connect
from repro.engine.cursor import Cursor
from repro.engine.result import Result

__all__ = ["Connection", "Cursor", "PreparedStatement", "Result", "connect"]
