"""Execution engine: the shared database, sessions, cursors, results."""

from repro.engine.connection import Connection, PreparedStatement, connect
from repro.engine.cursor import Cursor
from repro.engine.database import CatalogVersion, Database, Transaction
from repro.engine.result import Result

__all__ = [
    "CatalogVersion",
    "Connection",
    "Cursor",
    "Database",
    "PreparedStatement",
    "Result",
    "Transaction",
    "connect",
]
