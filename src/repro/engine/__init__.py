"""Execution engine: connections and results."""

from repro.engine.connection import Connection, connect
from repro.engine.result import Result

__all__ = ["Connection", "Result", "connect"]
