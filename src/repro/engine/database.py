"""The shared engine: one database, many concurrent sessions.

The paper's system is a multi-user server — many clients issue
SQL/SciQL queries against one shared column store.  This module is the
engine half of that split:

* :class:`Database` owns everything shared: the committed catalog
  (as a chain of immutable :class:`CatalogVersion` snapshots), the
  global dataflow scheduler (one
  :class:`~repro.mal.interpreter.Interpreter` + worker pool), the
  cross-session compiled-plan cache, and persistence.
* :class:`Transaction` is the per-session staging area: a
  copy-on-write :meth:`~repro.catalog.Catalog.fork` of the snapshot it
  started from, plus the set of object names it wrote.
* :meth:`Database.connect` hands out lightweight
  :class:`~repro.engine.connection.Connection` sessions (PEP 249
  ``threadsafety >= 2``): every session reads a consistent committed
  snapshot, writers stage into their transaction fork, and
  :meth:`Database.commit_transaction` publishes a new version
  atomically — first committer wins, a conflicting concurrent commit
  raises :class:`~repro.errors.OperationalError`.

Concurrency protocol
--------------------

Committed catalogs are immutable by convention: every write path goes
through a fork, so a reader that picked up ``Database.head()`` keeps a
torn-free view for as long as it likes.  ``_writer_lock`` serialises
publishes (and the whole execute-and-publish span of autocommit write
statements, so independent autocommit writers never see spurious
conflicts); readers never take it.  The plan cache and the
observability counters are guarded by ``_cache_lock``.  Plans are
keyed by the schema version of the snapshot they were compiled
against, which generalises the old per-connection schema-version
invalidation: a DDL commit simply mints keys no stale entry can match.
"""

from __future__ import annotations

import math
import os
import threading
import warnings
import weakref
from collections import OrderedDict
from pathlib import Path
from typing import Optional

from repro import knobs
from repro.errors import (
    DurabilityWarning,
    InterfaceError,
    OperationalError,
    ProgrammingError,
    SciQLError,
)
from repro.catalog import Catalog
from repro.catalog.catalog import farm_versions
from repro.engine import wal as wal_mod
from repro.lifecycle import QueryContext, QueryRegistry
from repro.gdk.persist import recover_farm
from repro.mal.interpreter import Interpreter
from repro.mal.optimizer import DEFAULT_PIPELINE, build_pipeline
from repro.testing.faultpoints import crash_point

#: default capacity of the shared LRU statement cache.
DEFAULT_STATEMENT_CACHE_SIZE = 128

#: cap on the automatic worker-thread count.
MAX_AUTO_THREADS = 8

#: checkpoint when the WAL grows past this many bytes...
DEFAULT_CHECKPOINT_BYTES = 64 * 1024 * 1024
#: ... or this many commit records, whichever comes first.
DEFAULT_CHECKPOINT_RECORDS = 1024


def resolve_durable_mode(value, path) -> Optional[str]:
    """Normalise the ``durable`` knob: None, ``"wal"`` or ``"full"``.

    ``True`` (and ``"wal"``) selects write-ahead logging — commits
    append fsync'd deltas to ``<farm>.wal`` and checkpoints fold them
    into the farm.  ``"full"`` keeps the legacy behaviour of
    republishing the whole farm on every commit (the benchmark
    baseline).  Durability requires a farm *path*.
    """
    if value is None or value is False:
        return None
    if value is True:
        mode = "wal"
    elif isinstance(value, str) and value.lower() in ("wal", "full"):
        mode = value.lower()
    elif isinstance(value, str) and value.lower() in ("off", "none", ""):
        return None
    else:
        raise ProgrammingError(
            f"invalid durable value {value!r}: expected a bool, 'wal' or 'full'"
        )
    if path is None:
        # Durability requires a farm path (an in-memory database has
        # nowhere to log to).  Historically this *silently* stayed
        # in-memory; now the dropped request is loud.
        warnings.warn(
            f"durable={value!r} requested without a database path: an "
            "in-memory database cannot be durable, continuing without "
            "durability (pass a farm path to keep commits crash-safe)",
            DurabilityWarning,
            stacklevel=3,
        )
        return None
    return mode


def _resolve_checkpoint_threshold(env_name: str, default: int) -> int:
    value = knobs.raw(env_name)
    if not value:
        return default
    try:
        return max(1, int(value))
    except ValueError:
        raise ProgrammingError(
            f"invalid {env_name} value {value!r}: expected an integer"
        ) from None


def resolve_nr_threads(value: Optional[int]) -> int:
    """Worker count: explicit knob > ``REPRO_NR_THREADS`` > cpu count."""
    source = "nr_threads"
    if value is None:
        env = knobs.raw("REPRO_NR_THREADS")
        if env:
            value = env
            source = "REPRO_NR_THREADS"
    if value is None:
        value = min(os.cpu_count() or 1, MAX_AUTO_THREADS)
    try:
        return max(1, int(value))
    except (TypeError, ValueError):
        raise ProgrammingError(
            f"invalid {source} value {value!r}: expected an integer"
        ) from None


def resolve_fragment_rows(value) -> Optional[float]:
    """Fragment size: ``None`` = auto, ``math.inf`` = fragmentation off.

    Accepts ints, ``float('inf')``, and the ``REPRO_FRAGMENT_ROWS``
    environment override (``"inf"``/``"off"``/``"0"`` disable).
    """
    source = "fragment_rows"
    if value is None:
        env = knobs.raw("REPRO_FRAGMENT_ROWS")
        if env is not None:
            value = env
            source = "REPRO_FRAGMENT_ROWS"
    if value is None:
        return None
    try:
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("", "inf", "off", "none", "auto"):
                return math.inf if lowered != "auto" else None
        value = float(value)
    except (TypeError, ValueError):
        raise ProgrammingError(
            f"invalid {source} value {value!r}: expected a row count, "
            "'inf'/'off' or 'auto'"
        ) from None
    if math.isinf(value) or value <= 0:
        return math.inf
    return int(value)


def default_statement_timeout() -> Optional[float]:
    """Session default deadline in *seconds* from ``REPRO_STATEMENT_TIMEOUT_MS``.

    ``None`` (no deadline) when unset, empty or non-positive.
    """
    env = knobs.raw("REPRO_STATEMENT_TIMEOUT_MS")
    if not env:
        return None
    try:
        millis = float(env)
    except ValueError:
        raise ProgrammingError(
            f"invalid REPRO_STATEMENT_TIMEOUT_MS value {env!r}: "
            "expected milliseconds"
        ) from None
    return millis / 1000.0 if millis > 0 else None


def default_mem_budget() -> Optional[int]:
    """Session default per-query byte budget from ``REPRO_MEM_BUDGET_BYTES``.

    ``None`` (no budget) when unset, empty or non-positive.
    """
    env = knobs.raw("REPRO_MEM_BUDGET_BYTES")
    if not env:
        return None
    try:
        budget = int(env)
    except ValueError:
        raise ProgrammingError(
            f"invalid REPRO_MEM_BUDGET_BYTES value {env!r}: expected bytes"
        ) from None
    return budget if budget > 0 else None


class CatalogVersion:
    """One committed, immutable-by-convention state of the database.

    ``version`` counts every commit; ``schema_version`` only advances
    on committed DDL and keys the shared plan cache.
    """

    __slots__ = ("catalog", "version", "schema_version")

    def __init__(self, catalog: Catalog, version: int, schema_version: int):
        self.catalog = catalog
        self.version = version
        self.schema_version = schema_version

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CatalogVersion(v{self.version}, schema v{self.schema_version}, "
            f"{len(self.catalog.names())} objects)"
        )


class Transaction:
    """Per-session staging: a copy-on-write fork plus write tracking.

    All statement execution inside the transaction binds against
    ``self.catalog`` — the fork — so readers of the committed head
    never observe staged changes.  ``writes`` holds the lowercased
    names of every object the transaction created, mutated or dropped;
    commit uses it for first-committer-wins conflict detection and for
    merging onto a head that advanced underneath the transaction.

    Direct catalog manipulation (the ``connection.catalog`` escape
    hatch) is staged too when a transaction is active, but the engine
    cannot observe it — call :meth:`note_write` so commit knows about
    those objects.
    """

    __slots__ = ("base", "catalog", "writes", "schema_changes", "serial")

    def __init__(self, base: CatalogVersion, serial: int = 0):
        self.base = base
        self.catalog = base.catalog.fork()
        self.writes: set[str] = set()
        self.schema_changes = 0
        self.serial = serial

    @property
    def schema_token(self):
        """Plan-validity token: the committed int, or a private tuple
        once local DDL happened (never collides with committed keys)."""
        if self.schema_changes:
            return ("txn", self.serial, self.schema_changes)
        return self.base.schema_version

    def note_write(self, name: str) -> None:
        """Record that *name* was (or will be) written by this txn."""
        self.writes.add(name.lower())

    def note_schema_change(self) -> None:
        """Record staged DDL (bumps the published schema version)."""
        self.schema_changes += 1

    @property
    def dirty(self) -> bool:
        return bool(self.writes or self.schema_changes)


class _HeadCatalogView:
    """A live ``.get()`` view of the committed head, for the optimizer.

    Interned fragmented pipelines outlive any single catalog version;
    mitosis only needs current row-count estimates, so it resolves
    through this proxy instead of pinning one snapshot.
    """

    __slots__ = ("_database",)

    def __init__(self, database: "Database"):
        self._database = database

    def get(self, name: str):
        return self._database.head().catalog.get(name)


class Database:
    """A shared engine instance: catalog versions, scheduler, plan cache.

    Create one per logical database and call :meth:`connect` once per
    client thread/session.  ``repro.connect()`` remains the
    single-session shorthand: it builds a private Database and returns
    its first session.
    """

    def __init__(
        self,
        catalog: Optional[Catalog] = None,
        optimize: bool = True,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
        path: Optional[str | Path] = None,
        durable: bool | str = False,
    ):
        self._head = CatalogVersion(
            catalog if catalog is not None else Catalog(), 0, 0
        )
        #: serialises commit publishes and autocommit write statements.
        self._writer_lock = threading.RLock()
        #: guards the shared plan cache and the observability counters.
        self._cache_lock = threading.RLock()
        self.default_optimize = optimize
        self._nr_threads = resolve_nr_threads(nr_threads)
        self._fragment_rows = resolve_fragment_rows(fragment_rows)
        #: shared LRU capacity of the compiled-plan cache (0 disables).
        self.statement_cache_size = statement_cache_size
        self._plan_cache: OrderedDict[tuple, object] = OrderedDict()
        self._pipelines: dict[tuple, tuple] = {}
        self._head_view = _HeadCatalogView(self)
        #: the one dataflow scheduler every session shares; raw
        #: ``interpreter.run(program)`` calls bind against the live head.
        self.interpreter = Interpreter(self._catalog_now, self._nr_threads)
        self._sessions: weakref.WeakSet = weakref.WeakSet()
        self._txn_serial = 0
        self._session_serial = 0
        #: registry of running statements (SHOW QUERIES / KILL <qid>).
        self._queries = QueryRegistry()
        self._closed = False
        #: commit-time durability.  ``durable_mode`` is ``"wal"`` (append
        #: fsync'd logical deltas to ``<farm>.wal``, checkpoint on
        #: thresholds), ``"full"`` (legacy: republish the whole farm per
        #: commit) or ``None``; ``durable`` keeps the boolean view.
        self.path = Path(path) if path is not None else None
        self.durable_mode = resolve_durable_mode(durable, self.path)
        self.durable = self.durable_mode is not None
        self._wal: Optional[wal_mod.WriteAheadLog] = None
        self.checkpoint_bytes = _resolve_checkpoint_threshold(
            "REPRO_WAL_CHECKPOINT_BYTES", DEFAULT_CHECKPOINT_BYTES
        )
        self.checkpoint_records = _resolve_checkpoint_threshold(
            "REPRO_WAL_CHECKPOINT_RECORDS", DEFAULT_CHECKPOINT_RECORDS
        )
        #: aggregate observability across all sessions.
        self.compile_count = 0
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("database is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every session, the scheduler and the plan cache."""
        if self._closed:
            return
        self._closed = True
        for session in list(self._sessions):
            session._close_session()
        with self._cache_lock:
            self._plan_cache.clear()
        if self._wal is not None:
            self._wal.close()
            self._wal = None
        self.interpreter.close()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # sessions
    # ------------------------------------------------------------------
    def connect(
        self,
        optimize: Optional[bool] = None,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
    ):
        """A new concurrent session against this database.

        Knobs default to the database-wide settings; per-session
        overrides only affect that session's plans and scheduling.
        """
        from repro.engine.connection import Connection

        self._check_open()
        return Connection(
            optimize=self.default_optimize if optimize is None else optimize,
            nr_threads=self._nr_threads if nr_threads is None else nr_threads,
            fragment_rows=(
                self._fragment_rows if fragment_rows is None else fragment_rows
            ),
            database=self,
        )

    def _register_session(self, session) -> None:
        with self._cache_lock:
            self._session_serial += 1
            session._session_id = self._session_serial
        self._sessions.add(session)

    @property
    def session_count(self) -> int:
        """Number of live (not-yet-closed) sessions on this engine."""
        return sum(1 for session in self._sessions if not session._closed)

    # ------------------------------------------------------------------
    # query lifecycle governance
    # ------------------------------------------------------------------
    def register_query(
        self,
        sql: str,
        session_id: int = 0,
        timeout: Optional[float] = None,
        mem_budget_bytes: Optional[int] = None,
    ) -> QueryContext:
        """Enter one top-level statement into the running-query registry."""
        return self._queries.register(sql, session_id, timeout, mem_budget_bytes)

    def finish_query(self, query: QueryContext) -> None:
        """Remove a statement from the registry (always runs, even on abort)."""
        self._queries.finish(query)

    def list_queries(self) -> list[dict]:
        """One dict per running statement: qid, session, sql, status,
        elapsed_ms, rows, bytes (the SQL surface is ``SHOW QUERIES``)."""
        return self._queries.list()

    def kill_query(self, qid: int, reason: str = "") -> None:
        """Cancel the running statement *qid* cooperatively.

        The executing thread observes the token at its next instruction
        boundary and aborts with
        :class:`~repro.errors.QueryCancelledError`; its session rolls
        back any open transaction and stays usable.  Raises
        :class:`ProgrammingError` when *qid* is not running.
        """
        crash_point("govern.kill_requested")
        self._queries.kill(qid, reason)

    def stats(self) -> dict:
        """Engine-level observability as one JSON-able snapshot.

        The network server surfaces this through its STATS message;
        in-process callers can poll it too.  All counters are the
        database-wide aggregates (per-session counters live on each
        :class:`~repro.engine.connection.Connection`).
        """
        self._check_open()
        head = self._head
        with self._cache_lock:
            return {
                "sessions": self.session_count,
                "queries_running": len(self._queries.list()),
                "version": head.version,
                "schema_version": head.schema_version,
                "objects": len(head.catalog.names()),
                "nr_threads": self._nr_threads,
                "compile_count": self.compile_count,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "plan_cache_entries": len(self._plan_cache),
                "plan_cache_capacity": self.statement_cache_size,
                "durable_mode": self.durable_mode,
                "path": str(self.path) if self.path is not None else None,
            }

    # ------------------------------------------------------------------
    # catalog versions
    # ------------------------------------------------------------------
    def _catalog_now(self) -> Catalog:
        return self._head.catalog

    def head(self) -> CatalogVersion:
        """The current committed snapshot (atomic read)."""
        self._check_open()
        return self._head

    @property
    def catalog(self) -> Catalog:
        """The committed head catalog (a consistent snapshot)."""
        return self.head().catalog

    @property
    def version(self) -> int:
        """Monotonic commit counter."""
        return self.head().version

    @property
    def schema_version(self) -> int:
        """Monotonic committed-DDL counter (keys the plan cache)."""
        return self.head().schema_version

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    def begin_transaction(self) -> Transaction:
        """A new transaction on the current head snapshot."""
        self._check_open()
        with self._writer_lock:
            self._txn_serial += 1
            return Transaction(self._head, self._txn_serial)

    def commit_transaction(self, txn: Transaction) -> CatalogVersion:
        """Publish *txn* as the next committed version (atomic).

        First committer wins: if another transaction committed a change
        to any object this one wrote since it began, the commit raises
        :class:`OperationalError` and publishes nothing.  Disjoint
        concurrent commits merge cleanly (snapshot isolation).
        """
        self._check_open()
        with self._writer_lock:
            head = self._head
            if head is not txn.base:
                base = txn.base.catalog
                for name in sorted(txn.writes):
                    if base.entry(name) is not head.catalog.entry(name):
                        raise OperationalError(
                            f"transaction conflict: {name!r} was modified "
                            "by a concurrent commit (first committer wins)"
                        )
            # Assemble the new version from the head plus only the
            # objects this transaction wrote: untouched objects keep
            # their identity, which is what makes the conflict check
            # above (and disjoint-commit merging) work.
            catalog = head.catalog.clone()
            for name in txn.writes:
                catalog.set_entry(name, txn.catalog.entry(name))
            published = CatalogVersion(
                catalog,
                head.version + 1,
                head.schema_version + txn.schema_changes,
            )
            if self.durable_mode == "wal":
                # Write-ahead: the logical delta must be on stable
                # storage *before* the commit is visible or acknowledged.
                changes = wal_mod.extract_changes(txn)
                self._ensure_wal().append_commit(
                    published.version, published.schema_version, changes
                )
            self._head = published
            crash_point("commit.published")
            if self.durable_mode == "full":
                catalog.save(
                    self.path, published.version, published.schema_version
                )
            for name in txn.writes:
                obj = catalog.entry(name)
                if obj is not None:
                    obj._disarm_journal()
            if self.durable_mode == "wal":
                log = self._wal
                if (
                    log.record_count >= self.checkpoint_records
                    or log.size >= self.checkpoint_bytes
                ):
                    self._checkpoint_locked()
            return published

    # ------------------------------------------------------------------
    # optimizer pipelines (interned per knob pair, shared by sessions)
    # ------------------------------------------------------------------
    def pipeline_for(self, nr_threads: int, fragment_rows) -> tuple:
        """The optimizer pipeline for one session's execution knobs.

        Interned so equal knobs yield the *same* tuple — plan-cache
        keys include the pipeline, and identical objects are what lets
        sessions share each other's compiled plans.  Fragmented
        pipelines resolve row counts through the live head view.
        """
        fragmented = fragment_rows is not None and not (
            isinstance(fragment_rows, float) and math.isinf(fragment_rows)
        )
        if fragment_rows is None and nr_threads > 1:
            fragmented = True  # auto mode sizes fragments per thread
        if not fragmented:
            return DEFAULT_PIPELINE
        key = (nr_threads, fragment_rows)
        with self._cache_lock:
            pipeline = self._pipelines.get(key)
            if pipeline is None:
                rows = None if fragment_rows is None else int(fragment_rows)
                pipeline = build_pipeline(
                    self._head_view, rows, nr_threads, fragmented=True
                )
                self._pipelines[key] = pipeline
            return pipeline

    # ------------------------------------------------------------------
    # the shared plan cache
    # ------------------------------------------------------------------
    def lookup_plan(self, key: tuple, session) -> Optional[object]:
        """Cache hit/miss bookkeeping for one lookup by *session*."""
        with self._cache_lock:
            entry = self._plan_cache.get(key)
            if entry is not None:
                self._plan_cache.move_to_end(key)
                session.cache_hits += 1
                self.cache_hits += 1
            else:
                session.cache_misses += 1
                self.cache_misses += 1
            return entry

    def store_plan(self, key: tuple, entry) -> None:
        with self._cache_lock:
            if self.statement_cache_size <= 0:
                return
            self._plan_cache[key] = entry
            self._plan_cache.move_to_end(key)
            while len(self._plan_cache) > self.statement_cache_size:
                self._plan_cache.popitem(last=False)

    def note_compile(self, session) -> None:
        """Count one full front-end compile, race-free."""
        with self._cache_lock:
            session.compile_count += 1
            self.compile_count += 1

    def note_uncached_miss(self, session) -> None:
        """Count a lookup that had to bypass the shared cache."""
        with self._cache_lock:
            session.cache_misses += 1
            self.cache_misses += 1

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def _ensure_wal(self) -> wal_mod.WriteAheadLog:
        """The open WAL, bootstrapping farm + log on first durable commit.

        Called under the writer lock.  A database that was *not* opened
        from its farm (fresh engine handed a path) first publishes a
        full checkpoint of the current head, so WAL replay always has
        the matching base state to build on; any stale log from an
        earlier incarnation is truncated at the same time.
        """
        if self._wal is None:
            head = self._head
            head.catalog.save(self.path, head.version, head.schema_version)
            self._wal = wal_mod.WriteAheadLog(wal_mod.wal_path_for(self.path))
            self._wal.reset()
        return self._wal

    def checkpoint(self) -> None:
        """Fold the write-ahead log into the farm (atomic swap).

        Publishes the committed head as a full farm snapshot and then
        truncates the WAL.  A crash between the two steps is safe:
        replay skips records no younger than the farm's recorded
        version.  Automatic checkpoints run inside the commit path when
        the WAL passes the size/record thresholds
        (``REPRO_WAL_CHECKPOINT_BYTES`` / ``REPRO_WAL_CHECKPOINT_RECORDS``).
        """
        self._check_open()
        if self.path is None:
            raise ProgrammingError("checkpoint needs a database path")
        with self._writer_lock:
            self._checkpoint_locked()

    def _checkpoint_locked(self) -> None:
        head = self._head
        crash_point("checkpoint.before_publish")
        head.catalog.save(self.path, head.version, head.schema_version)
        crash_point("checkpoint.before_reset")
        if self._wal is not None:
            self._wal.reset()

    def save(self, directory: str | Path) -> None:
        """Publish the committed head under *directory* (atomic swap).

        The writer lock is held across the publish so a concurrent
        durable commit never races this save on the same farm's
        staging directories.  Saving onto the database's own farm path
        doubles as a checkpoint: the WAL is truncated once the snapshot
        is on disk.
        """
        self._check_open()
        directory = Path(directory)
        with self._writer_lock:
            head = self._head
            head.catalog.save(directory, head.version, head.schema_version)
            if self._wal is not None and directory == self.path:
                self._wal.reset()

    @classmethod
    def open(
        cls,
        directory: str | Path,
        optimize: bool = True,
        statement_cache_size: int = DEFAULT_STATEMENT_CACHE_SIZE,
        nr_threads: Optional[int] = None,
        fragment_rows: Optional[float] = None,
        durable: bool | str = False,
    ) -> "Database":
        """Open a database farm previously written by :meth:`save`.

        Runs crash recovery: adopts a stranded ``.retired`` farm when a
        publish was interrupted mid-swap, loads the last checkpoint,
        replays any write-ahead-log records younger than it through the
        normal catalog mutation code, and truncates a torn final WAL
        record (an unacknowledged in-flight commit) with a
        :class:`~repro.errors.RecoveryWarning`.  The recovered state is
        therefore exactly the last acknowledged commit (plus at most
        one fully-logged in-flight commit that crashed before its ack).

        ``durable=True`` (or ``"wal"``) keeps subsequent commits
        durable via the WAL; ``durable="full"`` republishes the whole
        farm per commit instead.
        """
        directory = Path(directory)
        recover_farm(directory)
        if not directory.exists():
            raise SciQLError(
                f"no database at {directory}; use connect() and save()"
            )
        catalog = Catalog.load(directory)
        version, schema_version = farm_versions(directory)
        wal_path = wal_mod.wal_path_for(directory)
        records: list = []
        if wal_path.exists():
            records = wal_mod.load_records(wal_path, repair=True)
            for record in records:
                if record["version"] <= version:
                    continue  # already folded into the checkpoint
                wal_mod.apply_record(catalog, record)
                version = record["version"]
                schema_version = record["schema_version"]
        database = cls(
            catalog,
            optimize=optimize,
            statement_cache_size=statement_cache_size,
            nr_threads=nr_threads,
            fragment_rows=fragment_rows,
            path=directory,
            durable=durable,
        )
        database._head = CatalogVersion(catalog, version, schema_version)
        if database.durable_mode == "wal":
            log = wal_mod.WriteAheadLog(wal_path)
            log.open()
            log.record_count = len(records)
            database._wal = log
        return database
