"""The write-ahead log: O(delta) durable commits.

MonetDB's SQL layer persists committed deltas through a write-ahead
log and folds them into the BAT farm at checkpoints; republishing the
whole farm per commit (how ``durable=True`` worked before) costs
O(database) per transaction.  This module reproduces the WAL half:

* :func:`extract_changes` turns a committed transaction into a list of
  *logical* change records — object creations/drops (full snapshots),
  and per-object mutation journals (the ``(method, payload)`` entries
  :class:`~repro.catalog.objects._DeltaJournal` collected, i.e. the
  inputs of ``append_rows``/``replace_values``/... rather than the
  resulting BATs);
* :class:`WriteAheadLog` appends one checksummed, length-prefixed
  record per commit and fsyncs it *before* the commit is acknowledged;
* :func:`load_records` reads a WAL back, truncating a torn final
  record (a crash mid-append) with a :class:`RecoveryWarning`;
* :func:`apply_record` replays one record through the normal catalog
  mutation code, so recovery reproduces the committed state
  byte-identically (the crash-matrix suite asserts this via
  :func:`repro.testing.verify.catalog_digest`).

Record framing — ``[u32 length][u32 crc32(payload)][payload]`` with
``payload = [u32 header length][header JSON][blob bytes...]`` — keeps
the log self-describing: the JSON header holds the change structure
with ``{"__col__": i}``-style placeholders pointing into the raw blob
section (numeric payloads as machine bytes, strings as JSON).
"""

from __future__ import annotations

import json
import os
import struct
import warnings
import zlib
from pathlib import Path
from typing import Optional

import numpy as np

from repro.errors import PersistenceError, RecoveryWarning
from repro.catalog import Catalog
from repro.catalog.objects import Array, ColumnDef, DimensionDef, Table
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.testing.faultpoints import crash_point

#: identifies a WAL file; written once at creation/reset.
_MAGIC = b"SCIQLWAL"

_FRAME = struct.Struct("<II")  # payload length, payload crc32
_U32 = struct.Struct("<I")


def wal_path_for(directory: Path) -> Path:
    """The WAL file that belongs to farm *directory* (a sibling file).

    The WAL lives *next to* the farm, not inside it: checkpoints swap
    the farm directory wholesale via ``publish_farm`` and must never
    take the log with them.
    """
    directory = Path(directory)
    return directory.with_name(directory.name + ".wal")


# ----------------------------------------------------------------------
# value codec: catalog payloads <-> JSON header + blob section
# ----------------------------------------------------------------------
class _BlobWriter:
    """Collects binary payloads; hands out placeholder references."""

    def __init__(self) -> None:
        self.specs: list[dict] = []
        self.chunks: list[bytes] = []

    def _add(self, spec: dict, *chunks: bytes) -> int:
        index = len(self.specs)
        self.specs.append(spec)
        self.chunks.extend(chunks)
        return index

    def add_column(self, column: Column) -> int:
        if column.atom is Atom.STR:
            data = json.dumps(list(column.values), ensure_ascii=False).encode()
            spec = {"t": "str", "n": len(column), "vlen": len(data)}
        else:
            data = column.values.tobytes()
            spec = {
                "t": "col",
                "atom": column.atom.value,
                "dtype": str(column.values.dtype),
                "n": len(column),
                "vlen": len(data),
            }
        chunks = [data]
        spec["mlen"] = 0
        if column.mask is not None:
            mask_data = column.mask.tobytes()
            spec["mlen"] = len(mask_data)
            chunks.append(mask_data)
        return self._add(spec, *chunks)

    def add_array(self, values: np.ndarray) -> int:
        data = values.tobytes()
        return self._add(
            {"t": "arr", "dtype": str(values.dtype), "vlen": len(data)}, data
        )


class _BlobReader:
    """Decodes blob references produced by :class:`_BlobWriter`."""

    def __init__(self, specs: list[dict], data: bytes) -> None:
        self.specs = specs
        self.offsets: list[int] = []
        offset = 0
        for spec in specs:
            self.offsets.append(offset)
            offset += spec["vlen"] + spec.get("mlen", 0)
        if offset != len(data):
            raise PersistenceError(
                f"WAL record blob section is {len(data)} bytes, "
                f"expected {offset}"
            )
        self.data = data

    def column(self, index: int) -> Column:
        spec = self.specs[index]
        offset = self.offsets[index]
        raw = self.data[offset:offset + spec["vlen"]]
        if spec["t"] == "str":
            values = np.array(json.loads(raw.decode()), dtype=object)
            atom = Atom.STR
        else:
            atom = Atom(spec["atom"])
            values = np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).copy()
        mask = None
        if spec.get("mlen"):
            mask_raw = self.data[
                offset + spec["vlen"]:offset + spec["vlen"] + spec["mlen"]
            ]
            mask = np.frombuffer(mask_raw, dtype=np.bool_).copy()
        return Column(atom, values, mask)

    def array(self, index: int) -> np.ndarray:
        spec = self.specs[index]
        offset = self.offsets[index]
        raw = self.data[offset:offset + spec["vlen"]]
        return np.frombuffer(raw, dtype=np.dtype(spec["dtype"])).copy()


def _encode_value(value, blobs: _BlobWriter):
    if isinstance(value, Column):
        return {"__col__": blobs.add_column(value)}
    if isinstance(value, BAT):
        return {"__bat__": blobs.add_column(value.tail), "hseq": value.hseqbase}
    if isinstance(value, np.ndarray):
        return {"__arr__": blobs.add_array(value)}
    if isinstance(value, dict):
        return {key: _encode_value(item, blobs) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_encode_value(item, blobs) for item in value]
    if isinstance(value, np.generic):
        return value.item()
    return value


def _decode_value(value, blobs: _BlobReader):
    if isinstance(value, dict):
        ref = value.get("__col__")
        if isinstance(ref, int):
            return blobs.column(ref)
        ref = value.get("__bat__")
        if isinstance(ref, int):
            return BAT(blobs.column(ref), value.get("hseq", 0))
        ref = value.get("__arr__")
        if isinstance(ref, int):
            return blobs.array(ref)
        return {key: _decode_value(item, blobs) for key, item in value.items()}
    if isinstance(value, list):
        return [_decode_value(item, blobs) for item in value]
    return value


# ----------------------------------------------------------------------
# change extraction (commit time)
# ----------------------------------------------------------------------
def _snapshot_change(op: str, name: str, obj) -> dict:
    """A full-state change record: schema definition plus every BAT."""
    change: dict = {"op": op, "name": name, "kind": obj.kind}
    if isinstance(obj, Table):
        change["columns"] = [
            {
                "name": c.name,
                "atom": c.atom.value,
                "default": c.default,
                "has_default": c.has_default,
            }
            for c in obj.columns
        ]
    else:
        change["dimensions"] = [
            {
                "name": d.name,
                "atom": d.atom.value,
                "start": d.start,
                "step": d.step,
                "stop": d.stop,
            }
            for d in obj.dimensions
        ]
        change["attributes"] = [
            {
                "name": a.name,
                "atom": a.atom.value,
                "default": a.default,
                "has_default": a.has_default,
            }
            for a in obj.attributes
        ]
    change["bats"] = dict(obj.bats)
    return change


def extract_changes(txn) -> list[dict]:
    """The logical deltas of a committed transaction, one dict per object.

    Objects whose mutation journal provably covers every BAT rebinding
    (it was armed by the fork's ``clone()`` of exactly the base-version
    object, and no code rebound ``obj.bats`` behind the journal's back)
    yield O(delta) ``mutate`` records holding the journaled method
    inputs.  Created objects — and any object mutated outside the
    journaled methods, e.g. via the ``connection.catalog`` escape
    hatch — fall back to a full snapshot record.
    """
    base = txn.base.catalog
    changes: list[dict] = []
    for name in sorted(txn.writes):
        before = base.entry(name)
        after = txn.catalog.entry(name)
        if after is None:
            if before is not None:
                changes.append({"op": "drop", "name": name})
            continue
        if after is before:
            continue  # tracked but never actually changed
        if before is None:
            changes.append(_snapshot_change("create", name, after))
            continue
        if (
            after.journal is not None
            and after._journal_base is before
            and after.journal_faithful()
        ):
            if not after.journal:
                continue  # armed clone, no mutations: nothing to log
            changes.append(
                {
                    "op": "mutate",
                    "name": name,
                    "ops": [
                        {"method": method, "payload": payload}
                        for method, payload in after.journal
                    ],
                }
            )
        else:
            changes.append(_snapshot_change("replace", name, after))
    return changes


# ----------------------------------------------------------------------
# record encode/decode
# ----------------------------------------------------------------------
def encode_record(version: int, schema_version: int, changes: list[dict]) -> bytes:
    """One framed commit record, ready to append to the log."""
    blobs = _BlobWriter()
    header = {
        "version": version,
        "schema_version": schema_version,
        "changes": _encode_value(changes, blobs),
        "blobs": blobs.specs,
    }
    header_bytes = json.dumps(header).encode()
    payload = b"".join(
        [_U32.pack(len(header_bytes)), header_bytes, *blobs.chunks]
    )
    return _FRAME.pack(len(payload), zlib.crc32(payload)) + payload


def decode_record(payload: bytes) -> dict:
    """The in-memory form of one record: version counters + changes."""
    (header_len,) = _U32.unpack_from(payload)
    header = json.loads(payload[_U32.size:_U32.size + header_len].decode())
    blobs = _BlobReader(header["blobs"], payload[_U32.size + header_len:])
    return {
        "version": header["version"],
        "schema_version": header["schema_version"],
        "changes": _decode_value(header["changes"], blobs),
    }


def load_records(path: Path, repair: bool = True) -> list[dict]:
    """All complete records of a WAL file, oldest first.

    A torn tail — fewer bytes than the frame announces, or a checksum
    mismatch, both the signature of a crash mid-append — is truncated
    away (when *repair* is set) with a :class:`RecoveryWarning`: the
    torn record was never acknowledged to any client, so dropping it
    loses nothing a caller was promised.
    """
    path = Path(path)
    data = path.read_bytes()
    if not data.startswith(_MAGIC):
        raise PersistenceError(f"{path} is not a write-ahead log")
    records = []
    offset = len(_MAGIC)
    valid_end = offset
    torn = None
    while offset < len(data):
        if offset + _FRAME.size > len(data):
            torn = "truncated frame header"
            break
        length, crc = _FRAME.unpack_from(data, offset)
        payload = data[offset + _FRAME.size:offset + _FRAME.size + length]
        if len(payload) < length:
            torn = "truncated record payload"
            break
        if zlib.crc32(payload) != crc:
            torn = "checksum mismatch"
            break
        records.append(decode_record(payload))
        offset += _FRAME.size + length
        valid_end = offset
    if torn is not None:
        warnings.warn(
            f"write-ahead log {path} ends in a torn record ({torn}, "
            f"{len(data) - valid_end} trailing bytes after "
            f"{len(records)} complete records): an in-flight commit "
            "was interrupted before it was acknowledged; the torn "
            "tail is discarded",
            RecoveryWarning,
            stacklevel=2,
        )
        if repair:
            with open(path, "r+b") as handle:
                handle.truncate(valid_end)
                handle.flush()
                os.fsync(handle.fileno())
    return records


# ----------------------------------------------------------------------
# replay (recovery time)
# ----------------------------------------------------------------------
def _build_object(change: dict):
    """Materialise a snapshot change record as a catalog object."""
    name = change["name"]
    if change["kind"] == "table":
        obj = Table.__new__(Table)
        obj.name = name
        obj.columns = [
            ColumnDef(c["name"], Atom(c["atom"]), c["default"], c["has_default"])
            for c in change["columns"]
        ]
    else:
        obj = Array.__new__(Array)
        obj.name = name
        obj.dimensions = [
            DimensionDef(
                d["name"], Atom(d["atom"]), d["start"], d["step"], d["stop"]
            )
            for d in change["dimensions"]
        ]
        obj.attributes = [
            ColumnDef(a["name"], Atom(a["atom"]), a["default"], a["has_default"])
            for a in change["attributes"]
        ]
    obj.bats = dict(change["bats"])
    return obj


def _replay_mutations(obj, ops: list[dict]) -> None:
    """Re-run journaled mutations through the normal catalog methods."""
    for entry in ops:
        method = entry["method"]
        payload = entry["payload"]
        if method == "append_rows":
            obj.append_rows(payload["columns"])
        elif method == "replace_values":
            obj.replace_values(
                payload["column"], payload["oids"], payload["values"]
            )
        elif method == "delete_rows":
            obj.delete_rows(payload["oids"])
        elif method == "delete_cells":
            obj.delete_cells(payload["oids"])
        elif method == "clear":
            obj.clear()
        elif method == "alter_dimension":
            obj.alter_dimension(
                payload["dimension"],
                payload["start"],
                payload["step"],
                payload["stop"],
            )
        else:
            raise PersistenceError(f"WAL replay: unknown mutation {method!r}")


def apply_record(catalog: Catalog, record: dict) -> None:
    """Apply one decoded commit record to *catalog* in place."""
    for change in record["changes"]:
        op = change["op"]
        name = change["name"]
        if op == "drop":
            catalog.set_entry(name, None)
        elif op in ("create", "replace"):
            catalog.set_entry(name, _build_object(change))
        elif op == "mutate":
            obj = catalog.entry(name)
            if obj is None:
                raise PersistenceError(
                    f"WAL replay: record v{record['version']} mutates "
                    f"unknown object {name!r}"
                )
            _replay_mutations(obj, change["ops"])
        else:
            raise PersistenceError(f"WAL replay: unknown change op {op!r}")


# ----------------------------------------------------------------------
# the log itself
# ----------------------------------------------------------------------
class WriteAheadLog:
    """Append-only commit log with fsync'd, checksummed records.

    ``append_commit`` is called inside the engine's writer lock before
    a commit is acknowledged; once it returns, the record is on stable
    storage and recovery will replay it.  ``reset`` (after a
    checkpoint folded the log into the farm) atomically replaces the
    file with an empty one.
    """

    def __init__(self, path: Path):
        self.path = Path(path)
        self._file = None
        self.record_count = 0

    def open(self) -> None:
        """Open for appending, creating an empty log when missing."""
        if not self.path.exists():
            self._write_empty()
        self._file = open(self.path, "ab")

    def _write_empty(self) -> None:
        staged = self.path.with_name(self.path.name + ".tmp")
        with open(staged, "wb") as handle:
            handle.write(_MAGIC)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, self.path)

    @property
    def size(self) -> int:
        """Current log size in bytes."""
        if self._file is not None:
            return self._file.tell()
        return self.path.stat().st_size if self.path.exists() else 0

    def append_commit(
        self, version: int, schema_version: int, changes: list[dict]
    ) -> None:
        """Durably append one commit record (returns only after fsync)."""
        if self._file is None:
            self.open()
        crash_point("wal.before_append")
        self._file.write(encode_record(version, schema_version, changes))
        self._file.flush()
        crash_point("wal.record_written")
        os.fsync(self._file.fileno())
        crash_point("wal.synced")
        self.record_count += 1

    def reset(self) -> None:
        """Truncate the log to empty (atomically) and keep appending."""
        if self._file is not None:
            self._file.close()
            self._file = None
        self._write_empty()
        self.record_count = 0
        self._file = open(self.path, "ab")

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
