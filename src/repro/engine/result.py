"""Query results.

A :class:`Result` wraps the columns a plan delivered through
``sql.resultSet``.  Array-shaped results (queries with ``[dim]``
projection items) additionally expose a dense grid view via the
table→array coercion rules.  For the DB-API layer a result carries
PEP 249 ``description`` metadata and a columnar :meth:`to_numpy`
export that never materialises Python tuples.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np

from repro.errors import CoercionError, SciQLError
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.catalog.objects import DimensionDef
from repro.core.coercion import infer_dimension_range, table_to_array_columns


def _column_to_numpy(column: Column) -> np.ndarray:
    """One column as an ndarray; NULLs become NaN (numeric) or None."""
    if column.mask is None:
        return column.values.copy()
    if column.atom.value in ("int", "lng", "dbl", "oid"):
        return column.to_numpy()  # float64 with NaN holes
    out = column.values.astype(object)
    out[column.mask] = None
    return out


class Result:
    """The outcome of one executed statement."""

    def __init__(
        self,
        kind: str = "none",
        names: Optional[list[str]] = None,
        columns: Optional[list[Column]] = None,
        meta: Optional[dict] = None,
        affected: int = 0,
        mal_text: str = "",
    ):
        self.kind = kind  # "table" | "array" | "none" (DDL/DML)
        self.names = names or []
        self.columns = columns or []
        self.meta = meta or {}
        self.affected = affected
        self.mal_text = mal_text

    # ------------------------------------------------------------------
    @classmethod
    def from_internal(cls, internal, affected: int, mal_text: str = "") -> "Result":
        columns = [bat.tail for bat in internal.bats]
        return cls(internal.kind, internal.names, columns, internal.meta, affected, mal_text)

    @property
    def is_query(self) -> bool:
        return self.kind in ("table", "array")

    @property
    def description(self) -> Optional[list[tuple]]:
        """PEP 249 column descriptions: 7-tuples, one per result column.

        ``(name, type_code, display_size, internal_size, precision,
        scale, null_ok)`` — the type code is the atom name (``"int"``,
        ``"dbl"``, ...) or None when the column is untyped (bare NULL).
        None for DDL/DML results.
        """
        if not self.is_query:
            return None
        atoms = list(self.meta.get("atoms") or [])
        atoms += [None] * (len(self.names) - len(atoms))
        return [
            (name, atom, None, None, None, None, True)
            for name, atom in zip(self.names, atoms)
        ]

    @property
    def row_count(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def __len__(self) -> int:
        return self.row_count

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self.is_query:
            return f"Result(affected={self.affected})"
        return f"Result({self.kind}, {self.names}, {self.row_count} rows)"

    # ------------------------------------------------------------------
    # row-wise access
    # ------------------------------------------------------------------
    def rows(self) -> list[tuple]:
        """All rows as Python tuples (NULL → None)."""
        lists = [column.to_pylist() for column in self.columns]
        return list(zip(*lists)) if lists else []

    def column(self, name: str) -> list[Any]:
        """One column by name (first match) as Python values."""
        try:
            index = self.names.index(name)
        except ValueError:
            raise SciQLError(f"no result column {name!r}") from None
        return self.columns[index].to_pylist()

    def scalar(self) -> Any:
        """The single value of a 1×1 result."""
        if self.row_count != 1 or len(self.columns) != 1:
            raise SciQLError(
                f"scalar() needs a 1x1 result, got "
                f"{self.row_count}x{len(self.columns)}"
            )
        return self.columns[0].get(0)

    # ------------------------------------------------------------------
    # columnar access
    # ------------------------------------------------------------------
    def to_numpy(self) -> dict[str, np.ndarray]:
        """All columns as ndarrays (name -> array), no tuple detour.

        Numeric columns with NULLs widen to float64 with NaN holes
        (matching :meth:`grid`); string/bool columns with NULLs come
        back as object arrays holding ``None``.  Duplicate column
        names keep the first occurrence.
        """
        out: dict[str, np.ndarray] = {}
        for name, column in zip(self.names, self.columns):
            if name not in out:
                out[name] = _column_to_numpy(column)
        return out

    def iter_batches(self, batch_rows: int) -> Iterator[list[Column]]:
        """Column slices of at most *batch_rows* rows, in row order.

        The network server streams result sets through this: each
        yielded batch is an independent list of column copies bounded
        by the batch size, so the peak per-client transfer buffer is
        O(batch), never O(result).  An empty result with columns
        yields exactly one zero-row batch, so consumers always learn
        the column types.  Results without columns (DDL/DML) yield
        nothing.
        """
        if batch_rows <= 0:
            raise SciQLError(f"batch_rows must be positive, got {batch_rows}")
        if not self.columns:
            return
        total = self.row_count
        if total == 0:
            yield [column.slice(0, 0) for column in self.columns]
            return
        for start in range(0, total, batch_rows):
            yield [
                column.slice(start, start + batch_rows)
                for column in self.columns
            ]

    # ------------------------------------------------------------------
    # array-shaped access
    # ------------------------------------------------------------------
    def dimension_names(self) -> list[str]:
        """Names of dimension-qualified result columns."""
        return list(self.meta.get("dims", []))

    def value_names(self) -> list[str]:
        """Names of non-dimension result columns."""
        dims = set(self.dimension_names())
        return [name for name in self.names if name not in dims]

    def to_array(
        self,
    ) -> tuple[list[DimensionDef], dict[str, np.ndarray]]:
        """Coerce an array-shaped result to (dimensions, name → grid).

        Grids are float64 with NaN holes (the usual numeric view); the
        dimension ranges are inferred per Section 2 when the query came
        from a coerced table, or coincide with the source array ranges.
        """
        if self.kind != "array":
            raise CoercionError("result is not array-shaped; use rows()")
        dim_names = self.dimension_names()
        if not dim_names:
            raise CoercionError("array result without dimension columns")
        name_to_column = {}
        for name, column in zip(self.names, self.columns):
            name_to_column.setdefault(name, column)
        coordinates = [name_to_column[name] for name in dim_names]
        dimensions = [
            infer_dimension_range(c.values.astype(np.int64), name)
            for c, name in zip(coordinates, dim_names)
        ]
        shape = tuple(d.size for d in dimensions)
        values = [
            (name, name_to_column[name]) for name in self.value_names()
        ]
        _, dense = table_to_array_columns(
            coordinates,
            [column for _, column in values],
            dimensions,
            skip_all_null_rows=True,
        )
        grids = {
            name: column.to_numpy().reshape(shape)
            for (name, _), column in zip(values, dense)
        }
        return dimensions, grids

    def grid(self, name: Optional[str] = None) -> np.ndarray:
        """Dense grid of one value column (the only one by default)."""
        _, grids = self.to_array()
        if name is None:
            if len(grids) != 1:
                raise CoercionError(
                    f"result has {len(grids)} value columns; name one of "
                    f"{sorted(grids)}"
                )
            return next(iter(grids.values()))
        try:
            return grids[name]
        except KeyError:
            raise CoercionError(f"no value column {name!r}") from None
