"""PEP 249 cursors: the standard fetch interface over SciQL results.

A :class:`Cursor` wraps :meth:`Connection.execute` with the DB-API 2.0
protocol — ``description``, ``rowcount``, ``fetchone`` / ``fetchmany``
/ ``fetchall``, iteration and context-manager support — while keeping
the engine's :class:`~repro.engine.result.Result` as the backing store
(and as the return value of :meth:`Cursor.execute`, so array-shaped
results keep their ``grid()`` / ``to_array()`` accessors).

Beyond PEP 249, :meth:`Cursor.fetchnumpy` delivers the remaining rows
as columnar NumPy arrays without materialising Python tuples.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Mapping, Optional, Sequence, Union

import numpy as np

from repro.errors import InterfaceError, ProgrammingError
from repro.engine.result import Result

Params = Union[Sequence[Any], Mapping[str, Any], None]


class Cursor:
    """A DB-API 2.0 cursor bound to one :class:`Connection`."""

    def __init__(self, connection):
        self.connection = connection
        #: default number of rows fetchmany() returns.
        self.arraysize = 1
        self._result: Optional[Result] = None
        self._rows: Optional[list[tuple]] = None
        self._index = 0
        self._closed = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Close the cursor; further operations raise InterfaceError."""
        self._closed = True
        self._result = None
        self._rows = None

    def __enter__(self) -> "Cursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    @property
    def closed(self) -> bool:
        return self._closed or self.connection.closed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Params = None) -> Result:
        """Execute one statement, optionally binding parameters.

        Returns the engine :class:`Result` (a DB-API extension; the
        cursor itself is primed for ``fetch*`` either way).
        """
        self._check_open()
        result = self.connection.execute(sql, params)
        self._install(result)
        return result

    def executemany(self, sql: str, seq_of_params: Iterable[Params]) -> Result:
        """Execute the statement once per parameter set.

        A single-row parameterized ``INSERT ... VALUES`` takes the bulk
        ingestion fast path: one columnar append instead of one plan
        execution per row.  ``rowcount`` totals the affected rows.
        """
        self._check_open()
        result = self.connection.executemany(sql, seq_of_params)
        self._install(result)
        return result

    def _install(self, result: Result) -> None:
        self._result = result
        self._rows = None
        self._index = 0

    # ------------------------------------------------------------------
    # PEP 249 attributes
    # ------------------------------------------------------------------
    @property
    def result(self) -> Optional[Result]:
        """The backing Result of the last execute (DB-API extension)."""
        return self._result

    @property
    def description(self) -> Optional[list[tuple]]:
        """PEP 249 column descriptions, or None for non-query statements."""
        self._check_open()
        if self._result is None or not self._result.is_query:
            return None
        return self._result.description

    @property
    def rowcount(self) -> int:
        """Rows in the result set (queries) or affected rows (DML)."""
        self._check_open()
        if self._result is None:
            return -1
        if self._result.is_query:
            return self._result.row_count
        return self._result.affected

    def setinputsizes(self, sizes) -> None:
        """PEP 249 no-op (sizes are never predeclared here)."""
        self._check_open()

    def setoutputsize(self, size, column=None) -> None:
        """PEP 249 no-op (results are materialised columns already)."""
        self._check_open()

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def _fetch_rows(self) -> list[tuple]:
        self._check_open()
        if self._result is None or not self._result.is_query:
            raise ProgrammingError(
                "no result set to fetch from; execute a query first"
            )
        if self._rows is None:
            self._rows = self._result.rows()
        return self._rows

    def fetchone(self) -> Optional[tuple]:
        """The next row as a tuple, or None when exhausted."""
        rows = self._fetch_rows()
        if self._index >= len(rows):
            return None
        row = rows[self._index]
        self._index += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        """The next *size* rows (default: :attr:`arraysize`)."""
        rows = self._fetch_rows()
        if size is None:
            size = self.arraysize
        out = rows[self._index : self._index + size]
        self._index += len(out)
        return out

    def fetchall(self) -> list[tuple]:
        """All remaining rows."""
        rows = self._fetch_rows()
        out = rows[self._index :]
        self._index = len(rows)
        return out

    def fetchnumpy(self) -> dict[str, np.ndarray]:
        """All remaining rows as columnar ndarrays (name -> array).

        Numeric columns with NULLs widen to float64 with NaN holes;
        string/bool columns with NULLs come back as object arrays with
        ``None`` entries.  Skips the Python-tuple detour entirely.
        """
        self._check_open()
        if self._result is None or not self._result.is_query:
            raise ProgrammingError(
                "no result set to fetch from; execute a query first"
            )
        arrays = self._result.to_numpy()
        if self._index:
            arrays = {name: array[self._index :] for name, array in arrays.items()}
        self._index = self._result.row_count
        return arrays

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row
