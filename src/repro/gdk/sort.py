"""Sorting kernels (MAL module ``algebra.sort`` / ``algebra.firstn``).

Sorts return the permutation (*order*) as an oid column so aligned
payload columns can be re-ordered by projection, matching MonetDB's
``algebra.sort`` returning (sorted, order, groups).

NULLs sort first on ascending order (MonetDB's NULLs-are-smallest
convention), last on descending order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column


def sort_order(column: Column, descending: bool = False) -> np.ndarray:
    """Stable permutation that sorts *column* (NULLs first when ascending)."""
    n = len(column)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    mask = column.effective_mask()
    if column.atom is Atom.STR:
        keys = column.values.astype(object)
        null_positions = np.flatnonzero(mask)
        non_null = np.flatnonzero(~mask)
        if descending:
            # Stable descending via ascending codes: equal keys keep
            # their original order, NULLs sort last.
            _, codes = np.unique(keys[non_null], return_inverse=True)
            ordered = non_null[np.argsort(-codes.astype(np.int64), kind="stable")]
            return np.concatenate([ordered, null_positions]).astype(np.int64)
        ordered = non_null[np.argsort(keys[non_null], kind="stable")]
        return np.concatenate([null_positions, ordered]).astype(np.int64)
    values = column.values
    if descending:
        if column.atom is Atom.DBL:
            sort_keys = np.where(mask, -np.inf, values.astype(np.float64))
        else:
            sort_keys = values.astype(np.float64)
            sort_keys = np.where(mask, -np.inf, sort_keys)
        order = np.argsort(-sort_keys, kind="stable")
    else:
        if column.atom is Atom.DBL:
            sort_keys = np.where(mask, -np.inf, values.astype(np.float64))
        else:
            sort_keys = values.astype(np.float64)
            sort_keys = np.where(mask, -np.inf, sort_keys)
        order = np.argsort(sort_keys, kind="stable")
    return order.astype(np.int64)


def sort_order_multi(columns: list[Column], descending: list[bool]) -> np.ndarray:
    """Permutation sorting by several keys (first key is most significant)."""
    if len(columns) != len(descending) or not columns:
        raise GDKError("sort_order_multi needs matching non-empty key lists")
    n = len(columns[0])
    order = np.arange(n, dtype=np.int64)
    # Apply keys from least to most significant; stable sorts compose.
    for column, desc in reversed(list(zip(columns, descending))):
        if len(column) != n:
            raise GDKError("sort keys are not aligned")
        sub = sort_order(column.take(order), descending=desc)
        order = order[sub]
    return order


def is_sorted(column: Column) -> bool:
    """True when the column is ascending (NULLs first)."""
    order = sort_order(column)
    return bool(np.all(order == np.arange(len(column))))
