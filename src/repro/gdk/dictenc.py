"""Dictionary encoding for string columns.

A :class:`DictColumn` stores a string payload as an ``int32`` *codes*
array plus a sorted, duplicate-free *dictionary* of the distinct
values: ``values[i] == dictionary[codes[i]]``.  Because the dictionary
is sorted, code order **is** lexicographic value order — equality,
range and LIKE selections, joins and grouping all operate directly on
the integer codes (see :mod:`repro.gdk.select`, :mod:`repro.gdk.join`,
:mod:`repro.gdk.group`, :mod:`repro.gdk.strings`) and only result
materialisation decodes.

Everything not explicitly overridden falls back to the base
:class:`~repro.gdk.column.Column` implementation through the lazy
``values`` property, so an encoded column is observably byte-identical
to its plain twin by construction — the correctness bar of the
out-of-core storage work.

Encoding happens in two places:

* :func:`maybe_encode_bat` — the in-memory hook of
  ``Table.append_rows``: encodes once a string column reaches
  ``REPRO_DICT_MIN_ROWS`` rows *and* stays under the cardinality bound
  (a cheap prefix sample aborts early on high-cardinality data).  A
  column whose cardinality crosses the bound mid-append decays back to
  a plain payload on the next append.
* :func:`encode_values` — the farm format: ``save_bat`` always
  persists string payloads as codes + dictionary, whatever their
  cardinality (see :mod:`repro.gdk.persist`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import GDKError
from repro.gdk import storage
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column

#: rows sampled for the cardinality early-abort.
_SAMPLE_ROWS = 4096


def _cardinality_bound(n: int) -> int:
    """Maximum dictionary size worth encoding for an *n*-row column."""
    return max(64, n // 4)


class DictColumn(Column):
    """A string column stored as int32 codes into a sorted dictionary."""

    __slots__ = ("codes", "dictionary", "_decoded")

    def __init__(
        self,
        atom: Atom,
        codes: np.ndarray,
        dictionary: np.ndarray,
        mask: np.ndarray | None = None,
    ):
        if atom is not Atom.STR:
            raise GDKError("dictionary encoding only applies to string columns")
        if codes.dtype != np.int32:
            codes = codes.astype(np.int32)
        if mask is not None:
            if mask.shape != codes.shape:
                raise GDKError("null mask shape differs from codes shape")
            if mask.dtype != np.bool_:
                mask = mask.astype(np.bool_)
            if not mask.any():
                mask = None
        self.atom = atom
        self.codes = codes
        self.dictionary = dictionary
        self._decoded = None
        self.mask = mask

    # ``values`` overrides the base class slot with a lazy decode; the
    # result is cached so repeated fallback paths pay the gather once.
    @property
    def values(self) -> np.ndarray:  # type: ignore[override]
        if self._decoded is None:
            self._decoded = self.dictionary[
                np.asarray(self.codes, dtype=np.int64)
            ]
        return self._decoded

    def __len__(self) -> int:
        return len(self.codes)

    def get(self, index: int):
        if index < 0 or index >= len(self):
            raise GDKError(f"column index {index} out of range [0,{len(self)})")
        if self.mask is not None and self.mask[index]:
            return None
        return str(self.dictionary[int(self.codes[index])])

    # ------------------------------------------------------------------
    # structural operations that stay encoded
    # ------------------------------------------------------------------
    def take(self, positions: np.ndarray) -> "Column":
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= len(self)):
            raise GDKError("take: position out of range")
        codes = np.asarray(self.codes)[positions]
        mask = self.mask[positions] if self.mask is not None else None
        return DictColumn(self.atom, codes, self.dictionary, mask)

    def view_slice(self, start: int, stop: int) -> "Column":
        mask = self.mask[start:stop] if self.mask is not None else None
        return DictColumn(self.atom, self.codes[start:stop], self.dictionary, mask)

    def slice(self, start: int, stop: int) -> "Column":
        start = max(0, start)
        stop = min(len(self), stop)
        codes = np.asarray(self.codes[start:stop]).copy()
        mask = self.mask[start:stop] if self.mask is not None else None
        return DictColumn(
            self.atom, codes, self.dictionary, None if mask is None else mask.copy()
        )

    def copy(self) -> "Column":
        return DictColumn(
            self.atom,
            np.asarray(self.codes).copy(),
            self.dictionary,
            None if self.mask is None else self.mask.copy(),
        )

    def concat(self, other: "Column") -> "Column":
        if self.atom is not other.atom:
            raise GDKError(f"concat of {self.atom} and {other.atom}")
        if isinstance(other, DictColumn):
            if other.dictionary is self.dictionary:
                codes = np.concatenate(
                    [np.asarray(self.codes), np.asarray(other.codes)]
                )
            else:
                joint, inverse = np.unique(
                    np.concatenate([self.dictionary, other.dictionary]),
                    return_inverse=True,
                )
                lut = inverse.astype(np.int32)
                left = lut[: len(self.dictionary)][np.asarray(self.codes)]
                right = lut[len(self.dictionary):][np.asarray(other.codes)]
                codes = np.concatenate([left, right])
                return DictColumn(self.atom, codes, joint, self._concat_mask(other))
            return DictColumn(self.atom, codes, self.dictionary, self._concat_mask(other))
        # plain tail appended onto an encoded one: decay to plain (the
        # append hook re-encodes when the result still qualifies).
        return Column(self.atom, self.values, self.mask).concat(other)

    def _concat_mask(self, other: "Column") -> np.ndarray | None:
        if self.mask is None and other.mask is None:
            return None
        return np.concatenate([self.effective_mask(), other.effective_mask()])


# ----------------------------------------------------------------------
# encoding entry points
# ----------------------------------------------------------------------
def encode_values(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """``(dictionary, int32 codes)`` of a string values array."""
    dictionary, codes = np.unique(values.astype(object), return_inverse=True)
    return dictionary, codes.astype(np.int32)


def maybe_encode(column: Column) -> Column:
    """Encode a qualifying plain string column; otherwise pass through."""
    if (
        not storage.dict_enabled()
        or column.atom is not Atom.STR
        or isinstance(column, DictColumn)
    ):
        return column
    n = len(column)
    if n < storage.dict_min_rows():
        return column
    values = column.values
    if n > _SAMPLE_ROWS:
        sample = values[:_SAMPLE_ROWS]
        if len(np.unique(sample.astype(object))) > _cardinality_bound(len(sample)):
            return column
    dictionary, codes = encode_values(values)
    if len(dictionary) > _cardinality_bound(n):
        return column
    return DictColumn(Atom.STR, codes, dictionary, column.mask)


def maybe_encode_bat(bat: BAT) -> BAT:
    """BAT-level wrapper of :func:`maybe_encode` (the append-path hook)."""
    tail = maybe_encode(bat.tail)
    if tail is bat.tail:
        return bat
    return BAT(tail, bat.hseqbase)
