"""Atom types of the GDK kernel.

MonetDB's kernel calls its scalar types *atoms*.  Every BAT tail is a
homogeneous sequence of one atom type.  We reproduce the atoms the SciQL
demo needs:

====  =======================  ==================
atom  Python / numpy carrier   SQL surface types
====  =======================  ==================
oid   ``numpy.int64``          (internal row ids)
bit   ``numpy.bool_``          BOOLEAN
int   ``numpy.int32``          INT, INTEGER
lng   ``numpy.int64``          BIGINT
dbl   ``numpy.float64``        REAL, DOUBLE, FLOAT
str   ``numpy.object_``        VARCHAR, STRING, CHAR
====  =======================  ==================

NULL handling follows the "explicit mask" strategy: a column carries an
optional boolean validity mask instead of in-band sentinel values, which
keeps numpy arithmetic exact for every domain value (MonetDB reserves
``int_nil`` etc.; a mask is the faithful Python equivalent).
"""

from __future__ import annotations

import enum
from typing import Any

import numpy as np

from repro.errors import GDKError, TypeError_


class Atom(enum.Enum):
    """Kernel-level scalar types ("atoms" in MonetDB parlance)."""

    OID = "oid"
    BIT = "bit"
    INT = "int"
    LNG = "lng"
    DBL = "dbl"
    STR = "str"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f":{self.value}"


#: numpy dtype used to store each atom.
NUMPY_DTYPE = {
    Atom.OID: np.dtype(np.int64),
    Atom.BIT: np.dtype(np.bool_),
    Atom.INT: np.dtype(np.int32),
    Atom.LNG: np.dtype(np.int64),
    Atom.DBL: np.dtype(np.float64),
    Atom.STR: np.dtype(object),
}

#: Atoms on which arithmetic (+,-,*,/,%) is defined.
NUMERIC_ATOMS = (Atom.INT, Atom.LNG, Atom.DBL)

#: Widening order used to reconcile operand types (int < lng < dbl).
_NUMERIC_RANK = {Atom.INT: 0, Atom.LNG: 1, Atom.DBL: 2}


def is_numeric(atom: Atom) -> bool:
    """Return True for atoms that participate in arithmetic."""
    return atom in _NUMERIC_RANK


def common_numeric(left: Atom, right: Atom) -> Atom:
    """Return the widest of two numeric atoms (``int`` < ``lng`` < ``dbl``).

    Raises :class:`TypeError_` if either operand is not numeric.
    """
    if not is_numeric(left) or not is_numeric(right):
        raise TypeError_(f"no common numeric type for {left} and {right}")
    return left if _NUMERIC_RANK[left] >= _NUMERIC_RANK[right] else right


def atom_for_python(value: Any) -> Atom:
    """Infer the narrowest atom able to carry a Python scalar."""
    if value is None:
        raise GDKError("cannot infer an atom type from NULL")
    if isinstance(value, (bool, np.bool_)):
        return Atom.BIT
    if isinstance(value, (int, np.integer)):
        iv = int(value)
        if -(2**31) <= iv < 2**31:
            return Atom.INT
        return Atom.LNG
    if isinstance(value, (float, np.floating)):
        return Atom.DBL
    if isinstance(value, str):
        return Atom.STR
    raise GDKError(f"no atom type for Python value {value!r}")


def coerce_scalar(value: Any, atom: Atom) -> Any:
    """Convert a Python scalar to the canonical carrier of *atom*.

    ``None`` passes through unchanged (it denotes NULL at every level).
    """
    if value is None:
        return None
    try:
        if atom is Atom.BIT:
            if isinstance(value, str):
                lowered = value.strip().lower()
                if lowered in ("true", "t", "1"):
                    return True
                if lowered in ("false", "f", "0"):
                    return False
                raise GDKError(f"cannot parse {value!r} as bit")
            return bool(value)
        if atom in (Atom.INT, Atom.LNG, Atom.OID):
            return int(value)
        if atom is Atom.DBL:
            return float(value)
        if atom is Atom.STR:
            return str(value)
    except (ValueError, TypeError) as exc:
        raise GDKError(f"cannot coerce {value!r} to {atom}") from exc
    raise GDKError(f"unknown atom {atom}")  # pragma: no cover


#: SQL surface type name -> atom.
SQL_TYPE_TO_ATOM = {
    "BOOLEAN": Atom.BIT,
    "BOOL": Atom.BIT,
    "TINYINT": Atom.INT,
    "SMALLINT": Atom.INT,
    "INT": Atom.INT,
    "INTEGER": Atom.INT,
    "BIGINT": Atom.LNG,
    "REAL": Atom.DBL,
    "FLOAT": Atom.DBL,
    "DOUBLE": Atom.DBL,
    "DECIMAL": Atom.DBL,
    "NUMERIC": Atom.DBL,
    "VARCHAR": Atom.STR,
    "CHAR": Atom.STR,
    "STRING": Atom.STR,
    "TEXT": Atom.STR,
    "CLOB": Atom.STR,
}


def atom_for_sql_type(name: str) -> Atom:
    """Map an SQL type keyword (case-insensitive) to its atom."""
    try:
        return SQL_TYPE_TO_ATOM[name.upper()]
    except KeyError:
        raise TypeError_(f"unsupported SQL type {name!r}") from None


#: sentinel standing in for NaN in loop-based (reference) kernel keys.
NAN_KEY = object()


def canon_key(value: Any) -> Any:
    """Join/group key canonicalization: NaN is one equal-to-itself value.

    The vectorized kernels get this from ``np.unique``/``searchsorted``
    (all NaNs land in one equivalence class); reference implementations
    route dict/set keys through here to match.
    """
    if isinstance(value, float) and value != value:
        return NAN_KEY
    return value
