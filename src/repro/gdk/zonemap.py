"""Zone maps: per-zone min/max/null statistics for fragment pruning.

A :class:`ZoneMap` summarises a column in fixed-size *zones* of
``REPRO_ZONE_ROWS`` rows (default 4096): per zone the minimum and
maximum over the usable (non-NULL, non-NaN) values, the NULL count and
the NaN count.  Selections consult the zones overlapping a fragment's
row window and can often answer for the whole fragment without
touching the payload:

* ``"none"`` — no row of the fragment can satisfy the predicate; the
  selection returns the empty candidate list;
* ``"all"`` — every row satisfies it; the selection returns the full
  (candidate-restricted) oid range;
* ``None`` — the zones are inconclusive; scan normally.

Zones of a *fragment* come from its source BAT: ``mat.partition``
records ``(source, start)`` on the fragment (see
:func:`repro.gdk.bat.partition`), so one zone map built — or loaded
from the farm descriptor — on the source serves every fragment and
every fragment count.  Verdicts over a window are conservative: a zone
partially overlapping the window contributes rows outside it, which
can only weaken a verdict into ``None``, never flip one.

The verdict logic mirrors the exact NULL/NaN semantics of
:mod:`repro.gdk.select`: NULL rows never match any predicate (the mask
is applied last), NaN never satisfies a comparison, and therefore NaN
rows *do* match an ``anti`` range (and ``!=``) whenever at least one
bound is present — the per-zone NaN counters exist precisely so the
anti verdicts stay byte-identical to a real scan.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.gdk import storage


def _sentinels(dtype: np.dtype) -> tuple[Any, Any]:
    """(low, high) sentinels for empty-zone min/max slots."""
    if dtype.kind == "f":
        return -np.inf, np.inf
    info = np.iinfo(dtype)
    return info.min, info.max


class ZoneMap:
    """Per-zone statistics of one numeric (or dictionary-code) column."""

    __slots__ = ("zone_rows", "count", "mins", "maxs", "nulls", "nnan")

    def __init__(self, zone_rows, count, mins, maxs, nulls, nnan):
        self.zone_rows = int(zone_rows)
        self.count = int(count)
        self.mins = mins
        self.maxs = maxs
        self.nulls = nulls
        self.nnan = nnan

    # ------------------------------------------------------------------
    # construction / serialization
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        values: np.ndarray,
        mask: Optional[np.ndarray] = None,
        zone_rows: Optional[int] = None,
    ) -> Optional["ZoneMap"]:
        """Zone statistics for *values*; ``None`` for object payloads."""
        if values.dtype == object:
            return None
        zr = zone_rows if zone_rows else storage.zone_rows()
        n = len(values)
        nzones = (n + zr - 1) // zr
        empty = np.empty(0, dtype=np.int64)
        if n == 0:
            return cls(zr, 0, empty, empty.copy(), empty.copy(), empty.copy())
        vals = values.astype(np.int8) if values.dtype.kind == "b" else values
        starts = np.arange(nzones, dtype=np.int64) * zr
        if vals.dtype.kind == "f":
            nan = np.isnan(vals)
            usable = ~nan if mask is None else ~nan & ~mask
            nan_valid = nan if mask is None else nan & ~mask
            nnan = np.add.reduceat(nan_valid.astype(np.int64), starts)
        else:
            usable = None if mask is None else ~mask
            nnan = np.zeros(nzones, dtype=np.int64)
        if mask is None:
            nulls = np.zeros(nzones, dtype=np.int64)
        else:
            nulls = np.add.reduceat(mask.astype(np.int64), starts)
        if usable is None or bool(usable.all()):
            mins = np.minimum.reduceat(vals, starts)
            maxs = np.maximum.reduceat(vals, starts)
        else:
            lo_sent, hi_sent = _sentinels(vals.dtype)
            mins = np.minimum.reduceat(np.where(usable, vals, hi_sent), starts)
            maxs = np.maximum.reduceat(np.where(usable, vals, lo_sent), starts)
        return cls(zr, n, mins, maxs, nulls, nnan)

    def to_json(self) -> dict:
        """JSON-safe payload for the BAT descriptor (exact for int64)."""
        return {
            "zone_rows": self.zone_rows,
            "count": self.count,
            "dtype": self.mins.dtype.str,
            "mins": self.mins.tolist(),
            "maxs": self.maxs.tolist(),
            "nulls": self.nulls.tolist(),
            "nnan": self.nnan.tolist(),
        }

    @classmethod
    def from_json(cls, payload: dict) -> "ZoneMap":
        dtype = np.dtype(payload["dtype"])
        return cls(
            payload["zone_rows"],
            payload["count"],
            np.array(payload["mins"], dtype=dtype),
            np.array(payload["maxs"], dtype=dtype),
            np.array(payload["nulls"], dtype=np.int64),
            np.array(payload["nnan"], dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    def _span(self, start: int, stop: int):
        """Per-zone stat slices + row counts for the window [start, stop)."""
        zr = self.zone_rows
        nzones = len(self.mins)
        zlo = max(0, start) // zr
        zhi = min(nzones, (stop + zr - 1) // zr)
        if zhi <= zlo:
            return None
        rows = np.full(zhi - zlo, zr, dtype=np.int64)
        if zhi == nzones:
            rows[-1] = self.count - (nzones - 1) * zr
        return (
            self.mins[zlo:zhi],
            self.maxs[zlo:zhi],
            self.nulls[zlo:zhi],
            self.nnan[zlo:zhi],
            rows,
        )

    def verdict_interval(
        self,
        start: int,
        stop: int,
        lo: Any,
        hi: Any,
        lo_inclusive: bool,
        hi_inclusive: bool,
        anti: bool,
    ) -> Optional[str]:
        """``"none"`` / ``"all"`` / ``None`` for an interval predicate.

        Matches :func:`repro.gdk.select.rangeselect` (and through the
        ``[v, v]`` / one-sided mappings, :func:`thetaselect` and
        :func:`select_true`) exactly, including the NaN-matches-anti
        rule.
        """
        if stop <= start:
            return "none"
        span = self._span(start, stop)
        if span is None:
            return "none"
        mins, maxs, nulls, nnan, rows = span
        usable = rows - nulls - nnan
        if anti and lo is None and hi is None:
            # keep starts all-ones and is inverted wholesale: nothing
            # (not even NaN) survives an unbounded anti range.
            return "none"
        # hits: the zone's [min, max] overlaps the interval (so a match
        # is possible); contained: [min, max] lies fully inside it.
        hits = usable > 0
        contained = usable > 0
        if lo is not None:
            hits &= (maxs >= lo) if lo_inclusive else (maxs > lo)
            contained &= (mins >= lo) if lo_inclusive else (mins > lo)
        if hi is not None:
            hits &= (mins <= hi) if hi_inclusive else (mins < hi)
            contained &= (maxs <= hi) if hi_inclusive else (maxs < hi)
        if not anti:
            # NULL and NaN rows never match a normal range, so only the
            # usable-value overlap matters for the empty verdict.
            if not hits.any():
                return "none"
            if not nulls.sum() and not nnan.sum() and bool(contained.all()):
                return "all"
            return None
        # anti: usable rows match when outside the interval; NaN rows
        # always match (their comparisons are False before inversion).
        if not nnan.sum() and bool(np.all((usable == 0) | contained)):
            return "none"
        if not nulls.sum() and bool(np.all((usable == 0) | ~hits)):
            return "all"
        return None

    def verdict_theta(self, start: int, stop: int, value: Any, op: str) -> Optional[str]:
        """Interval mapping of one theta comparison."""
        if op == "==":
            return self.verdict_interval(start, stop, value, value, True, True, False)
        if op == "!=":
            return self.verdict_interval(start, stop, value, value, True, True, True)
        if op == "<":
            return self.verdict_interval(start, stop, None, value, True, False, False)
        if op == "<=":
            return self.verdict_interval(start, stop, None, value, True, True, False)
        if op == ">":
            return self.verdict_interval(start, stop, value, None, False, True, False)
        if op == ">=":
            return self.verdict_interval(start, stop, value, None, True, True, False)
        return None

    def verdict_null(self, start: int, stop: int, want_null: bool) -> Optional[str]:
        """Verdict for ``isnilselect`` from the per-zone NULL counters."""
        if stop <= start:
            return "none"
        span = self._span(start, stop)
        if span is None:
            return "none"
        _, _, nulls, _, rows = span
        total = int(nulls.sum())
        if want_null:
            if total == 0:
                return "none"
            if bool(np.all(nulls == rows)):
                return "all"
        else:
            if bool(np.all(nulls == rows)):
                return "none"
            if total == 0:
                return "all"
        return None

    def verdict_in(self, start: int, stop: int, values: list) -> Optional[str]:
        """``"none"`` when no candidate value can occur in the window."""
        if stop <= start:
            return "none"
        span = self._span(start, stop)
        if span is None:
            return "none"
        mins, maxs, nulls, nnan, rows = span
        usable = rows - nulls - nnan
        live = usable > 0
        if not live.any():
            return "none"
        lo_live = mins[live]
        hi_live = maxs[live]
        for value in values:
            if bool(np.any((lo_live <= value) & (value <= hi_live))):
                return None
        return "none"


def ensure(b) -> Optional[ZoneMap]:
    """The (lazily built, cached) zone map of a source BAT.

    Builds over the dictionary codes for dictionary-encoded tails (the
    dictionary is sorted, so code order is value order) and over the
    raw values otherwise; plain string tails have no zones.  The cache
    lives on the BAT: appends and updates rebind a fresh BAT, so a
    cached map can never go stale.  Racing builders compute identical
    maps, so the unsynchronised cache write is benign.
    """
    cached = b._zones
    if cached is not None:
        return cached if isinstance(cached, ZoneMap) else None
    tail = b.tail
    codes = getattr(tail, "codes", None)
    source = codes if codes is not None else tail.values
    zm = None if source.dtype == object else ZoneMap.build(source, tail.mask)
    b._zones = zm if zm is not None else False
    return zm
