"""Element-wise calculator kernels (MAL modules ``calc``/``batcalc``).

Every operation accepts columns and/or Python scalars (scalars are
broadcast), propagates NULLs, and returns a fresh column.  Semantics
follow MonetDB/SQL where it matters for the demo queries:

* arithmetic on two integers stays integral; any double operand widens
  the result to double;
* integer division truncates toward zero (C semantics), and ``MOD``
  takes the sign of the dividend;
* division or modulo by zero yields NULL for the affected entries (the
  guarded-update evaluation of Section 2 evaluates *all* branches of a
  CASE, so entries that a guard excludes must not abort the query);
* comparisons yield ``bit`` with NULL when either side is NULL;
* AND/OR use SQL three-valued logic.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import NUMPY_DTYPE, Atom, atom_for_python, coerce_scalar, common_numeric
from repro.gdk.column import Column

ARITH_OPS = ("+", "-", "*", "/", "%")
COMPARE_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _as_column(operand: Any, length: int, atom_hint: Atom | None = None) -> Column:
    """Broadcast a scalar to a column of *length*; pass columns through."""
    if isinstance(operand, Column):
        if len(operand) != length:
            raise GDKError(f"operand length {len(operand)} != {length}")
        return operand
    if operand is None:
        return Column.nulls(atom_hint or Atom.INT, length)
    atom = atom_hint or atom_for_python(operand)
    return Column.constant(atom, coerce_scalar(operand, atom), length)


def _operand_length(left: Any, right: Any) -> int:
    for operand in (left, right):
        if isinstance(operand, Column):
            return len(operand)
    raise GDKError("at least one operand must be a column")


def _combined_mask(*columns: Column) -> np.ndarray | None:
    mask: np.ndarray | None = None
    for column in columns:
        if column.mask is not None:
            mask = column.mask.copy() if mask is None else (mask | column.mask)
    return mask


def arithmetic(op: str, left: Any, right: Any) -> Column:
    """Binary arithmetic with numeric widening and NULL propagation."""
    if op not in ARITH_OPS:
        raise GDKError(f"unknown arithmetic operator {op!r}")
    length = _operand_length(left, right)
    lcol = _as_column(left, length)
    rcol = _as_column(right, length)
    out_atom = common_numeric(lcol.atom, rcol.atom)
    mask = _combined_mask(lcol, rcol)

    if op == "/" and out_atom is not Atom.DBL:
        return _int_div(lcol, rcol, out_atom, mask)
    if op == "%":
        return _int_mod(lcol, rcol, out_atom, mask)

    lvals = lcol.values.astype(np.float64)
    rvals = rcol.values.astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        if op == "+":
            result = lvals + rvals
        elif op == "-":
            result = lvals - rvals
        elif op == "*":
            result = lvals * rvals
        else:  # "/" with a double operand
            result = lvals / rvals
            zero = rvals == 0
            if zero.any():
                mask = zero if mask is None else (mask | zero)
            out_atom = Atom.DBL
    bad = ~np.isfinite(result)
    if bad.any():
        mask = bad if mask is None else (mask | bad)
        result = np.where(bad, 0.0, result)
    if out_atom is Atom.DBL:
        return Column(Atom.DBL, result, mask)
    return Column(out_atom, np.round(result).astype(NUMPY_DTYPE[out_atom]), mask)


def _int_div(lcol: Column, rcol: Column, out_atom: Atom, mask: np.ndarray | None) -> Column:
    lvals = lcol.values.astype(np.int64)
    rvals = rcol.values.astype(np.int64)
    zero = rvals == 0
    safe = np.where(zero, 1, rvals)
    # C-style truncation toward zero.
    quotient = np.abs(lvals) // np.abs(safe)
    quotient = np.where((lvals < 0) ^ (safe < 0), -quotient, quotient)
    if zero.any():
        mask = zero if mask is None else (mask | zero)
    return Column(out_atom, quotient.astype(NUMPY_DTYPE[out_atom]), mask)


def _int_mod(lcol: Column, rcol: Column, out_atom: Atom, mask: np.ndarray | None) -> Column:
    if out_atom is Atom.DBL:
        lvals = lcol.values.astype(np.float64)
        rvals = rcol.values.astype(np.float64)
        zero = rvals == 0
        safe = np.where(zero, 1.0, rvals)
        result = np.fmod(lvals, safe)
        if zero.any():
            mask = zero if mask is None else (mask | zero)
        return Column(Atom.DBL, result, mask)
    lvals = lcol.values.astype(np.int64)
    rvals = rcol.values.astype(np.int64)
    zero = rvals == 0
    safe = np.where(zero, 1, rvals)
    quotient = np.abs(lvals) // np.abs(safe)
    quotient = np.where((lvals < 0) ^ (safe < 0), -quotient, quotient)
    remainder = lvals - quotient * safe
    if zero.any():
        mask = zero if mask is None else (mask | zero)
    return Column(out_atom, remainder.astype(NUMPY_DTYPE[out_atom]), mask)


def negate(operand: Column) -> Column:
    """Unary minus."""
    if operand.atom is Atom.DBL:
        return Column(Atom.DBL, -operand.values, operand.mask)
    if operand.atom in (Atom.INT, Atom.LNG):
        return Column(operand.atom, -operand.values, operand.mask)
    raise GDKError(f"cannot negate {operand.atom}")


def absolute(operand: Column) -> Column:
    """ABS()."""
    if operand.atom in (Atom.INT, Atom.LNG, Atom.DBL):
        return Column(operand.atom, np.abs(operand.values), operand.mask)
    raise GDKError(f"no abs for {operand.atom}")


#: comparison with swapped operand order (a < b  ==  b > a).
_SWAPPED_COMPARE = {
    "==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
}


def _compare_column_scalar(op: str, column: Column, scalar: Any) -> Column:
    """Column-vs-scalar comparison via broadcasting (no materialisation)."""
    if scalar is None:
        return Column.nulls(Atom.BIT, len(column))
    lvals: Any = column.values
    if column.atom is Atom.STR:
        value: Any = coerce_scalar(scalar, Atom.STR)
        lvals = lvals.astype(object)
    elif (
        column.atom in (Atom.INT, Atom.LNG, Atom.DBL, Atom.OID)
        and isinstance(scalar, (int, float, np.integer, np.floating))
        and not isinstance(scalar, (bool, np.bool_))
    ):
        # Numeric vs numeric: let numpy widen instead of truncating the
        # scalar to the column atom (1.5 must stay 1.5 against an INT
        # column, so v < 1.5 keeps v = 1).
        value = scalar.item() if isinstance(scalar, np.generic) else scalar
    else:
        value = coerce_scalar(scalar, column.atom)
    if op == "==":
        result = lvals == value
    elif op == "!=":
        result = lvals != value
    elif op == "<":
        result = lvals < value
    elif op == "<=":
        result = lvals <= value
    elif op == ">":
        result = lvals > value
    else:
        result = lvals >= value
    mask = None if column.mask is None else column.mask.copy()
    return Column(Atom.BIT, np.asarray(result, dtype=np.bool_), mask)


def compare(op: str, left: Any, right: Any) -> Column:
    """Comparison producing a bit column (NULL when either side is NULL)."""
    if op not in COMPARE_OPS:
        raise GDKError(f"unknown comparison {op!r}")
    # Scalar fast path: broadcast instead of building a constant column
    # (the hot case for parameterized point selects: col = ?).
    if isinstance(left, Column) and not isinstance(right, Column):
        return _compare_column_scalar(op, left, right)
    if isinstance(right, Column) and not isinstance(left, Column):
        return _compare_column_scalar(_SWAPPED_COMPARE[op], right, left)
    length = _operand_length(left, right)
    atom_hint = None
    for operand in (left, right):
        if isinstance(operand, Column):
            atom_hint = operand.atom
            break
    lcol = _as_column(left, length, atom_hint)
    rcol = _as_column(right, length, atom_hint)
    mask = _combined_mask(lcol, rcol)
    lvals, rvals = lcol.values, rcol.values
    if lcol.atom is Atom.STR or rcol.atom is Atom.STR:
        lvals = lvals.astype(object)
        rvals = rvals.astype(object)
    if op == "==":
        result = lvals == rvals
    elif op == "!=":
        result = lvals != rvals
    elif op == "<":
        result = lvals < rvals
    elif op == "<=":
        result = lvals <= rvals
    elif op == ">":
        result = lvals > rvals
    else:
        result = lvals >= rvals
    return Column(Atom.BIT, np.asarray(result, dtype=np.bool_), mask)


def logical_and(left: Any, right: Any) -> Column:
    """SQL three-valued AND."""
    length = _operand_length(left, right)
    lcol = _as_column(left, length, Atom.BIT)
    rcol = _as_column(right, length, Atom.BIT)
    lvals, lnull = lcol.values.astype(np.bool_), lcol.effective_mask()
    rvals, rnull = rcol.values.astype(np.bool_), rcol.effective_mask()
    # false AND anything = false; null only when neither side is false.
    false_l = ~lvals & ~lnull
    false_r = ~rvals & ~rnull
    result = lvals & rvals
    nulls = (lnull | rnull) & ~false_l & ~false_r
    return Column(Atom.BIT, result & ~nulls, nulls if nulls.any() else None)


def logical_or(left: Any, right: Any) -> Column:
    """SQL three-valued OR."""
    length = _operand_length(left, right)
    lcol = _as_column(left, length, Atom.BIT)
    rcol = _as_column(right, length, Atom.BIT)
    lvals, lnull = lcol.values.astype(np.bool_), lcol.effective_mask()
    rvals, rnull = rcol.values.astype(np.bool_), rcol.effective_mask()
    true_l = lvals & ~lnull
    true_r = rvals & ~rnull
    result = (lvals & ~lnull) | (rvals & ~rnull)
    nulls = (lnull | rnull) & ~true_l & ~true_r
    return Column(Atom.BIT, result | np.zeros_like(result), nulls if nulls.any() else None)


def logical_not(operand: Column) -> Column:
    """SQL NOT (NULL stays NULL)."""
    if operand.atom is not Atom.BIT:
        raise GDKError("NOT needs a bit column")
    return Column(Atom.BIT, ~operand.values.astype(np.bool_), operand.mask)


def isnull(operand: Column) -> Column:
    """IS NULL as a (never-null) bit column."""
    return Column(Atom.BIT, operand.effective_mask().copy())


def ifthenelse(condition: Column, then_value: Any, else_value: Any) -> Column:
    """Element-wise CASE: NULL/false conditions take the else branch...

    ...except that a NULL condition yields the *else* value, matching
    SQL's ``CASE WHEN cond``: an unknown condition does not fire.
    """
    if condition.atom is not Atom.BIT:
        raise GDKError("ifthenelse needs a bit condition")
    length = len(condition)
    atom_hint = None
    for operand in (then_value, else_value):
        if isinstance(operand, Column):
            atom_hint = operand.atom
            break
        if operand is not None and atom_hint is None:
            atom_hint = atom_for_python(operand)
    tcol = _as_column(then_value, length, atom_hint)
    ecol = _as_column(else_value, length, atom_hint)
    if tcol.atom is not ecol.atom:
        widened = common_numeric(tcol.atom, ecol.atom)
        tcol = tcol.cast(widened)
        ecol = ecol.cast(widened)
    fire = condition.values.astype(np.bool_) & condition.validity()
    values = np.where(fire, tcol.values, ecol.values)
    if tcol.atom is Atom.STR:
        values = values.astype(object)
    mask = np.where(fire, tcol.effective_mask(), ecol.effective_mask())
    return Column(tcol.atom, values, mask if mask.any() else None)


def concat_str(left: Any, right: Any) -> Column:
    """String concatenation (``||``)."""
    length = _operand_length(left, right)
    lcol = _as_column(left, length, Atom.STR).cast(Atom.STR)
    rcol = _as_column(right, length, Atom.STR).cast(Atom.STR)
    mask = _combined_mask(lcol, rcol)
    values = np.array(
        [str(a) + str(b) for a, b in zip(lcol.values, rcol.values)], dtype=object
    )
    return Column(Atom.STR, values, mask)


def apply_unary_math(name: str, operand: Column) -> Column:
    """Math functions used by the imaging demo (sqrt, floor, ceil, ...)."""
    functions: dict[str, Callable[[np.ndarray], np.ndarray]] = {
        "sqrt": np.sqrt,
        "floor": np.floor,
        "ceil": np.ceil,
        "ceiling": np.ceil,
        "round": np.round,
        "exp": np.exp,
        "log": np.log,
        "ln": np.log,
        "log10": np.log10,
        "sin": np.sin,
        "cos": np.cos,
        "tan": np.tan,
    }
    try:
        fn = functions[name.lower()]
    except KeyError:
        raise GDKError(f"unknown math function {name!r}") from None
    values = operand.values.astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = fn(values)
    bad = ~np.isfinite(result)
    mask = operand.mask
    if bad.any():
        mask = bad if mask is None else (mask | bad)
        result = np.where(bad, 0.0, result)
    if name.lower() in ("floor", "ceil", "ceiling", "round") and operand.atom in (
        Atom.INT,
        Atom.LNG,
    ):
        return Column(operand.atom, result.astype(NUMPY_DTYPE[operand.atom]), mask)
    return Column(Atom.DBL, result, mask)
