"""Selection operators of the kernel.

All selections produce *candidate lists*: BATs with oid tails holding
the head-oids of qualifying BUNs in ascending order — exactly how
MonetDB's ``algebra.select`` family communicates sub-sets between
operators without copying payloads.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom, coerce_scalar
from repro.gdk.bat import BAT
from repro.gdk.column import Column

#: comparison operators accepted by :func:`thetaselect`.
THETA_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _candidate_positions(b: BAT, candidates: BAT | None) -> tuple[np.ndarray, bool]:
    """Positions (0-based into *b*) restricted by an optional candidate list.

    Also reports whether the positions are known ascending — candidate
    lists are sorted by contract, so :func:`_result` can usually skip
    re-sorting its output.
    """
    if candidates is None:
        return np.arange(len(b), dtype=np.int64), True
    if candidates.atom is not Atom.OID:
        raise GDKError("candidate list must have oid tail")
    positions = candidates.tail.values - b.hseqbase
    if len(positions) and (positions.min() < 0 or positions.max() >= len(b)):
        raise GDKError("candidate oid outside BAT head range")
    is_sorted = bool(np.all(positions[1:] >= positions[:-1]))
    return positions, is_sorted


def _result(b: BAT, positions: np.ndarray, keep: np.ndarray, is_sorted: bool = False) -> BAT:
    oids = positions[keep] + b.hseqbase
    if not is_sorted:
        oids = np.sort(oids)
    return BAT.from_oids(oids)


def select_true(b: BAT, candidates: BAT | None = None) -> BAT:
    """Oids where a bit column is TRUE (NULL counts as not-true)."""
    if b.atom is not Atom.BIT:
        raise GDKError("select_true needs a bit BAT")
    positions, presorted = _candidate_positions(b, candidates)
    values = b.tail.values[positions]
    keep = values.astype(np.bool_)
    if b.tail.mask is not None:
        keep &= ~b.tail.mask[positions]
    return _result(b, positions, keep, presorted)


def thetaselect(b: BAT, value: Any, op: str, candidates: BAT | None = None) -> BAT:
    """Oids whose tail satisfies ``tail <op> value``.

    NULL tails never qualify; a NULL *value* yields the empty candidate
    list (SQL three-valued logic collapses to false under selection).
    """
    if op not in THETA_OPS:
        raise GDKError(f"unknown theta operator {op!r}")
    positions, presorted = _candidate_positions(b, candidates)
    if value is None:
        return BAT.empty(Atom.OID)
    coerced = coerce_scalar(value, b.atom)
    values = b.tail.values[positions]
    if op == "==":
        keep = values == coerced
    elif op == "!=":
        keep = values != coerced
    elif op == "<":
        keep = values < coerced
    elif op == "<=":
        keep = values <= coerced
    elif op == ">":
        keep = values > coerced
    else:
        keep = values >= coerced
    keep = np.asarray(keep, dtype=np.bool_)
    if b.tail.mask is not None:
        keep &= ~b.tail.mask[positions]
    return _result(b, positions, keep, presorted)


def rangeselect(
    b: BAT,
    low: Any,
    high: Any,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
    anti: bool = False,
    candidates: BAT | None = None,
) -> BAT:
    """Oids with tail in the (optionally open) interval [low, high].

    ``None`` bounds are unbounded.  With ``anti=True`` the complement is
    returned (still excluding NULL tails).
    """
    positions, presorted = _candidate_positions(b, candidates)
    values = b.tail.values[positions]
    keep = np.ones(len(positions), dtype=np.bool_)
    if low is not None:
        lo = coerce_scalar(low, b.atom)
        keep &= (values >= lo) if low_inclusive else (values > lo)
    if high is not None:
        hi = coerce_scalar(high, b.atom)
        keep &= (values <= hi) if high_inclusive else (values < hi)
    if anti:
        keep = ~keep
    if b.tail.mask is not None:
        keep &= ~b.tail.mask[positions]
    return _result(b, positions, keep, presorted)


def isnull_select(b: BAT, want_null: bool = True, candidates: BAT | None = None) -> BAT:
    """Oids whose tail is NULL (or NOT NULL with ``want_null=False``)."""
    positions, presorted = _candidate_positions(b, candidates)
    mask = b.tail.effective_mask()[positions]
    keep = mask if want_null else ~mask
    return _result(b, positions, keep, presorted)


def in_select(b: BAT, values: list[Any], candidates: BAT | None = None) -> BAT:
    """Oids whose tail equals any of *values* (NULL members ignored)."""
    positions, presorted = _candidate_positions(b, candidates)
    concrete = [coerce_scalar(v, b.atom) for v in values if v is not None]
    if not concrete:
        return BAT.empty(Atom.OID)
    tail = b.tail.values[positions]
    if b.atom is Atom.STR:
        keep = np.isin(tail.astype(object), np.array(concrete, dtype=object))
    else:
        keep = np.isin(tail, np.array(concrete))
    keep = np.asarray(keep, dtype=np.bool_)
    if b.tail.mask is not None:
        keep &= ~b.tail.mask[positions]
    return _result(b, positions, keep, presorted)


def intersect_candidates(a: BAT, b: BAT) -> BAT:
    """Intersection of two sorted candidate lists."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate intersection needs oid tails")
    common = np.intersect1d(a.tail.values, b.tail.values)
    return BAT.from_oids(common)


def union_candidates(a: BAT, b: BAT) -> BAT:
    """Union of two sorted candidate lists."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate union needs oid tails")
    merged = np.union1d(a.tail.values, b.tail.values)
    return BAT.from_oids(merged)


def difference_candidates(a: BAT, b: BAT) -> BAT:
    """Candidates of *a* not present in *b*."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate difference needs oid tails")
    out = np.setdiff1d(a.tail.values, b.tail.values)
    return BAT.from_oids(out)


def firstn(candidates: BAT, n: int) -> BAT:
    """First *n* oids of a candidate list (LIMIT support)."""
    if n < 0:
        raise GDKError("firstn needs n >= 0")
    return BAT.from_oids(candidates.tail.values[:n])


def boolean_column_from_candidates(length: int, hseqbase: int, candidates: BAT) -> Column:
    """Densify a candidate list back into a bit column of *length*."""
    out = np.zeros(length, dtype=np.bool_)
    positions = candidates.tail.values - hseqbase
    if len(positions) and (positions.min() < 0 or positions.max() >= length):
        raise GDKError("candidate oid outside target range")
    out[positions] = True
    return Column(Atom.BIT, out)
