"""Selection operators of the kernel.

All selections produce *candidate lists*: BATs with oid tails holding
the head-oids of qualifying BUNs in ascending order — exactly how
MonetDB's ``algebra.select`` family communicates sub-sets between
operators without copying payloads.

Two storage-engine integrations live here:

* **Zone-map pruning** — with ``prune=True`` (the ``algebra.*zm``
  twins emitted by the zone-map optimizer pass) a selection first asks
  the input's zone map for a whole-fragment verdict: provably-empty
  fragments return the empty candidate list and provably-full ones
  return the complete (candidate-restricted) oid range, in both cases
  without touching the payload.  Pruned fragments are counted in
  :func:`repro.gdk.storage.note_pruned`.
* **Dictionary codes** — selections over a
  :class:`~repro.gdk.dictenc.DictColumn` translate the predicate into
  code space (the dictionary is sorted, so one ``searchsorted`` per
  bound) and compare the int32 codes; the string payload is never
  decoded.

Scans over memory-mapped payloads report the bytes they page in via
:func:`repro.gdk.storage.note_scan`.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import GDKError
from repro.gdk import storage, zonemap
from repro.gdk.atoms import Atom, coerce_scalar
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.gdk.dictenc import DictColumn

#: comparison operators accepted by :func:`thetaselect`.
THETA_OPS = ("==", "!=", "<", "<=", ">", ">=")


def _candidate_positions(b: BAT, candidates: BAT | None) -> tuple[np.ndarray, bool]:
    """Positions (0-based into *b*) restricted by an optional candidate list.

    Also reports whether the positions are known ascending — candidate
    lists are sorted by contract, so :func:`_result` can usually skip
    re-sorting its output.
    """
    if candidates is None:
        return np.arange(len(b), dtype=np.int64), True
    if candidates.atom is not Atom.OID:
        raise GDKError("candidate list must have oid tail")
    positions = candidates.tail.values - b.hseqbase
    if len(positions) and (positions.min() < 0 or positions.max() >= len(b)):
        raise GDKError("candidate oid outside BAT head range")
    is_sorted = bool(np.all(positions[1:] >= positions[:-1]))
    return positions, is_sorted


def _result(b: BAT, positions: np.ndarray, keep: np.ndarray, is_sorted: bool = False) -> BAT:
    oids = positions[keep] + b.hseqbase
    if not is_sorted:
        oids = np.sort(oids)
    return BAT.from_oids(oids)


# ----------------------------------------------------------------------
# zone-map plumbing
# ----------------------------------------------------------------------
def _zone_window(b: BAT) -> tuple:
    """(zone map, start-row offset) serving *b*, or ``(None, 0)``.

    A fragment produced by ``mat.partition`` carries its source and
    start row, so the source's single zone map answers for any
    fragment count; a whole BAT is its own window from row 0.
    """
    origin = b._zone_origin
    if origin is not None:
        source, start = origin
        return zonemap.ensure(source), start
    return zonemap.ensure(b), 0


def _verdict(b: BAT, prune: bool, kind: str, *args):
    """Whole-fragment zone verdict, or ``None`` when a scan is needed."""
    if not prune or not storage.zonemaps_enabled():
        return None
    zm, base = _zone_window(b)
    if zm is None:
        return None
    method = getattr(zm, f"verdict_{kind}")
    return method(base, base + len(b), *args)


def _verdict_result(
    b: BAT, candidates: BAT | None, verdict: str | None
) -> BAT | None:
    """Materialise a ``"none"``/``"all"`` verdict without a payload scan.

    Runs *before* candidate positions are materialised: a pruned
    fragment must not pay even the ``arange`` of its own oid range.
    """
    if verdict == "none":
        storage.note_pruned()
        return BAT.empty(Atom.OID)
    if verdict == "all":
        storage.note_pruned()
        if candidates is None:
            oids = np.arange(
                b.hseqbase, b.hseqbase + len(b), dtype=np.int64
            )
            return BAT.from_oids(oids)
        positions, presorted = _candidate_positions(b, candidates)
        keep = np.ones(len(positions), dtype=np.bool_)
        return _result(b, positions, keep, presorted)
    return None


def _finish(
    b: BAT,
    positions: np.ndarray,
    presorted: bool,
    keep: np.ndarray,
) -> BAT:
    keep = np.asarray(keep, dtype=np.bool_)
    if b.tail.mask is not None:
        keep &= ~b.tail.mask[positions]
    return _result(b, positions, keep, presorted)


# ----------------------------------------------------------------------
# selection kernels
# ----------------------------------------------------------------------
def select_true(b: BAT, candidates: BAT | None = None, prune: bool = False) -> BAT:
    """Oids where a bit column is TRUE (NULL counts as not-true)."""
    if b.atom is not Atom.BIT:
        raise GDKError("select_true needs a bit BAT")
    verdict = _verdict(b, prune, "theta", True, "==")
    short = _verdict_result(b, candidates, verdict)
    if short is not None:
        return short
    positions, presorted = _candidate_positions(b, candidates)
    storage.note_scan(b.tail.values)
    values = b.tail.values[positions]
    return _finish(b, positions, presorted, values.astype(np.bool_))


def _theta_code_predicate(
    dictionary: np.ndarray, coerced: Any, op: str
) -> tuple[str, int] | bool:
    """Translate ``<op> value`` into code space.

    Returns ``(code_op, code)`` — with ``code_op`` one of ``==``,
    ``!=``, ``<``, ``>=`` — or ``True`` (every non-NULL row matches) /
    ``False`` (no row matches) when the value is absent and the
    comparison degenerates.
    """
    left = int(np.searchsorted(dictionary, coerced, side="left"))
    right = int(np.searchsorted(dictionary, coerced, side="right"))
    found = right > left
    if op == "==":
        return ("==", left) if found else False
    if op == "!=":
        return ("!=", left) if found else True
    if op == "<":
        return ("<", left)
    if op == "<=":
        return ("<", right)
    if op == ">":
        return (">=", right)
    return (">=", left)  # ">="


def _apply_code_predicate(codes: np.ndarray, code_op: str, code: int) -> np.ndarray:
    if code_op == "==":
        return codes == code
    if code_op == "!=":
        return codes != code
    if code_op == "<":
        return codes < code
    return codes >= code


def thetaselect(
    b: BAT,
    value: Any,
    op: str,
    candidates: BAT | None = None,
    prune: bool = False,
) -> BAT:
    """Oids whose tail satisfies ``tail <op> value``.

    NULL tails never qualify; a NULL *value* yields the empty candidate
    list (SQL three-valued logic collapses to false under selection).
    """
    if op not in THETA_OPS:
        raise GDKError(f"unknown theta operator {op!r}")
    if value is None:
        return BAT.empty(Atom.OID)
    coerced = coerce_scalar(value, b.atom)
    tail = b.tail
    if isinstance(tail, DictColumn):
        predicate = _theta_code_predicate(tail.dictionary, coerced, op)
        if predicate is False:
            return BAT.empty(Atom.OID)
        if predicate is True:
            positions, presorted = _candidate_positions(b, candidates)
            keep = np.ones(len(positions), dtype=np.bool_)
            return _finish(b, positions, presorted, keep)
        code_op, code = predicate
        verdict = _verdict(b, prune, "theta", code, code_op)
        short = _verdict_result(b, candidates, verdict)
        if short is not None:
            return short
        positions, presorted = _candidate_positions(b, candidates)
        storage.note_scan(tail.codes)
        keep = _apply_code_predicate(tail.codes[positions], code_op, code)
        return _finish(b, positions, presorted, keep)
    verdict = _verdict(b, prune, "theta", coerced, op)
    short = _verdict_result(b, candidates, verdict)
    if short is not None:
        return short
    positions, presorted = _candidate_positions(b, candidates)
    storage.note_scan(tail.values)
    values = tail.values[positions]
    if op == "==":
        keep = values == coerced
    elif op == "!=":
        keep = values != coerced
    elif op == "<":
        keep = values < coerced
    elif op == "<=":
        keep = values <= coerced
    elif op == ">":
        keep = values > coerced
    else:
        keep = values >= coerced
    return _finish(b, positions, presorted, keep)


def rangeselect(
    b: BAT,
    low: Any,
    high: Any,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
    anti: bool = False,
    candidates: BAT | None = None,
    prune: bool = False,
) -> BAT:
    """Oids with tail in the (optionally open) interval [low, high].

    ``None`` bounds are unbounded.  With ``anti=True`` the complement is
    returned (still excluding NULL tails).
    """
    tail = b.tail
    if isinstance(tail, DictColumn):
        # Half-open window [code_lo, code_hi) in code space.
        dictionary = tail.dictionary
        code_lo = None
        code_hi = None
        if low is not None:
            side = "left" if low_inclusive else "right"
            code_lo = int(np.searchsorted(dictionary, coerce_scalar(low, b.atom), side=side))
        if high is not None:
            side = "right" if high_inclusive else "left"
            code_hi = int(np.searchsorted(dictionary, coerce_scalar(high, b.atom), side=side))
        verdict = _verdict(
            b, prune, "interval", code_lo, code_hi, True, False, anti
        )
        short = _verdict_result(b, candidates, verdict)
        if short is not None:
            return short
        positions, presorted = _candidate_positions(b, candidates)
        storage.note_scan(tail.codes)
        codes = tail.codes[positions]
        keep = np.ones(len(positions), dtype=np.bool_)
        if code_lo is not None:
            keep &= codes >= code_lo
        if code_hi is not None:
            keep &= codes < code_hi
        if anti:
            keep = ~keep
        return _finish(b, positions, presorted, keep)
    lo = None if low is None else coerce_scalar(low, b.atom)
    hi = None if high is None else coerce_scalar(high, b.atom)
    verdict = _verdict(
        b, prune, "interval", lo, hi, low_inclusive, high_inclusive, anti
    )
    short = _verdict_result(b, candidates, verdict)
    if short is not None:
        return short
    positions, presorted = _candidate_positions(b, candidates)
    storage.note_scan(tail.values)
    values = tail.values[positions]
    keep = np.ones(len(positions), dtype=np.bool_)
    if lo is not None:
        keep &= (values >= lo) if low_inclusive else (values > lo)
    if hi is not None:
        keep &= (values <= hi) if high_inclusive else (values < hi)
    if anti:
        keep = ~keep
    return _finish(b, positions, presorted, keep)


def isnull_select(
    b: BAT,
    want_null: bool = True,
    candidates: BAT | None = None,
    prune: bool = False,
) -> BAT:
    """Oids whose tail is NULL (or NOT NULL with ``want_null=False``)."""
    verdict = _verdict(b, prune, "null", want_null)
    short = _verdict_result(b, candidates, verdict)
    if short is not None:
        return short
    positions, presorted = _candidate_positions(b, candidates)
    mask = b.tail.effective_mask()[positions]
    keep = mask if want_null else ~mask
    return _result(b, positions, keep, presorted)


def in_select(
    b: BAT,
    values: list[Any],
    candidates: BAT | None = None,
    prune: bool = False,
) -> BAT:
    """Oids whose tail equals any of *values* (NULL members ignored)."""
    concrete = [coerce_scalar(v, b.atom) for v in values if v is not None]
    if not concrete:
        return BAT.empty(Atom.OID)
    tail = b.tail
    if isinstance(tail, DictColumn):
        dictionary = tail.dictionary
        lefts = np.searchsorted(dictionary, np.array(concrete, dtype=object), side="left")
        present = [
            int(code)
            for code, value in zip(lefts, concrete)
            if code < len(dictionary) and dictionary[code] == value
        ]
        if not present:
            return BAT.from_oids(np.empty(0, dtype=np.int64))
        verdict = _verdict(b, prune, "in", present)
        short = _verdict_result(b, candidates, verdict)
        if short is not None:
            return short
        positions, presorted = _candidate_positions(b, candidates)
        storage.note_scan(tail.codes)
        keep = np.isin(tail.codes[positions], np.array(present, dtype=np.int32))
        return _finish(b, positions, presorted, keep)
    verdict = _verdict(b, prune, "in", concrete)
    short = _verdict_result(b, candidates, verdict)
    if short is not None:
        return short
    positions, presorted = _candidate_positions(b, candidates)
    storage.note_scan(tail.values)
    gathered = tail.values[positions]
    if b.atom is Atom.STR:
        keep = np.isin(gathered.astype(object), np.array(concrete, dtype=object))
    else:
        keep = np.isin(gathered, np.array(concrete))
    return _finish(b, positions, presorted, keep)


def intersect_candidates(a: BAT, b: BAT) -> BAT:
    """Intersection of two sorted candidate lists."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate intersection needs oid tails")
    common = np.intersect1d(a.tail.values, b.tail.values)
    return BAT.from_oids(common)


def union_candidates(a: BAT, b: BAT) -> BAT:
    """Union of two sorted candidate lists."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate union needs oid tails")
    merged = np.union1d(a.tail.values, b.tail.values)
    return BAT.from_oids(merged)


def difference_candidates(a: BAT, b: BAT) -> BAT:
    """Candidates of *a* not present in *b*."""
    if a.atom is not Atom.OID or b.atom is not Atom.OID:
        raise GDKError("candidate difference needs oid tails")
    out = np.setdiff1d(a.tail.values, b.tail.values)
    return BAT.from_oids(out)


def firstn(candidates: BAT, n: int) -> BAT:
    """First *n* oids of a candidate list (LIMIT support)."""
    if n < 0:
        raise GDKError("firstn needs n >= 0")
    return BAT.from_oids(candidates.tail.values[:n])


def boolean_column_from_candidates(length: int, hseqbase: int, candidates: BAT) -> Column:
    """Densify a candidate list back into a bit column of *length*."""
    out = np.zeros(length, dtype=np.bool_)
    positions = candidates.tail.values - hseqbase
    if len(positions) and (positions.min() < 0 or positions.max() >= length):
        raise GDKError("candidate oid outside target range")
    out[positions] = True
    return Column(Atom.BIT, out)
