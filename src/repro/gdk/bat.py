"""Binary Association Tables (BATs).

A BAT is MonetDB's only bulk data structure: a two-column table
``<head, tail>``.  Since the paper's era, heads are always *void*
(virtual oids): a dense sequence ``hseqbase, hseqbase+1, ...`` that is
never materialised.  The tail is a :class:`~repro.gdk.column.Column`.

Relational tables and SciQL arrays are both stored as collections of
BATs sharing the same void head — one BAT per column, per dimension and
per cell attribute (paper, Section 3 and Figure 3).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column


class BAT:
    """A void-headed Binary Association Table.

    ``_zones`` caches the BAT's zone map (``None`` = not yet built,
    ``False`` = not buildable, e.g. a plain string tail — see
    :func:`repro.gdk.zonemap.ensure`); ``_zone_origin`` is set by
    :func:`partition` to ``(source_bat, start_row)`` so a fragment's
    selections consult the source's zone map over their own row window
    instead of building per-fragment statistics.
    """

    __slots__ = ("tail", "hseqbase", "_zones", "_zone_origin")

    def __init__(self, tail: Column, hseqbase: int = 0):
        if hseqbase < 0:
            raise GDKError("hseqbase must be non-negative")
        self.tail = tail
        self.hseqbase = hseqbase
        self._zones = None
        self._zone_origin = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pylist(cls, atom: Atom, items: Sequence[Any], hseqbase: int = 0) -> "BAT":
        """BAT whose tail holds *items* (``None`` becomes NULL)."""
        return cls(Column.from_pylist(atom, items), hseqbase)

    @classmethod
    def empty(cls, atom: Atom, hseqbase: int = 0) -> "BAT":
        """Zero-length BAT of the given tail atom."""
        return cls(Column.empty(atom), hseqbase)

    @classmethod
    def dense(cls, first: int, count: int, hseqbase: int = 0) -> "BAT":
        """BAT of consecutive oids ``first .. first+count`` (a candidate list)."""
        values = np.arange(first, first + count, dtype=np.int64)
        return cls(Column(Atom.OID, values), hseqbase)

    @classmethod
    def from_oids(cls, oids: np.ndarray, hseqbase: int = 0) -> "BAT":
        """BAT of explicit oids (tail atom ``oid``)."""
        return cls(Column(Atom.OID, np.asarray(oids, dtype=np.int64)), hseqbase)

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tail)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BAT(h=void:{self.hseqbase}, t={self.tail!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BAT):
            return NotImplemented
        return self.hseqbase == other.hseqbase and self.tail == other.tail

    def __hash__(self) -> int:
        raise TypeError("BAT objects are unhashable")

    @property
    def atom(self) -> Atom:
        """Tail atom type."""
        return self.tail.atom

    def head_oids(self) -> np.ndarray:
        """Materialise the (virtual) head as an int64 array."""
        return np.arange(self.hseqbase, self.hseqbase + len(self), dtype=np.int64)

    # ------------------------------------------------------------------
    # element access
    # ------------------------------------------------------------------
    def find(self, oid: int) -> Any:
        """Tail value associated with head *oid* (BUNfind)."""
        pos = oid - self.hseqbase
        if pos < 0 or pos >= len(self):
            raise GDKError(f"oid {oid} outside head range")
        return self.tail.get(pos)

    def tail_pylist(self) -> list[Any]:
        """The tail as Python scalars."""
        return self.tail.to_pylist()

    def buns(self) -> list[tuple[int, Any]]:
        """All (head, tail) pairs — Binary UNits in MonetDB speech."""
        return list(zip(self.head_oids().tolist(), self.tail.to_pylist()))

    # ------------------------------------------------------------------
    # structural operations (these return fresh BATs)
    # ------------------------------------------------------------------
    def mirror(self) -> "BAT":
        """``<head, head>`` view: tail becomes the oid sequence."""
        return BAT.dense(self.hseqbase, len(self), hseqbase=self.hseqbase)

    def slice(self, start: int, stop: int) -> "BAT":
        """BUNs with head in ``[hseqbase+start, hseqbase+stop)``."""
        start = max(0, start)
        stop = min(len(self), max(start, stop))
        return BAT(self.tail.slice(start, stop), self.hseqbase + start)

    def append(self, other: "BAT") -> "BAT":
        """Concatenate the tails (head stays dense from ``self.hseqbase``)."""
        return BAT(self.tail.concat(other.tail), self.hseqbase)

    def replace(self, oids: np.ndarray, values: Column) -> "BAT":
        """New BAT with tail entries at *oids* replaced (BATreplace)."""
        positions = np.asarray(oids, dtype=np.int64) - self.hseqbase
        return BAT(self.tail.replace(positions, values), self.hseqbase)

    def project(self, candidates: "BAT") -> "BAT":
        """Fetch tail values for each oid in *candidates* (leftfetchjoin).

        The result head is dense starting at 0, as in MonetDB's
        ``algebra.projection``.
        """
        if candidates.atom is not Atom.OID:
            raise GDKError("projection candidates must have oid tail")
        positions = candidates.tail.values - self.hseqbase
        return BAT(self.tail.take(positions), 0)

    def copy(self) -> "BAT":
        """Deep copy."""
        return BAT(self.tail.copy(), self.hseqbase)


def pack_bats(parts: Sequence[BAT]) -> BAT:
    """Re-merge horizontal fragments into one BAT (MonetDB's ``mat.pack``).

    The fragments must be supplied in fragment order; their tails are
    concatenated and the head restarts dense from the first fragment's
    ``hseqbase``.  Packing the partitions of a BAT therefore
    reconstructs it exactly.
    """
    if not parts:
        raise GDKError("mat.pack needs at least one fragment")
    if len(parts) == 1:
        return parts[0]
    atom = parts[0].atom
    for part in parts[1:]:
        if part.atom is not atom:
            raise GDKError(f"mat.pack of {atom} and {part.atom} fragments")
    if any(part.tail.mask is not None for part in parts):
        mask = np.concatenate([part.tail.effective_mask() for part in parts])
    else:
        mask = None
    # Fragments of one dictionary-encoded source share the dictionary
    # object; packing them re-concatenates codes without decoding.
    first = parts[0].tail
    dictionary = getattr(first, "dictionary", None)
    if dictionary is not None and all(
        getattr(part.tail, "dictionary", None) is dictionary for part in parts[1:]
    ):
        codes = np.concatenate([np.asarray(part.tail.codes) for part in parts])
        return BAT(type(first)(atom, codes, dictionary, mask), parts[0].hseqbase)
    # Single-pass concatenation: a pairwise fold would re-copy the
    # accumulated prefix once per fragment (quadratic in fragments).
    values = np.concatenate([part.tail.values for part in parts])
    return BAT(Column(atom, values, mask), parts[0].hseqbase)


def merge_candidates(parts: Sequence[BAT]) -> BAT:
    """Ordered union of per-fragment candidate lists (``bat.mergecand``).

    Fragments partition the head range in ascending oid order, so each
    fragment's qualifying oids already sort strictly after the previous
    fragment's; the union is a plain concatenation — no re-sort, which
    also preserves the pairing of aligned join-oid fragments.
    """
    if not parts:
        raise GDKError("bat.mergecand needs at least one fragment")
    for part in parts:
        if part.atom is not Atom.OID:
            raise GDKError("bat.mergecand fragments must have oid tails")
    if len(parts) == 1:
        return parts[0]
    values = np.concatenate([part.tail.values for part in parts])
    return BAT.from_oids(values)


def partition_bounds(count: int, index: int, pieces: int) -> tuple[int, int]:
    """Row bounds ``[start, stop)`` of fragment *index* of *pieces*.

    Computed from the runtime row count so compiled plans stay correct
    when the underlying table grows after plan caching.
    """
    if pieces <= 0:
        raise GDKError("partition count must be positive")
    if index < 0 or index >= pieces:
        raise GDKError(f"partition index {index} outside 0..{pieces - 1}")
    return (count * index) // pieces, (count * (index + 1)) // pieces


def partition(b: BAT, index: int, pieces: int) -> BAT:
    """Fragment *index* of *pieces* equal horizontal slices of *b*.

    The slice keeps its global head range (``hseqbase`` advances by the
    slice start), so selections over a fragment emit oids in the shared
    oid space and fragment results merge by concatenation.  Unlike
    :meth:`BAT.slice` the fragment is a zero-copy *view* of the source
    arrays: kernels never mutate their inputs in place, fragments are
    transient within one execution, and copying every partition would
    re-materialise the whole column once per fragmented plan.
    """
    start, stop = partition_bounds(len(b), index, pieces)
    fragment = BAT(b.tail.view_slice(start, stop), b.hseqbase + start)
    # Selections over the fragment consult the source's zone map for
    # the [start, stop) window instead of building per-fragment stats.
    fragment._zone_origin = (b, start)
    return fragment


def assert_aligned(*bats: BAT) -> int:
    """Check that BATs are head-aligned (same seqbase and length)."""
    if not bats:
        return 0
    base = bats[0].hseqbase
    length = len(bats[0])
    for bat in bats[1:]:
        if bat.hseqbase != base or len(bat) != length:
            raise GDKError("BATs are not head-aligned")
    return length
