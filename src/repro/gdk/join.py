"""Join operators of the kernel.

MonetDB joins return *two aligned oid BATs* ``(l, r)`` such that
``left[l[i]] == right[r[i]]`` for every i.  Downstream projections then
fetch whatever payload columns are needed.

The production kernels are NumPy-vectorized: equi-joins sort one side
once and probe it with ``searchsorted`` (MonetDB's merge-join strategy
for sorted BATs), so no per-row Python loop survives on the hot path.
Every kernel accepts optional *candidate lists* (oid BATs, as produced
by :mod:`repro.gdk.select`) restricting which BUNs participate —
returned oids are always absolute head oids of the original BATs.

The original tuple-at-a-time implementations are retained with a
``_reference`` suffix; they are the oracles of the property-test suite
and the baseline of the kernel benchmarks, never called by the engine.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom, canon_key as _canon_key
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.gdk.dictenc import DictColumn
from repro.gdk.select import THETA_OPS
from repro.gdk.select import _candidate_positions as _select_candidate_positions


# ----------------------------------------------------------------------
# vectorization helpers
# ----------------------------------------------------------------------
def _candidate_positions(b: BAT, candidates: BAT | None) -> np.ndarray:
    """0-based positions into *b* restricted by an optional candidate list."""
    positions, _ = _select_candidate_positions(b, candidates)
    return positions


def _sort_values(values: np.ndarray) -> np.ndarray:
    """Stable sort permutation; works for numeric and object (str) tails."""
    return np.argsort(values, kind="stable")


def _span_search(
    haystack: np.ndarray, probes: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-probe match span ``[lo, hi)`` in a sorted haystack.

    Large numeric probe sets are sorted first so the binary searches walk
    the haystack monotonically (cache-friendly), then the spans are
    scattered back to probe order.
    """
    if len(probes) > 2048 and probes.dtype != object:
        order = np.argsort(probes, kind="stable")
        sorted_probes = probes[order]
        lo = np.empty(len(probes), dtype=np.int64)
        hi = np.empty(len(probes), dtype=np.int64)
        lo[order] = np.searchsorted(haystack, sorted_probes, side="left")
        hi[order] = np.searchsorted(haystack, sorted_probes, side="right")
        return lo, hi
    return (
        np.searchsorted(haystack, probes, side="left"),
        np.searchsorted(haystack, probes, side="right"),
    )


def _expand_spans(
    lo: np.ndarray, hi: np.ndarray, counts: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Flatten per-probe index spans ``[lo[i], hi[i])`` into one index array.

    Returns ``(flat, counts)`` where ``flat`` concatenates the indices of
    every span and ``counts[i] == hi[i] - lo[i]``.  An explicit *counts*
    overrides the span widths (leftjoin pads every empty span to one
    slot for its ``-1`` placeholder).
    """
    if counts is None:
        counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), counts
    starts = np.repeat(lo, counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    return starts + offsets, counts


def _check_join_types(left: BAT, right: BAT) -> None:
    if left.atom is not right.atom:
        if left.atom in (Atom.INT, Atom.LNG) and right.atom in (Atom.INT, Atom.LNG):
            return  # integer widths compare fine through numpy
        raise GDKError(f"join of {left.atom} and {right.atom}")


def _pair_sources(
    ltail: Column, rtail: Column
) -> tuple[np.ndarray, np.ndarray]:
    """Per-side key arrays whose comparisons agree across the pair.

    When *both* sides are dictionary-encoded the join runs on integer
    codes: either the shared codes directly, or each side's codes
    translated through the union dictionary.  The translation is
    order-preserving (both dictionaries are sorted and the union is
    their sorted merge), so sort order, equality spans and therefore
    the joined oid pairs are byte-identical to the decoded join.
    Mixed or plain pairs fall back to the value arrays (a lazy decode
    for an encoded side).
    """
    if isinstance(ltail, DictColumn) and isinstance(rtail, DictColumn):
        lcodes = np.asarray(ltail.codes)
        rcodes = np.asarray(rtail.codes)
        if ltail.dictionary is rtail.dictionary:
            return lcodes, rcodes
        joint, inverse = np.unique(
            np.concatenate([ltail.dictionary, rtail.dictionary]),
            return_inverse=True,
        )
        lut = inverse.astype(np.int64)
        nleft = len(ltail.dictionary)
        return lut[:nleft][lcodes], lut[nleft:][rcodes]
    return ltail.values, rtail.values


def _valid_split(
    b: BAT, candidates: BAT | None, source: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(valid positions, their keys, null positions) under candidates.

    *source* overrides the key array gathered from (defaults to the
    tail values; joins pass the code arrays of :func:`_pair_sources`).
    """
    positions = _candidate_positions(b, candidates)
    if source is None:
        source = b.tail.values
    mask = b.tail.mask
    if mask is None:
        return positions, source[positions], np.empty(0, dtype=np.int64)
    local_null = mask[positions]
    valid = positions[~local_null]
    return valid, source[valid], positions[local_null]


def join(
    left: BAT,
    right: BAT,
    nil_matches: bool = False,
    lcand: BAT | None = None,
    rcand: BAT | None = None,
) -> tuple[BAT, BAT]:
    """Inner equi-join on tails; returns aligned (left-oids, right-oids).

    NULL never matches NULL unless *nil_matches* is set (MonetDB's
    semantics for joins used in grouping internals).  The result is
    canonically ordered by (left oid, right oid).
    """
    _check_join_types(left, right)
    lsrc, rsrc = _pair_sources(left.tail, right.tail)
    lpos, lvals, lnull = _valid_split(left, lcand, lsrc)
    rpos, rvals, rnull = _valid_split(right, rcand, rsrc)

    # Probe from the left into the sorted right side: left rows ascend
    # and each probe's matches ascend (stable sort), so the output is
    # already in canonical (left oid, right oid) order — no final sort.
    order = _sort_values(rvals)
    rsorted = rvals[order]
    sorted_rpos = rpos[order]
    lo, hi = _span_search(rsorted, lvals)
    flat, counts = _expand_spans(lo, hi)
    louts = np.repeat(lpos, counts)
    routs = sorted_rpos[flat]

    loids = louts + left.hseqbase
    roids = routs + right.hseqbase
    if nil_matches and len(lnull) and len(rnull):
        # NULL behaves as one ordinary value: cross the null rows.
        loids = np.concatenate([loids, np.repeat(lnull, len(rnull)) + left.hseqbase])
        roids = np.concatenate([roids, np.tile(rnull, len(lnull)) + right.hseqbase])
        canon = np.lexsort((roids, loids))
        loids, roids = loids[canon], roids[canon]
    return BAT.from_oids(loids), BAT.from_oids(roids)


def leftjoin(
    left: BAT,
    right: BAT,
    lcand: BAT | None = None,
    rcand: BAT | None = None,
) -> tuple[BAT, BAT]:
    """Left outer join: unmatched left BUNs appear with right-oid ``-1``.

    The caller turns ``-1`` into NULL via
    :meth:`repro.gdk.column.Column.take_with_invalid`.  Left rows keep
    their (candidate) order; matches come in ascending right-oid order.
    """
    _check_join_types(left, right)
    lsrc, rsrc = _pair_sources(left.tail, right.tail)
    lpos = _candidate_positions(left, lcand)
    lvals = lsrc[lpos]
    rpos, rvals, _ = _valid_split(right, rcand, rsrc)

    order = _sort_values(rvals)
    rsorted = rvals[order]
    sorted_rpos = rpos[order]  # ascending positions within equal keys
    lo, hi = _span_search(rsorted, lvals)
    counts = hi - lo
    if left.tail.mask is not None:
        counts = np.where(left.tail.mask[lpos], 0, counts)

    out_counts = np.maximum(counts, 1)
    flat, _ = _expand_spans(lo, hi, out_counts)
    louts = np.repeat(lpos, out_counts)
    matched = np.repeat(counts > 0, out_counts)
    if len(sorted_rpos):
        routs = np.where(matched, sorted_rpos[np.where(matched, flat, 0)], -1)
    else:
        routs = np.full(len(flat), -1, dtype=np.int64)

    loids = louts + left.hseqbase
    roids = np.where(routs >= 0, routs + right.hseqbase, -1)
    return BAT.from_oids(loids), BAT.from_oids(roids)


def thetajoin(left: BAT, right: BAT, op: str) -> tuple[BAT, BAT]:
    """Join on an arbitrary comparison ``left.tail <op> right.tail``.

    Quadratic nested-loop evaluated with numpy broadcasting; used for the
    rare non-equi join predicates in the demo queries.
    """
    if op not in THETA_OPS:
        raise GDKError(f"unknown theta operator {op!r}")
    lvalues = left.tail.values
    rvalues = right.tail.values
    if op == "==":
        grid = lvalues[:, None] == rvalues[None, :]
    elif op == "!=":
        grid = lvalues[:, None] != rvalues[None, :]
    elif op == "<":
        grid = lvalues[:, None] < rvalues[None, :]
    elif op == "<=":
        grid = lvalues[:, None] <= rvalues[None, :]
    elif op == ">":
        grid = lvalues[:, None] > rvalues[None, :]
    else:
        grid = lvalues[:, None] >= rvalues[None, :]
    grid = np.asarray(grid, dtype=np.bool_)
    if left.tail.mask is not None:
        grid &= ~left.tail.mask[:, None]
    if right.tail.mask is not None:
        grid &= ~right.tail.mask[None, :]
    lpos, rpos = np.nonzero(grid)
    return (
        BAT.from_oids(lpos.astype(np.int64) + left.hseqbase),
        BAT.from_oids(rpos.astype(np.int64) + right.hseqbase),
    )


def crossproduct(left_count: int, right_count: int,
                 left_base: int = 0, right_base: int = 0) -> tuple[BAT, BAT]:
    """Cartesian product of two dense heads as aligned oid BATs."""
    if left_count < 0 or right_count < 0:
        raise GDKError("negative cross product cardinality")
    loids = np.repeat(np.arange(left_count, dtype=np.int64), right_count) + left_base
    roids = np.tile(np.arange(right_count, dtype=np.int64), left_count) + right_base
    return BAT.from_oids(loids), BAT.from_oids(roids)


def semijoin(
    left: BAT,
    right: BAT,
    lcand: BAT | None = None,
    rcand: BAT | None = None,
) -> BAT:
    """Left oids having at least one equi-match in *right*."""
    _check_join_types(left, right)
    lsrc, rsrc = _pair_sources(left.tail, right.tail)
    lpos, lvals, _ = _valid_split(left, lcand, lsrc)
    _, rvals, _ = _valid_split(right, rcand, rsrc)
    # Same span probe as join() so NaN keys stay in one equivalence class
    # (np.isin would never equate NaN with NaN).
    rsorted = rvals[_sort_values(rvals)]
    lo, hi = _span_search(rsorted, lvals)
    keep = hi > lo
    return BAT.from_oids(lpos[keep] + left.hseqbase)


def antijoin(
    left: BAT,
    right: BAT,
    lcand: BAT | None = None,
    rcand: BAT | None = None,
) -> BAT:
    """Left oids with no equi-match in *right* (NULL left tails excluded)."""
    _check_join_types(left, right)
    lsrc, rsrc = _pair_sources(left.tail, right.tail)
    lpos, lvals, _ = _valid_split(left, lcand, lsrc)
    _, rvals, _ = _valid_split(right, rcand, rsrc)
    rsorted = rvals[_sort_values(rvals)]
    lo, hi = _span_search(rsorted, lvals)
    keep = hi == lo
    return BAT.from_oids(lpos[keep] + left.hseqbase)


# ----------------------------------------------------------------------
# compound keys
# ----------------------------------------------------------------------
def _pairable(column: Column) -> np.ndarray:
    """Values array in a dtype np.unique can handle uniformly."""
    if column.atom is Atom.STR:
        return column.values.astype(object)
    return column.values


def _joint_codes(
    left_cols: list[Column], right_cols: list[Column], nulls_equal: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Dense int64 row keys shared by both sides.

    Per column, values are coded through one ``np.unique`` over the
    concatenation of both sides; per-column codes are then mixed into a
    running key that is re-densified after every column so magnitudes
    stay bounded by the total row count (no overflow for any arity).
    With *nulls_equal*, NULL gets its own code equal on both sides
    (SQL set-operation semantics); otherwise callers must pre-filter
    NULL rows.
    """
    nleft = len(left_cols[0]) if left_cols else 0
    keys: np.ndarray | None = None
    for lcol, rcol in zip(left_cols, right_cols):
        if isinstance(lcol, DictColumn) and isinstance(rcol, DictColumn):
            # Code the pair through the union dictionary instead of
            # np.unique over the concatenated object arrays; the codes
            # need not be dense, only order/equality-faithful, which
            # the sorted union guarantees.
            lkeys, rkeys = _pair_sources(lcol, rcol)
            codes = np.concatenate([lkeys, rkeys]).astype(np.int64)
            nuniques = int(codes.max()) + 1 if len(codes) else 0
        else:
            combined = np.concatenate([_pairable(lcol), _pairable(rcol)])
            uniques, codes = np.unique(combined, return_inverse=True)
            codes = codes.astype(np.int64)
            nuniques = len(uniques)
        if nulls_equal:
            null_mask = np.concatenate(
                [lcol.effective_mask(), rcol.effective_mask()]
            )
            codes[null_mask] = nuniques
        if keys is None:
            keys = codes
        else:
            keys = keys * (int(codes.max()) + 1 if len(codes) else 1) + codes
            _, keys = np.unique(keys, return_inverse=True)
            keys = keys.astype(np.int64)
    assert keys is not None
    return keys[:nleft], keys[nleft:]


def multi_column_join(
    left_cols: list[Column], right_cols: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join on a compound key of several aligned columns.

    Returns positions (not oids); the compound key matches when every
    component matches and none is NULL.  Output is ordered by
    (right position, left position), matching the reference kernel.
    """
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("multi_column_join needs matching non-empty key lists")
    lvalid = np.ones(len(left_cols[0]), dtype=np.bool_)
    for col in left_cols:
        lvalid &= col.validity()
    rvalid = np.ones(len(right_cols[0]), dtype=np.bool_)
    for col in right_cols:
        rvalid &= col.validity()
    lkeys, rkeys = _joint_codes(left_cols, right_cols, nulls_equal=False)
    lpos = np.flatnonzero(lvalid)
    rpos = np.flatnonzero(rvalid)
    lkeys = lkeys[lpos]
    rkeys = rkeys[rpos]

    # Right probes ascend and matched left positions ascend within each
    # probe (stable sort), giving (right, left) order without a re-sort.
    order = np.argsort(lkeys, kind="stable")
    lsorted = lkeys[order]
    lo, hi = _span_search(lsorted, rkeys)
    flat, counts = _expand_spans(lo, hi)
    lpos_out = lpos[order[flat]]
    rpos_out = np.repeat(rpos, counts)
    return lpos_out, rpos_out


def rows_membership(
    left_cols: list[Column], right_cols: list[Column]
) -> np.ndarray:
    """Per-left-row membership test against the right row set.

    Used by EXCEPT/INTERSECT: rows compare as tuples and — per SQL set
    operation semantics — NULLs compare equal to NULLs.
    """
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("rows_membership needs matching non-empty column lists")
    lkeys, rkeys = _joint_codes(left_cols, right_cols, nulls_equal=True)
    return np.isin(lkeys, rkeys)


# ----------------------------------------------------------------------
# reference (loop) implementations — property-test oracles only
# ----------------------------------------------------------------------
def _hash_index_reference(values: np.ndarray, mask: np.ndarray | None) -> dict:
    """value -> list of positions, skipping NULLs."""
    index: dict = {}
    if mask is None:
        for pos, value in enumerate(values.tolist()):
            index.setdefault(_canon_key(value), []).append(pos)
    else:
        for pos, (value, is_null) in enumerate(zip(values.tolist(), mask.tolist())):
            if not is_null:
                index.setdefault(_canon_key(value), []).append(pos)
    return index


def join_reference(left: BAT, right: BAT, nil_matches: bool = False) -> tuple[BAT, BAT]:
    """Tuple-at-a-time hash join (the seed implementation)."""
    _check_join_types(left, right)
    lmask = left.tail.mask
    rmask = right.tail.mask
    if nil_matches:
        index: dict = {}
        for pos, value in enumerate(left.tail.to_pylist()):
            index.setdefault(_canon_key(value), []).append(pos)
        louts: list[int] = []
        routs: list[int] = []
        for rpos, value in enumerate(right.tail.to_pylist()):
            for lpos in index.get(_canon_key(value), ()):
                louts.append(lpos)
                routs.append(rpos)
    else:
        index = _hash_index_reference(left.tail.values, lmask)
        louts = []
        routs = []
        rvalues = right.tail.values.tolist()
        rnull = rmask.tolist() if rmask is not None else None
        for rpos, value in enumerate(rvalues):
            if rnull is not None and rnull[rpos]:
                continue
            for lpos in index.get(_canon_key(value), ()):
                louts.append(lpos)
                routs.append(rpos)
    loids = np.asarray(louts, dtype=np.int64) + left.hseqbase
    roids = np.asarray(routs, dtype=np.int64) + right.hseqbase
    order = np.lexsort((roids, loids))
    return BAT.from_oids(loids[order]), BAT.from_oids(roids[order])


def leftjoin_reference(left: BAT, right: BAT) -> tuple[BAT, BAT]:
    """Tuple-at-a-time left outer join (the seed implementation)."""
    index = _hash_index_reference(right.tail.values, right.tail.mask)
    louts: list[int] = []
    routs: list[int] = []
    lmask = left.tail.mask
    for lpos, value in enumerate(left.tail.values.tolist()):
        if lmask is not None and lmask[lpos]:
            louts.append(lpos)
            routs.append(-1)
            continue
        matches = index.get(_canon_key(value))
        if matches:
            for rpos in matches:
                louts.append(lpos)
                routs.append(rpos)
        else:
            louts.append(lpos)
            routs.append(-1)
    loids = np.asarray(louts, dtype=np.int64) + left.hseqbase
    roids = np.asarray(routs, dtype=np.int64)
    roids = np.where(roids >= 0, roids + right.hseqbase, -1)
    return BAT.from_oids(loids), BAT.from_oids(roids)


def semijoin_reference(left: BAT, right: BAT) -> BAT:
    """Tuple-at-a-time semijoin (the seed implementation)."""
    index = set()
    rmask = right.tail.mask
    for pos, value in enumerate(right.tail.values.tolist()):
        if rmask is None or not rmask[pos]:
            index.add(_canon_key(value))
    keep = []
    lmask = left.tail.mask
    for pos, value in enumerate(left.tail.values.tolist()):
        if lmask is not None and lmask[pos]:
            continue
        if _canon_key(value) in index:
            keep.append(pos)
    return BAT.from_oids(np.asarray(keep, dtype=np.int64) + left.hseqbase)


def antijoin_reference(left: BAT, right: BAT) -> BAT:
    """Tuple-at-a-time antijoin (the seed implementation)."""
    matched = semijoin_reference(left, right)
    all_oids = np.arange(left.hseqbase, left.hseqbase + len(left), dtype=np.int64)
    if left.tail.mask is not None:
        all_oids = all_oids[~left.tail.mask]
    out = np.setdiff1d(all_oids, matched.tail.values)
    return BAT.from_oids(out)


def multi_column_join_reference(
    left_cols: list[Column], right_cols: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Tuple-at-a-time compound-key join (the seed implementation)."""
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("multi_column_join needs matching non-empty key lists")
    lvalid = np.ones(len(left_cols[0]), dtype=np.bool_)
    for col in left_cols:
        lvalid &= col.validity()
    rvalid = np.ones(len(right_cols[0]), dtype=np.bool_)
    for col in right_cols:
        rvalid &= col.validity()
    index: dict = {}
    for pos in np.flatnonzero(lvalid):
        key = tuple(_canon_key(col.values[pos]) for col in left_cols)
        index.setdefault(key, []).append(int(pos))
    lpos_out: list[int] = []
    rpos_out: list[int] = []
    for pos in np.flatnonzero(rvalid):
        key = tuple(_canon_key(col.values[pos]) for col in right_cols)
        for lpos in index.get(key, ()):
            lpos_out.append(lpos)
            rpos_out.append(int(pos))
    return np.asarray(lpos_out, dtype=np.int64), np.asarray(rpos_out, dtype=np.int64)


def rows_membership_reference(
    left_cols: list[Column], right_cols: list[Column]
) -> np.ndarray:
    """Tuple-at-a-time membership test (the seed implementation)."""
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("rows_membership needs matching non-empty column lists")
    nright = len(right_cols[0]) if right_cols else 0
    right_keys = set()
    for pos in range(nright):
        right_keys.add(
            tuple(
                None
                if col.mask is not None and col.mask[pos]
                else _canon_key(col.values[pos])
                for col in right_cols
            )
        )
    nleft = len(left_cols[0])
    out = np.zeros(nleft, dtype=np.bool_)
    for pos in range(nleft):
        key = tuple(
            None
            if col.mask is not None and col.mask[pos]
            else _canon_key(col.values[pos])
            for col in left_cols
        )
        out[pos] = key in right_keys
    return out
