"""Join operators of the kernel.

MonetDB joins return *two aligned oid BATs* ``(l, r)`` such that
``left[l[i]] == right[r[i]]`` for every i.  Downstream projections then
fetch whatever payload columns are needed.  We reproduce that contract
with hash-based implementations on numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.gdk.select import THETA_OPS


def _hash_index(values: np.ndarray, mask: np.ndarray | None) -> dict:
    """value -> list of positions, skipping NULLs."""
    index: dict = {}
    if mask is None:
        for pos, value in enumerate(values.tolist()):
            index.setdefault(value, []).append(pos)
    else:
        for pos, (value, is_null) in enumerate(zip(values.tolist(), mask.tolist())):
            if not is_null:
                index.setdefault(value, []).append(pos)
    return index


def join(left: BAT, right: BAT, nil_matches: bool = False) -> tuple[BAT, BAT]:
    """Inner equi-join on tails; returns aligned (left-oids, right-oids).

    NULL never matches NULL unless *nil_matches* is set (MonetDB's
    semantics for joins used in grouping internals).
    """
    if left.atom is not right.atom:
        if left.atom in (Atom.INT, Atom.LNG) and right.atom in (Atom.INT, Atom.LNG):
            pass  # integer widths compare fine through numpy
        else:
            raise GDKError(f"join of {left.atom} and {right.atom}")
    lmask = left.tail.mask
    rmask = right.tail.mask
    if nil_matches:
        # Treat NULL as an ordinary value by folding it into a sentinel key.
        index: dict = {}
        for pos, value in enumerate(left.tail.to_pylist()):
            index.setdefault(value, []).append(pos)
        louts: list[int] = []
        routs: list[int] = []
        for rpos, value in enumerate(right.tail.to_pylist()):
            for lpos in index.get(value, ()):
                louts.append(lpos)
                routs.append(rpos)
    else:
        index = _hash_index(left.tail.values, lmask)
        louts = []
        routs = []
        rvalues = right.tail.values.tolist()
        rnull = rmask.tolist() if rmask is not None else None
        for rpos, value in enumerate(rvalues):
            if rnull is not None and rnull[rpos]:
                continue
            for lpos in index.get(value, ()):
                louts.append(lpos)
                routs.append(rpos)
    loids = np.asarray(louts, dtype=np.int64) + left.hseqbase
    roids = np.asarray(routs, dtype=np.int64) + right.hseqbase
    order = np.lexsort((roids, loids))
    return BAT.from_oids(loids[order]), BAT.from_oids(roids[order])


def leftjoin(left: BAT, right: BAT) -> tuple[BAT, BAT]:
    """Left outer join: unmatched left BUNs appear with right-oid ``-1``.

    The caller turns ``-1`` into NULL via
    :meth:`repro.gdk.column.Column.take_with_invalid`.
    """
    index = _hash_index(right.tail.values, right.tail.mask)
    louts: list[int] = []
    routs: list[int] = []
    lmask = left.tail.mask
    for lpos, value in enumerate(left.tail.values.tolist()):
        if lmask is not None and lmask[lpos]:
            louts.append(lpos)
            routs.append(-1)
            continue
        matches = index.get(value)
        if matches:
            for rpos in matches:
                louts.append(lpos)
                routs.append(rpos)
        else:
            louts.append(lpos)
            routs.append(-1)
    loids = np.asarray(louts, dtype=np.int64) + left.hseqbase
    roids = np.asarray(routs, dtype=np.int64)
    roids = np.where(roids >= 0, roids + right.hseqbase, -1)
    return BAT.from_oids(loids), BAT.from_oids(roids)


def thetajoin(left: BAT, right: BAT, op: str) -> tuple[BAT, BAT]:
    """Join on an arbitrary comparison ``left.tail <op> right.tail``.

    Quadratic nested-loop evaluated with numpy broadcasting; used for the
    rare non-equi join predicates in the demo queries.
    """
    if op not in THETA_OPS:
        raise GDKError(f"unknown theta operator {op!r}")
    lvalues = left.tail.values
    rvalues = right.tail.values
    if op == "==":
        grid = lvalues[:, None] == rvalues[None, :]
    elif op == "!=":
        grid = lvalues[:, None] != rvalues[None, :]
    elif op == "<":
        grid = lvalues[:, None] < rvalues[None, :]
    elif op == "<=":
        grid = lvalues[:, None] <= rvalues[None, :]
    elif op == ">":
        grid = lvalues[:, None] > rvalues[None, :]
    else:
        grid = lvalues[:, None] >= rvalues[None, :]
    grid = np.asarray(grid, dtype=np.bool_)
    if left.tail.mask is not None:
        grid &= ~left.tail.mask[:, None]
    if right.tail.mask is not None:
        grid &= ~right.tail.mask[None, :]
    lpos, rpos = np.nonzero(grid)
    return (
        BAT.from_oids(lpos.astype(np.int64) + left.hseqbase),
        BAT.from_oids(rpos.astype(np.int64) + right.hseqbase),
    )


def crossproduct(left_count: int, right_count: int,
                 left_base: int = 0, right_base: int = 0) -> tuple[BAT, BAT]:
    """Cartesian product of two dense heads as aligned oid BATs."""
    if left_count < 0 or right_count < 0:
        raise GDKError("negative cross product cardinality")
    loids = np.repeat(np.arange(left_count, dtype=np.int64), right_count) + left_base
    roids = np.tile(np.arange(right_count, dtype=np.int64), left_count) + right_base
    return BAT.from_oids(loids), BAT.from_oids(roids)


def semijoin(left: BAT, right: BAT) -> BAT:
    """Left oids having at least one equi-match in *right*."""
    index = set()
    rmask = right.tail.mask
    for pos, value in enumerate(right.tail.values.tolist()):
        if rmask is None or not rmask[pos]:
            index.add(value)
    keep = []
    lmask = left.tail.mask
    for pos, value in enumerate(left.tail.values.tolist()):
        if lmask is not None and lmask[pos]:
            continue
        if value in index:
            keep.append(pos)
    return BAT.from_oids(np.asarray(keep, dtype=np.int64) + left.hseqbase)


def antijoin(left: BAT, right: BAT) -> BAT:
    """Left oids with no equi-match in *right* (NULL left tails excluded)."""
    matched = semijoin(left, right)
    all_oids = np.arange(left.hseqbase, left.hseqbase + len(left), dtype=np.int64)
    if left.tail.mask is not None:
        all_oids = all_oids[~left.tail.mask]
    out = np.setdiff1d(all_oids, matched.tail.values)
    return BAT.from_oids(out)


def multi_column_join(
    left_cols: list[Column], right_cols: list[Column]
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join on a compound key of several aligned columns.

    Returns positions (not oids); the compound key matches when every
    component matches and none is NULL.
    """
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("multi_column_join needs matching non-empty key lists")
    lvalid = np.ones(len(left_cols[0]), dtype=np.bool_)
    for col in left_cols:
        lvalid &= col.validity()
    rvalid = np.ones(len(right_cols[0]), dtype=np.bool_)
    for col in right_cols:
        rvalid &= col.validity()
    index: dict = {}
    for pos in np.flatnonzero(lvalid):
        key = tuple(col.values[pos] for col in left_cols)
        index.setdefault(key, []).append(int(pos))
    lpos_out: list[int] = []
    rpos_out: list[int] = []
    for pos in np.flatnonzero(rvalid):
        key = tuple(col.values[pos] for col in right_cols)
        for lpos in index.get(key, ()):
            lpos_out.append(lpos)
            rpos_out.append(int(pos))
    return np.asarray(lpos_out, dtype=np.int64), np.asarray(rpos_out, dtype=np.int64)


def rows_membership(
    left_cols: list[Column], right_cols: list[Column]
) -> np.ndarray:
    """Per-left-row membership test against the right row set.

    Used by EXCEPT/INTERSECT: rows compare as tuples and — per SQL set
    operation semantics — NULLs compare equal to NULLs.
    """
    if len(left_cols) != len(right_cols) or not left_cols:
        raise GDKError("rows_membership needs matching non-empty column lists")
    nright = len(right_cols[0]) if right_cols else 0
    right_keys = set()
    for pos in range(nright):
        right_keys.add(
            tuple(
                None if col.mask is not None and col.mask[pos] else col.values[pos]
                for col in right_cols
            )
        )
    nleft = len(left_cols[0])
    out = np.zeros(nleft, dtype=np.bool_)
    for pos in range(nleft):
        key = tuple(
            None if col.mask is not None and col.mask[pos] else col.values[pos]
            for col in left_cols
        )
        out[pos] = key in right_keys
    return out
