"""Typed columns with explicit NULL masks.

A :class:`Column` is the physical payload of a BAT tail: a homogeneous
numpy array plus an optional boolean mask marking NULL positions
(``True`` means NULL).  Columns are the unit all kernel operators work
on; BATs merely pair a column with a void head (see :mod:`repro.gdk.bat`).

Columns are *immutable by convention*: kernel operators return fresh
columns; in-place mutation is confined to :meth:`Column.replace` and
:meth:`Column.append`, which the update machinery uses deliberately.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import NUMPY_DTYPE, Atom, coerce_scalar


class Column:
    """A homogeneous vector of one atom type with optional NULLs."""

    __slots__ = ("atom", "values", "mask")

    def __init__(self, atom: Atom, values: np.ndarray, mask: np.ndarray | None = None):
        expected = NUMPY_DTYPE[atom]
        if not isinstance(values, np.ndarray):
            raise GDKError("Column values must be a numpy array")
        if values.dtype != expected:
            values = values.astype(expected)
        if mask is not None:
            if mask.shape != values.shape:
                raise GDKError("null mask shape differs from values shape")
            if mask.dtype != np.bool_:
                mask = mask.astype(np.bool_)
            if not mask.any():
                mask = None
        self.atom = atom
        self.values = values
        self.mask = mask

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_pylist(cls, atom: Atom, items: Sequence[Any]) -> "Column":
        """Build a column from Python scalars; ``None`` entries become NULL."""
        n = len(items)
        mask = np.zeros(n, dtype=np.bool_)
        if atom is Atom.STR:
            values = np.empty(n, dtype=object)
            for i, item in enumerate(items):
                if item is None:
                    mask[i] = True
                    values[i] = ""
                else:
                    values[i] = coerce_scalar(item, atom)
        else:
            values = np.zeros(n, dtype=NUMPY_DTYPE[atom])
            for i, item in enumerate(items):
                if item is None:
                    mask[i] = True
                else:
                    values[i] = coerce_scalar(item, atom)
        return cls(atom, values, mask if mask.any() else None)

    @classmethod
    def empty(cls, atom: Atom) -> "Column":
        """A zero-length column of the given atom."""
        return cls(atom, np.empty(0, dtype=NUMPY_DTYPE[atom]))

    @classmethod
    def constant(cls, atom: Atom, value: Any, count: int) -> "Column":
        """A column of *count* copies of one scalar (or NULL)."""
        if count < 0:
            raise GDKError("negative column length")
        if value is None:
            return cls.nulls(atom, count)
        coerced = coerce_scalar(value, atom)
        values = np.full(count, coerced, dtype=NUMPY_DTYPE[atom])
        return cls(atom, values)

    @classmethod
    def nulls(cls, atom: Atom, count: int) -> "Column":
        """A column of *count* NULLs."""
        if atom is Atom.STR:
            values = np.full(count, "", dtype=object)
        else:
            values = np.zeros(count, dtype=NUMPY_DTYPE[atom])
        mask = np.ones(count, dtype=np.bool_)
        return cls(atom, values, mask if count else None)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.to_pylist())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Column):
            return NotImplemented
        return (
            self.atom is other.atom
            and len(self) == len(other)
            and self.to_pylist() == other.to_pylist()
        )

    def __hash__(self) -> int:  # columns are not hashable (mutable payload)
        raise TypeError("Column objects are unhashable")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        preview = ", ".join(repr(v) for v in self.to_pylist()[:8])
        suffix = ", ..." if len(self) > 8 else ""
        return f"Column({self.atom.value}, [{preview}{suffix}], n={len(self)})"

    # ------------------------------------------------------------------
    # null accounting
    # ------------------------------------------------------------------
    @property
    def has_nulls(self) -> bool:
        """True when at least one entry is NULL."""
        return self.mask is not None

    def null_count(self) -> int:
        """Number of NULL entries."""
        return 0 if self.mask is None else int(self.mask.sum())

    def validity(self) -> np.ndarray:
        """Boolean array, True where the entry is NOT NULL."""
        if self.mask is None:
            return np.ones(len(self), dtype=np.bool_)
        return ~self.mask

    def effective_mask(self) -> np.ndarray:
        """Boolean array, True where the entry IS NULL (always materialised)."""
        if self.mask is None:
            return np.zeros(len(self), dtype=np.bool_)
        return self.mask

    # ------------------------------------------------------------------
    # element access / conversion
    # ------------------------------------------------------------------
    def get(self, index: int) -> Any:
        """Python value at *index*; ``None`` for NULL."""
        if index < 0 or index >= len(self):
            raise GDKError(f"column index {index} out of range [0,{len(self)})")
        if self.mask is not None and self.mask[index]:
            return None
        value = self.values[index]
        if self.atom is Atom.STR:
            return str(value)
        if self.atom is Atom.BIT:
            return bool(value)
        if self.atom is Atom.DBL:
            return float(value)
        return int(value)

    def to_pylist(self) -> list[Any]:
        """Whole column as a list of Python scalars (``None`` for NULL)."""
        if self.atom is Atom.STR:
            out: list[Any] = [str(v) for v in self.values]
        elif self.atom is Atom.BIT:
            out = [bool(v) for v in self.values]
        elif self.atom is Atom.DBL:
            out = [float(v) for v in self.values]
        else:
            out = [int(v) for v in self.values]
        if self.mask is not None:
            for i in np.flatnonzero(self.mask):
                out[i] = None
        return out

    def to_numpy(self, null_value: Any = None) -> np.ndarray:
        """Values array with NULL positions replaced.

        Numeric atoms default to ``numpy.nan`` (widening to float64) when
        *null_value* is None; other atoms require an explicit filler.
        """
        if self.mask is None:
            return self.values.copy()
        if null_value is None:
            if self.atom in (Atom.INT, Atom.LNG, Atom.DBL, Atom.OID):
                out = self.values.astype(np.float64)
                out[self.mask] = np.nan
                return out
            raise GDKError(f"need an explicit null_value for {self.atom} columns")
        out = self.values.copy()
        out[self.mask] = null_value
        return out

    # ------------------------------------------------------------------
    # structural operations
    # ------------------------------------------------------------------
    def take(self, positions: np.ndarray) -> "Column":
        """Gather entries at *positions* (the kernel's fetch-join)."""
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) and (positions.min() < 0 or positions.max() >= len(self)):
            raise GDKError("take: position out of range")
        values = self.values[positions]
        mask = self.mask[positions] if self.mask is not None else None
        return Column(self.atom, values, mask)

    def take_with_invalid(self, positions: np.ndarray) -> "Column":
        """Gather like :meth:`take`, but positions ``< 0`` yield NULL.

        This implements the outer-join style fetch used for holes.
        """
        positions = np.asarray(positions, dtype=np.int64)
        invalid = positions < 0
        if len(positions) and len(self) == 0:
            # Fetching from an empty column: every position must be
            # invalid (outer-join misses); the result is all NULL.
            if not invalid.all():
                raise GDKError("take_with_invalid on empty column")
            return Column.nulls(self.atom, len(positions))
        safe = np.where(invalid, 0, positions)
        if len(safe) and safe.max() >= len(self):
            raise GDKError("take_with_invalid: position out of range")
        values = self.values[safe] if len(self) else self.values[:0]
        mask = invalid.copy()
        if self.mask is not None and len(self):
            mask |= self.mask[safe]
        return Column(self.atom, values, mask)

    def slice(self, start: int, stop: int) -> "Column":
        """Contiguous sub-column [start, stop)."""
        start = max(0, start)
        stop = min(len(self), stop)
        values = self.values[start:stop]
        mask = self.mask[start:stop] if self.mask is not None else None
        return Column(self.atom, values.copy(), None if mask is None else mask.copy())

    def view_slice(self, start: int, stop: int) -> "Column":
        """Zero-copy window [start, stop) sharing the payload arrays.

        Used by ``mat.partition``: a basic slice of a memory-mapped
        payload stays a :class:`numpy.memmap`, so an mmap-backed
        fragment only pages in the window it actually scans.
        Dictionary-encoded columns override this to slice their codes
        without decoding.
        """
        mask = self.mask[start:stop] if self.mask is not None else None
        return Column(self.atom, self.values[start:stop], mask)

    def concat(self, other: "Column") -> "Column":
        """Concatenation of two columns of the same atom."""
        if self.atom is not other.atom:
            raise GDKError(f"concat of {self.atom} and {other.atom}")
        values = np.concatenate([self.values, other.values])
        if self.mask is None and other.mask is None:
            mask = None
        else:
            mask = np.concatenate([self.effective_mask(), other.effective_mask()])
        return Column(self.atom, values, mask)

    def copy(self) -> "Column":
        """Deep copy."""
        return Column(
            self.atom,
            self.values.copy(),
            None if self.mask is None else self.mask.copy(),
        )

    def replace(self, positions: np.ndarray, replacement: "Column") -> "Column":
        """New column with *positions* overwritten by *replacement* entries.

        Mirrors MonetDB's ``BATreplace``: ``len(positions)`` must equal
        ``len(replacement)``.
        """
        if replacement.atom is not self.atom:
            raise GDKError(f"replace with {replacement.atom} into {self.atom}")
        positions = np.asarray(positions, dtype=np.int64)
        if len(positions) != len(replacement):
            raise GDKError("replace: position/value length mismatch")
        if len(positions) and (positions.min() < 0 or positions.max() >= len(self)):
            raise GDKError("replace: position out of range")
        values = self.values.copy()
        values[positions] = replacement.values
        mask = self.effective_mask().copy()
        mask[positions] = replacement.effective_mask()
        return Column(self.atom, values, mask if mask.any() else None)

    def append(self, other: "Column") -> "Column":
        """Alias of :meth:`concat` (MonetDB's BATappend)."""
        return self.concat(other)

    def fill_nulls(self, value: Any) -> "Column":
        """New column with every NULL replaced by *value*."""
        if self.mask is None:
            return self.copy()
        coerced = coerce_scalar(value, self.atom)
        values = self.values.copy()
        values[self.mask] = coerced
        return Column(self.atom, values)

    # ------------------------------------------------------------------
    # casting
    # ------------------------------------------------------------------
    def cast(self, atom: Atom) -> "Column":
        """Convert the column to another atom type (NULLs preserved)."""
        if atom is self.atom:
            return self.copy()
        mask = None if self.mask is None else self.mask.copy()
        if atom is Atom.STR:
            items = [None if v is None else str(v) for v in self.to_pylist()]
            return Column.from_pylist(Atom.STR, items)
        if self.atom is Atom.STR:
            return Column.from_pylist(
                atom, [None if v is None else coerce_scalar(v, atom) for v in self.to_pylist()]
            )
        if atom in (Atom.INT, Atom.LNG, Atom.OID):
            if self.atom is Atom.DBL:
                safe = np.where(np.isfinite(self.values), self.values, 0.0)
                values = np.trunc(safe).astype(NUMPY_DTYPE[atom])
                bad = ~np.isfinite(self.values)
                if bad.any():
                    mask = (mask | bad) if mask is not None else bad
            else:
                values = self.values.astype(NUMPY_DTYPE[atom])
            return Column(atom, values, mask)
        if atom is Atom.DBL:
            return Column(atom, self.values.astype(np.float64), mask)
        if atom is Atom.BIT:
            return Column(atom, self.values.astype(np.bool_), mask)
        raise GDKError(f"unsupported cast {self.atom} -> {atom}")


def columns_aligned(columns: Iterable[Column]) -> int:
    """Assert all columns share one length and return it."""
    lengths = {len(c) for c in columns}
    if not lengths:
        return 0
    if len(lengths) != 1:
        raise GDKError(f"misaligned columns: lengths {sorted(lengths)}")
    return lengths.pop()
