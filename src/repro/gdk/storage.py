"""Out-of-core storage accounting and knobs.

Central switchboard of the storage engine introduced with the
mmap/zone-map/dictionary work:

* the ``REPRO_STORAGE_MMAP`` knob — ``"1"`` forces lazy
  :class:`numpy.memmap` payload loading, ``"0"`` forces eager reads,
  and the default ``"auto"`` memory-maps any payload file at or above
  ``REPRO_MMAP_THRESHOLD_BYTES`` (default 1 MiB);
* the global *fault* / *prune* counters behind the
  ``fragments_pruned`` / ``bytes_faulted`` fields of
  :class:`~repro.mal.interpreter.ExecutionStats` — kernels report
  here, the interpreter snapshots deltas around each program run;
* the cardinality/row thresholds of the dictionary encoder
  (:mod:`repro.gdk.dictenc`) and the zone-map granularity
  (:mod:`repro.gdk.zonemap`).

Counters are process-global and lock-protected: concurrent sessions
both add to them, so a single run's delta is exact only when one
program executes at a time (true for every in-suite assertion; the
profile stays a useful aggregate under concurrency).
"""

from __future__ import annotations

import threading

import numpy as np

from repro import knobs

#: default payload size (bytes) above which "auto" mode memory-maps.
DEFAULT_MMAP_THRESHOLD = 1 << 20

#: default minimum rows before the dictionary encoder considers a column.
DEFAULT_DICT_MIN_ROWS = 4096

#: default rows per zone-map zone.
DEFAULT_ZONE_ROWS = 4096

_lock = threading.Lock()
_fragments_pruned = 0
_bytes_faulted = 0


# ----------------------------------------------------------------------
# knob resolution
# ----------------------------------------------------------------------
def storage_mmap_mode() -> str:
    """The ``REPRO_STORAGE_MMAP`` knob: ``"on"``, ``"off"`` or ``"auto"``."""
    raw = (knobs.raw("REPRO_STORAGE_MMAP") or "auto").strip().lower()
    if raw in ("1", "on", "true", "yes"):
        return "on"
    if raw in ("0", "off", "false", "no"):
        return "off"
    return "auto"


def mmap_threshold_bytes() -> int:
    """Payload size at which ``auto`` mode switches to memory-mapping."""
    raw = knobs.raw("REPRO_MMAP_THRESHOLD_BYTES")
    if not raw:
        return DEFAULT_MMAP_THRESHOLD
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_MMAP_THRESHOLD


def should_mmap(nbytes: int) -> bool:
    """Whether a payload file of *nbytes* should load as a memmap view."""
    mode = storage_mmap_mode()
    if mode == "on":
        return True
    if mode == "off":
        return False
    return nbytes >= mmap_threshold_bytes()


def storage_token() -> tuple:
    """Plan-cache key component for the storage knobs.

    Included in :meth:`Connection._cache_key` so flipping the mmap knob
    (or its threshold) between sessions of one database never reuses a
    plan profiled/validated under the other storage mode.
    """
    return (storage_mmap_mode(), mmap_threshold_bytes())


def zonemaps_enabled() -> bool:
    """``REPRO_ZONEMAPS`` (default on) — runtime zone-pruning ablation.

    The optimizer always emits the zone-aware select twins; this knob
    only disables their short-circuit, so toggling it never invalidates
    a cached plan (results are byte-identical either way).
    """
    raw = (knobs.raw("REPRO_ZONEMAPS") or "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


def dict_min_rows() -> int:
    """Minimum column length before in-memory dictionary encoding."""
    raw = knobs.raw("REPRO_DICT_MIN_ROWS")
    if not raw:
        return DEFAULT_DICT_MIN_ROWS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_DICT_MIN_ROWS


def dict_enabled() -> bool:
    """``REPRO_DICT`` (default on) — dictionary-encoding ablation."""
    raw = (knobs.raw("REPRO_DICT") or "1").strip().lower()
    return raw not in ("0", "off", "false", "no")


def zone_rows() -> int:
    """Rows per zone of a zone map (``REPRO_ZONE_ROWS``)."""
    raw = knobs.raw("REPRO_ZONE_ROWS")
    if not raw:
        return DEFAULT_ZONE_ROWS
    try:
        return max(1, int(raw))
    except ValueError:
        return DEFAULT_ZONE_ROWS


# ----------------------------------------------------------------------
# fault / prune accounting
# ----------------------------------------------------------------------
def note_pruned(count: int = 1) -> None:
    """Record *count* fragments answered from zone maps without a scan."""
    global _fragments_pruned
    with _lock:
        _fragments_pruned += count


def note_faulted(nbytes: int) -> None:
    """Record *nbytes* of memory-mapped payload touched by a kernel."""
    global _bytes_faulted
    with _lock:
        _bytes_faulted += nbytes


def note_scan(array) -> None:
    """Account a full scan of *array* if it is a memmap view.

    Fragments of an mmap-backed column are basic slices and therefore
    still :class:`numpy.memmap` instances, so per-fragment scans charge
    only the window they page in — eager (in-core) arrays charge
    nothing, which is what makes ``bytes_faulted`` a measure of I/O,
    not of work.
    """
    if isinstance(array, np.memmap):
        note_faulted(int(array.nbytes))


def counters() -> tuple[int, int]:
    """Snapshot ``(fragments_pruned, bytes_faulted)``."""
    with _lock:
        return _fragments_pruned, _bytes_faulted


def reset_counters() -> None:
    """Zero both counters (test isolation)."""
    global _fragments_pruned, _bytes_faulted
    with _lock:
        _fragments_pruned = 0
        _bytes_faulted = 0
