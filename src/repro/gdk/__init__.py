"""GDK — the column-at-a-time kernel underneath everything.

This package reproduces the storage and operator layer of MonetDB that
the paper builds on: BATs ("Binary Association Tables", Boncz 2002)
with void heads and typed tails, candidate lists, and bulk operators
(select / join / group / aggregate / sort / calc).
"""

from repro.gdk.atoms import Atom, atom_for_sql_type
from repro.gdk.bat import BAT, assert_aligned
from repro.gdk.column import Column

__all__ = ["Atom", "BAT", "Column", "atom_for_sql_type", "assert_aligned"]
