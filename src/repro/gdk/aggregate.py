"""Grouped and scalar aggregation kernels (MAL module ``aggr``).

Aggregates ignore NULL inputs — the paper relies on this for tiling:
"Holes and cells outside the array dimension ranges are ignored by the
aggregation functions" (Section 2).  A group whose every input is NULL
aggregates to NULL (COUNT is the exception and yields 0).

Rows whose group id is negative belong to no group (tiling uses this
for cells outside every tile) and are skipped entirely.

All grouped kernels are NumPy-vectorized segmented reductions: rows are
sorted by (group id, value) once and per-group results read off the
segment boundaries — no per-row Python loop.  The original loop
implementations survive with a ``_reference`` suffix as property-test
oracles and benchmark baselines.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom, canon_key, common_numeric, is_numeric
from repro.gdk.column import Column
from repro.gdk.group import Grouping

#: aggregate name -> result atom policy ("same", "dbl", "lng").
AGGREGATES = {
    "sum": "widen",
    "prod": "widen",
    "avg": "dbl",
    "min": "same",
    "max": "same",
    "count": "lng",
}


def _prepare(column: Column, grouping: Grouping) -> tuple[np.ndarray, np.ndarray, int]:
    """Valid (non-null, grouped) positions, their group ids, ngroups."""
    if len(column) != len(grouping.groups):
        raise GDKError("aggregate input not aligned with grouping")
    ids = grouping.groups.values
    valid = ids >= 0
    valid &= column.validity()
    positions = np.flatnonzero(valid)
    return positions, ids[positions], grouping.ngroups


def _group_value_sort(
    ids: np.ndarray, values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Rows sorted by (group id, value); object (str) values supported."""
    by_value = np.argsort(values, kind="stable")
    by_group = np.argsort(ids[by_value], kind="stable")
    order = by_value[by_group]
    return ids[order], values[order]


def _segment_starts(sorted_ids: np.ndarray) -> np.ndarray:
    return np.flatnonzero(np.r_[True, sorted_ids[1:] != sorted_ids[:-1]])


def _numeric_result_atom(name: str, atom: Atom) -> Atom:
    policy = AGGREGATES[name]
    if policy == "dbl":
        return Atom.DBL
    if policy == "lng":
        return Atom.LNG
    if policy == "widen":
        if atom is Atom.DBL:
            return Atom.DBL
        return common_numeric(atom, Atom.LNG)
    return atom


def grouped_count(column: Column, grouping: Grouping) -> Column:
    """Per-group count of non-NULL entries."""
    positions, ids, ngroups = _prepare(column, grouping)
    counts = np.bincount(ids, minlength=ngroups).astype(np.int64)
    return Column(Atom.LNG, counts)


def grouped_count_star(grouping: Grouping) -> Column:
    """Per-group row count (COUNT(*)): NULLs included."""
    ids = grouping.groups.values
    counts = np.bincount(ids[ids >= 0], minlength=grouping.ngroups).astype(np.int64)
    return Column(Atom.LNG, counts)


def grouped_sum(column: Column, grouping: Grouping) -> Column:
    """Per-group sum; empty groups yield NULL."""
    if not is_numeric(column.atom):
        raise GDKError(f"sum over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions]
    if column.atom is Atom.DBL:
        sums = np.bincount(ids, weights=values, minlength=ngroups)
    else:
        sums = np.bincount(ids, weights=values.astype(np.float64), minlength=ngroups)
        sums = np.round(sums)
    counts = np.bincount(ids, minlength=ngroups)
    out_atom = _numeric_result_atom("sum", column.atom)
    out = Column(out_atom, sums.astype(np.float64) if out_atom is Atom.DBL else sums.astype(np.int64),
                 mask=(counts == 0))
    return out


def grouped_prod(column: Column, grouping: Grouping) -> Column:
    """Per-group product; empty groups yield NULL."""
    if not is_numeric(column.atom):
        raise GDKError(f"prod over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    prods = np.ones(ngroups, dtype=np.float64)
    np.multiply.at(prods, ids, values)
    counts = np.bincount(ids, minlength=ngroups)
    out_atom = _numeric_result_atom("prod", column.atom)
    data = prods if out_atom is Atom.DBL else np.round(prods).astype(np.int64)
    return Column(out_atom, data, mask=(counts == 0))


def grouped_avg(column: Column, grouping: Grouping) -> Column:
    """Per-group arithmetic mean as double; empty groups yield NULL."""
    if not is_numeric(column.atom):
        raise GDKError(f"avg over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    sums = np.bincount(ids, weights=values, minlength=ngroups)
    counts = np.bincount(ids, minlength=ngroups)
    with np.errstate(invalid="ignore", divide="ignore"):
        means = sums / counts
    return Column(Atom.DBL, np.where(counts > 0, means, 0.0), mask=(counts == 0))


def _grouped_extremum(column: Column, grouping: Grouping, largest: bool) -> Column:
    """Per-group min/max as a segmented reduction (no per-row loop)."""
    positions, ids, ngroups = _prepare(column, grouping)
    counts = np.bincount(ids, minlength=ngroups)
    values = column.values[positions]
    if column.atom is Atom.STR:
        # Strings: sort by (group, value) and read the segment edges.
        values = values.astype(object)
        out: np.ndarray = np.full(ngroups, "", dtype=object)
        if len(values):
            sorted_ids, sorted_values = _group_value_sort(ids, values)
            starts = _segment_starts(sorted_ids)
            ends = np.r_[starts[1:], len(sorted_ids)] - 1
            pick = ends if largest else starts
            out[sorted_ids[starts]] = sorted_values[pick]
        return Column(column.atom, out, mask=(counts == 0))
    if column.atom is Atom.DBL:
        fill = -np.inf if largest else np.inf
        acc = np.full(ngroups, fill, dtype=np.float64)
    else:
        info = np.iinfo(column.values.dtype)
        fill = info.min if largest else info.max
        acc = np.full(ngroups, fill, dtype=column.values.dtype)
    if largest:
        np.maximum.at(acc, ids, values)
    else:
        np.minimum.at(acc, ids, values)
    acc = np.where(counts > 0, acc, 0)
    return Column(column.atom, acc.astype(column.values.dtype), mask=(counts == 0))


def grouped_min(column: Column, grouping: Grouping) -> Column:
    """Per-group minimum; empty groups yield NULL."""
    return _grouped_extremum(column, grouping, largest=False)


def grouped_max(column: Column, grouping: Grouping) -> Column:
    """Per-group maximum; empty groups yield NULL."""
    return _grouped_extremum(column, grouping, largest=True)


GROUPED_DISPATCH = {
    "sum": grouped_sum,
    "prod": grouped_prod,
    "avg": grouped_avg,
    "min": grouped_min,
    "max": grouped_max,
    "count": grouped_count,
}


def grouped(name: str, column: Column, grouping: Grouping) -> Column:
    """Dispatch a grouped aggregate by name."""
    try:
        fn = GROUPED_DISPATCH[name.lower()]
    except KeyError:
        raise GDKError(f"unknown aggregate {name!r}") from None
    return fn(column, grouping)


# ----------------------------------------------------------------------
# scalar (whole-column) aggregates
# ----------------------------------------------------------------------
def scalar_count(column: Column) -> int:
    """COUNT of non-NULL entries."""
    return len(column) - column.null_count()


def scalar_sum(column: Column) -> Any:
    """SUM over the column; NULL when no non-NULL entry exists."""
    valid = column.validity()
    if not valid.any():
        return None
    values = column.values[valid]
    total = values.astype(np.float64).sum()
    if column.atom is Atom.DBL:
        return float(total)
    return int(round(total))


def scalar_avg(column: Column) -> Any:
    """AVG over the column; NULL when no non-NULL entry exists."""
    valid = column.validity()
    if not valid.any():
        return None
    return float(column.values[valid].astype(np.float64).mean())


def scalar_min(column: Column) -> Any:
    """MIN over the column; NULL when no non-NULL entry exists."""
    valid = column.validity()
    if not valid.any():
        return None
    values = column.values[valid]
    if column.atom is Atom.STR:
        return str(values.astype(object).min())
    out = values.min()
    return float(out) if column.atom is Atom.DBL else int(out)


def scalar_max(column: Column) -> Any:
    """MAX over the column; NULL when no non-NULL entry exists."""
    valid = column.validity()
    if not valid.any():
        return None
    values = column.values[valid]
    if column.atom is Atom.STR:
        return str(values.astype(object).max())
    out = values.max()
    return float(out) if column.atom is Atom.DBL else int(out)


SCALAR_DISPATCH = {
    "count": scalar_count,
    "sum": scalar_sum,
    "avg": scalar_avg,
    "min": scalar_min,
    "max": scalar_max,
}


def scalar(name: str, column: Column) -> Any:
    """Dispatch a whole-column aggregate by name."""
    try:
        fn = SCALAR_DISPATCH[name.lower()]
    except KeyError:
        raise GDKError(f"unknown aggregate {name!r}") from None
    return fn(column)


def grouped_count_distinct(column: Column, grouping: Grouping) -> Column:
    """Per-group count of distinct non-NULL values (COUNT(DISTINCT x))."""
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions]
    if column.atom is Atom.STR:
        values = values.astype(object)
    if not len(values):
        return Column(Atom.LNG, np.zeros(ngroups, dtype=np.int64))
    sorted_ids, sorted_values = _group_value_sort(ids, values)
    changed = sorted_values[1:] != sorted_values[:-1]
    if sorted_values.dtype.kind == "f":
        # NaN is one distinct value, as in np.unique / the group kernel.
        changed &= ~(np.isnan(sorted_values[1:]) & np.isnan(sorted_values[:-1]))
    fresh = np.r_[True, (sorted_ids[1:] != sorted_ids[:-1]) | changed]
    counts = np.bincount(sorted_ids[fresh], minlength=ngroups).astype(np.int64)
    return Column(Atom.LNG, counts)


def scalar_count_distinct(column: Column) -> int:
    """COUNT(DISTINCT x) over a whole column."""
    valid = column.validity()
    values = column.values[valid]
    if column.atom is Atom.STR:
        values = values.astype(object)
    return len(np.unique(values))


def grouped_stddev(column: Column, grouping: Grouping) -> Column:
    """Per-group sample standard deviation; NULL for groups with < 2 values.

    Two-pass (mean, then squared deviations) for numerical stability —
    the one-pass sum-of-squares formula cancels catastrophically for
    large means.
    """
    if not is_numeric(column.atom):
        raise GDKError(f"stddev over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    counts = np.bincount(ids, minlength=ngroups)
    sums = np.bincount(ids, weights=values, minlength=ngroups)
    safe_counts = np.where(counts > 0, counts, 1)
    means = sums / safe_counts
    deviations = values - means[ids] if len(values) else values
    squares = np.bincount(ids, weights=deviations * deviations, minlength=ngroups)
    divisors = np.where(counts > 1, counts - 1, 1)
    variance = np.clip(squares / divisors, 0.0, None)
    return Column(Atom.DBL, np.sqrt(variance), mask=(counts < 2))


def grouped_median(column: Column, grouping: Grouping) -> Column:
    """Per-group median of non-NULL values; empty groups yield NULL."""
    if not is_numeric(column.atom):
        raise GDKError(f"median over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    counts = np.bincount(ids, minlength=ngroups)
    mask = counts == 0
    out = np.zeros(ngroups, dtype=np.float64)
    if len(values):
        order = np.lexsort((values, ids))
        sorted_values = values[order]
        # Groups appear in id order once sorted, so group g starts at
        # sum(counts[:g]) and its median sits at the middle offsets.
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        lo = np.where(mask, 0, starts + (counts - 1) // 2)
        hi = np.where(mask, 0, starts + counts // 2)
        medians = (sorted_values[lo] + sorted_values[hi]) / 2.0
        # NaN poisons its group's median, as np.median does.
        has_nan = np.bincount(ids, weights=np.isnan(values), minlength=ngroups) > 0
        medians = np.where(has_nan, np.nan, medians)
        out = np.where(mask, 0.0, medians)
    return Column(Atom.DBL, out, mask)


# ----------------------------------------------------------------------
# partial-aggregate merging (mitosis/mergetable fragment rejoin)
# ----------------------------------------------------------------------
#: aggregates whose per-fragment partials can be merged into the exact
#: global result.  ``avg`` decomposes into (sum, count) partials and is
#: handled by :func:`merge_avg`; stddev/median/count-distinct are not
#: decomposable and force the optimizer to fall back to row-level
#: grouping.
MERGEABLE = {"sum", "prod", "min", "max", "count"}


def merge_partials(name: str, partials: Column, grouping: Grouping) -> Column:
    """Fold per-fragment partial aggregates into the global per-group result.

    ``partials`` holds one value per (fragment, local group); *grouping*
    maps each of those rows to its global group.  A NULL partial means
    the fragment saw only NULL inputs for that group and contributes
    nothing; a global group whose partials are all NULL aggregates to
    NULL — exactly the semantics of the row-level kernels, so merging
    reduces to running the matching grouped kernel over the partials:
    sum of sums, min of mins, max of maxes, and (for COUNT) sum of
    counts.
    """
    name = name.lower()
    if name not in MERGEABLE:
        raise GDKError(f"aggregate {name!r} has no partial merge")
    if name == "count":
        return grouped_sum(partials, grouping)
    return GROUPED_DISPATCH[name](partials, grouping)


def merge_avg(sums: Column, counts: Column, grouping: Grouping) -> Column:
    """Merge (sum, count) partials into the global per-group mean.

    AVG is not directly mergeable (an average of fragment averages
    weights fragments equally), so mitosis emits per-fragment sum and
    count partials and this kernel recombines them: global mean =
    Σ partial sums / Σ partial counts, NULL where the count is zero.
    """
    if len(sums) != len(counts) or len(sums) != len(grouping.groups):
        raise GDKError("merge_avg: misaligned partial columns")
    merged_sums = grouped_sum(sums, grouping)
    merged_counts = grouped_sum(counts, grouping)
    totals = merged_sums.values.astype(np.float64)
    divisors = merged_counts.values.astype(np.float64)
    empty = divisors <= 0
    if merged_counts.mask is not None:
        empty |= merged_counts.mask
    with np.errstate(invalid="ignore", divide="ignore"):
        means = totals / np.where(empty, 1.0, divisors)
    return Column(Atom.DBL, np.where(empty, 0.0, means), mask=empty)


def first_occurrence(groups: Column, ngroups: int) -> np.ndarray:
    """First row position of each dense group id, in group-id order.

    Reconstructs the *extents* of a grouping from its row-aligned group
    ids — the fallback the mergetable optimizer uses when a consumer
    needs global extents that the fragmented grouping never built.
    """
    ids = groups.values
    out = np.full(ngroups, len(ids), dtype=np.int64)
    if len(ids):
        valid = ids >= 0
        np.minimum.at(out, ids[valid], np.flatnonzero(valid))
    if (out >= len(ids)).any():
        raise GDKError("first_occurrence: group id without a row")
    return out


def scalar_stddev(column: Column) -> Any:
    """Sample standard deviation; NULL with fewer than two values."""
    valid = column.validity()
    values = column.values[valid].astype(np.float64)
    if len(values) < 2:
        return None
    return float(np.std(values, ddof=1))


def scalar_median(column: Column) -> Any:
    """Median of non-NULL values; NULL when none exist."""
    valid = column.validity()
    values = column.values[valid].astype(np.float64)
    if not len(values):
        return None
    return float(np.median(values))


GROUPED_DISPATCH["stddev"] = grouped_stddev
GROUPED_DISPATCH["median"] = grouped_median
SCALAR_DISPATCH["stddev"] = scalar_stddev
SCALAR_DISPATCH["median"] = scalar_median


# ----------------------------------------------------------------------
# reference (loop) implementations — property-test oracles only
# ----------------------------------------------------------------------
def _grouped_extremum_reference(
    column: Column, grouping: Grouping, largest: bool
) -> Column:
    """Tuple-at-a-time min/max (the seed implementation)."""
    positions, ids, ngroups = _prepare(column, grouping)
    counts = np.bincount(ids, minlength=ngroups)
    values = column.values[positions]
    best: list[Any] = [None] * ngroups
    for gid, value in zip(ids.tolist(), values.tolist()):
        if best[gid] is None or ((value > best[gid]) == largest and value != best[gid]):
            best[gid] = value
    if column.atom is Atom.STR:
        out: np.ndarray = np.array(
            ["" if b is None else b for b in best], dtype=object
        )
    else:
        out = np.array(
            [0 if b is None else b for b in best], dtype=column.values.dtype
        )
    return Column(column.atom, out, mask=(counts == 0))


def grouped_min_reference(column: Column, grouping: Grouping) -> Column:
    return _grouped_extremum_reference(column, grouping, largest=False)


def grouped_max_reference(column: Column, grouping: Grouping) -> Column:
    return _grouped_extremum_reference(column, grouping, largest=True)


def grouped_count_distinct_reference(column: Column, grouping: Grouping) -> Column:
    """Tuple-at-a-time COUNT(DISTINCT x) (the seed implementation)."""
    positions, ids, ngroups = _prepare(column, grouping)
    seen: list[set] = [set() for _ in range(ngroups)]
    values = column.values[positions]
    for gid, value in zip(ids.tolist(), values.tolist()):
        seen[gid].add(canon_key(value))
    counts = np.array([len(s) for s in seen], dtype=np.int64)
    return Column(Atom.LNG, counts)


def grouped_median_reference(column: Column, grouping: Grouping) -> Column:
    """Tuple-at-a-time median (the seed implementation)."""
    if not is_numeric(column.atom):
        raise GDKError(f"median over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    buckets: list[list[float]] = [[] for _ in range(ngroups)]
    for gid, value in zip(ids.tolist(), values.tolist()):
        buckets[gid].append(value)
    out = np.zeros(ngroups, dtype=np.float64)
    mask = np.zeros(ngroups, dtype=np.bool_)
    for gid, bucket in enumerate(buckets):
        if bucket:
            out[gid] = float(np.median(bucket))
        else:
            mask[gid] = True
    return Column(Atom.DBL, out, mask)


def grouped_stddev_reference(column: Column, grouping: Grouping) -> Column:
    """Tuple-at-a-time sample stddev (the seed implementation)."""
    if not is_numeric(column.atom):
        raise GDKError(f"stddev over non-numeric column {column.atom}")
    positions, ids, ngroups = _prepare(column, grouping)
    values = column.values[positions].astype(np.float64)
    buckets: list[list[float]] = [[] for _ in range(ngroups)]
    for gid, value in zip(ids.tolist(), values.tolist()):
        buckets[gid].append(value)
    out = np.zeros(ngroups, dtype=np.float64)
    mask = np.zeros(ngroups, dtype=np.bool_)
    for gid, bucket in enumerate(buckets):
        if len(bucket) < 2:
            mask[gid] = True
        else:
            out[gid] = float(np.std(np.asarray(bucket), ddof=1))
    return Column(Atom.DBL, out, mask)
