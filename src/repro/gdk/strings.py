"""String kernels (MAL module ``batstr`` territory).

Bulk string operations with NULL propagation: case mapping, length,
substring, trim, and SQL LIKE matching (``%`` any sequence, ``_`` any
single character, with ``\\`` escaping).
"""

from __future__ import annotations

import re
from functools import lru_cache

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column


def _require_str(column: Column, operation: str) -> None:
    if column.atom is not Atom.STR:
        raise GDKError(f"{operation} needs a string column, got {column.atom}")


def lower(column: Column) -> Column:
    """Lower-case every entry."""
    _require_str(column, "lower")
    values = np.array([s.lower() for s in column.values], dtype=object)
    return Column(Atom.STR, values, column.mask)


def upper(column: Column) -> Column:
    """Upper-case every entry."""
    _require_str(column, "upper")
    values = np.array([s.upper() for s in column.values], dtype=object)
    return Column(Atom.STR, values, column.mask)


def length(column: Column) -> Column:
    """Character length of every entry."""
    _require_str(column, "length")
    values = np.array([len(s) for s in column.values], dtype=np.int32)
    return Column(Atom.INT, values, column.mask)


def trim(column: Column) -> Column:
    """Strip leading/trailing whitespace."""
    _require_str(column, "trim")
    values = np.array([s.strip() for s in column.values], dtype=object)
    return Column(Atom.STR, values, column.mask)


def substring(column: Column, start: int, count: int | None = None) -> Column:
    """SQL SUBSTRING: 1-based *start*, optional length."""
    _require_str(column, "substring")
    begin = max(0, start - 1)
    if count is None:
        values = np.array([s[begin:] for s in column.values], dtype=object)
    else:
        if count < 0:
            raise GDKError("substring length must be non-negative")
        values = np.array(
            [s[begin : begin + count] for s in column.values], dtype=object
        )
    return Column(Atom.STR, values, column.mask)


@lru_cache(maxsize=256)
def _like_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern into an anchored regex."""
    out: list[str] = []
    index = 0
    while index < len(pattern):
        ch = pattern[index]
        if ch == "\\" and index + 1 < len(pattern):
            out.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        index += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def like(column: Column, pattern: str | None) -> Column:
    """SQL LIKE as a bit column (NULL input or pattern stays NULL)."""
    _require_str(column, "like")
    if pattern is None:
        return Column.nulls(Atom.BIT, len(column))
    regex = _like_regex(pattern)
    values = np.array(
        [bool(regex.match(s)) for s in column.values], dtype=np.bool_
    )
    return Column(Atom.BIT, values, column.mask)


def scalar_like(value: str | None, pattern: str | None) -> bool | None:
    """LIKE on scalars (constant folding target)."""
    if value is None or pattern is None:
        return None
    return bool(_like_regex(pattern).match(value))
