"""String kernels (MAL module ``batstr`` territory).

Bulk string operations with NULL propagation: case mapping, length,
substring, trim, and SQL LIKE matching (``%`` any sequence, ``_`` any
single character, with ``\\`` escaping).

Dictionary-encoded inputs (:class:`~repro.gdk.dictenc.DictColumn`)
take a vectorized path: the per-element Python function runs once per
*distinct* value and the result is gathered through the codes — a
2M-row column with 50 distinct values costs 50 Python calls plus one
C-speed gather instead of 2M calls.  Case/trim/substring re-encode
their output (the mapped dictionary is re-canonicalised, since e.g.
``upper`` can merge distinct values), so downstream operators keep
working on codes.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Callable

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.column import Column
from repro.gdk.dictenc import DictColumn


def _require_str(column: Column, operation: str) -> None:
    if column.atom is not Atom.STR:
        raise GDKError(f"{operation} needs a string column, got {column.atom}")


def _map_str(column: Column, transform: Callable[[str], str]) -> Column:
    """Apply a str->str *transform* element-wise, through codes if encoded."""
    if isinstance(column, DictColumn):
        mapped = np.array([transform(s) for s in column.dictionary], dtype=object)
        # The transform can collapse distinct values (upper('a') ==
        # upper('A')), so re-canonicalise to keep the dictionary sorted
        # and duplicate-free.
        dictionary, remap = np.unique(mapped, return_inverse=True)
        codes = remap.astype(np.int32)[np.asarray(column.codes)]
        return DictColumn(Atom.STR, codes, dictionary, column.mask)
    values = np.array([transform(s) for s in column.values], dtype=object)
    return Column(Atom.STR, values, column.mask)


def lower(column: Column) -> Column:
    """Lower-case every entry."""
    _require_str(column, "lower")
    return _map_str(column, str.lower)


def upper(column: Column) -> Column:
    """Upper-case every entry."""
    _require_str(column, "upper")
    return _map_str(column, str.upper)


def length(column: Column) -> Column:
    """Character length of every entry."""
    _require_str(column, "length")
    if isinstance(column, DictColumn):
        per_value = np.array([len(s) for s in column.dictionary], dtype=np.int32)
        values = (
            per_value[np.asarray(column.codes)]
            if len(per_value)
            else np.empty(0, dtype=np.int32)
        )
        return Column(Atom.INT, values, column.mask)
    values = np.array([len(s) for s in column.values], dtype=np.int32)
    return Column(Atom.INT, values, column.mask)


def trim(column: Column) -> Column:
    """Strip leading/trailing whitespace."""
    _require_str(column, "trim")
    return _map_str(column, str.strip)


def substring(column: Column, start: int, count: int | None = None) -> Column:
    """SQL SUBSTRING: 1-based *start*, optional length."""
    _require_str(column, "substring")
    begin = max(0, start - 1)
    if count is None:
        return _map_str(column, lambda s: s[begin:])
    if count < 0:
        raise GDKError("substring length must be non-negative")
    return _map_str(column, lambda s: s[begin : begin + count])


@lru_cache(maxsize=256)
def _like_regex(pattern: str) -> re.Pattern:
    """Translate a SQL LIKE pattern into an anchored regex."""
    out: list[str] = []
    index = 0
    while index < len(pattern):
        ch = pattern[index]
        if ch == "\\" and index + 1 < len(pattern):
            out.append(re.escape(pattern[index + 1]))
            index += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        index += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def scalar_like(value: str | None, pattern: str | None) -> bool | None:
    """Scalar SQL LIKE with NULL propagation (either side NULL → NULL)."""
    if value is None or pattern is None:
        return None
    return bool(_like_regex(pattern).match(value))


def like(column: Column, pattern: str | None) -> Column:
    """SQL LIKE as a bit column (NULL input or pattern stays NULL)."""
    _require_str(column, "like")
    if pattern is None:
        return Column.nulls(Atom.BIT, len(column))
    regex = _like_regex(pattern)
    if isinstance(column, DictColumn):
        per_value = np.array(
            [bool(regex.match(s)) for s in column.dictionary], dtype=np.bool_
        )
        values = (
            per_value[np.asarray(column.codes)]
            if len(per_value)
            else np.empty(0, dtype=np.bool_)
        )
        return Column(Atom.BIT, values, column.mask)
    values = np.array(
        [bool(regex.match(s)) for s in column.values], dtype=np.bool_
    )
    return Column(Atom.BIT, values, column.mask)
