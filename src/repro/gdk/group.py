"""Grouping operators.

``group.group`` / ``group.subgroup`` derive, for a (sequence of)
column(s), a dense *group-id* column plus the group *extents* (one
representative oid per group) — the kernel building blocks of SQL's
GROUP BY.  NULL is a group of its own, as in SQL grouping semantics.

The production kernels are NumPy-vectorized: values are coded through
``np.unique`` and the codes densified to first-appearance order with a
stable sort — no per-row Python loop.  The original tuple-at-a-time
implementations survive as ``group_reference`` / ``subgroup_reference``
for the property-test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom, canon_key as _canon_key
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.gdk.dictenc import DictColumn


@dataclass(frozen=True)
class Grouping:
    """Result of a grouping step.

    Attributes:
        groups: oid column aligned with the input; entry i is the group
            id (0-based, dense) of row i.
        extents: one representative row position per group, in order of
            first appearance.
        histogram: per-group row counts.
    """

    groups: Column
    extents: np.ndarray
    histogram: np.ndarray

    @property
    def ngroups(self) -> int:
        return len(self.extents)


def _value_codes(column: Column) -> np.ndarray:
    """Integer codes: equal (non-NULL) values share a code; NULL is its own.

    Deliberately avoids ``np.unique(return_index=True)``: asking for
    first-occurrence indexes forces a *stable* sort, which measures ~2x
    slower than the default introsort plus a ``np.minimum.at`` pass in
    :func:`_densify_first_appearance`.
    """
    if isinstance(column, DictColumn):
        # The sorted dictionary makes code order value order, so coding
        # the int32 codes yields exactly the codes of the decoded
        # strings — without materialising a single object.
        values = np.asarray(column.codes)
    else:
        values = column.values
        if column.atom is Atom.STR:
            values = values.astype(object)
    mask = column.mask
    if mask is None:
        _, codes = np.unique(values, return_inverse=True)
        return codes.astype(np.int64)
    codes = np.empty(len(column), dtype=np.int64)
    valid = ~mask
    ncodes = 0
    if valid.any():
        uniques, inverse = np.unique(values[valid], return_inverse=True)
        codes[valid] = inverse
        ncodes = len(uniques)
    codes[mask] = ncodes
    return codes


def _densify_first_appearance(
    codes: np.ndarray, dense: bool = False
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Remap codes to dense group ids in first-appearance order.

    Returns ``(ids, extents, histogram)`` with the same contract as
    :class:`Grouping`.  With *dense* the caller guarantees codes already
    cover ``0 .. max`` (as :func:`_value_codes` emits), skipping one
    re-coding pass; without it, codes may be arbitrary non-negative
    int64 (the mixed-radix keys of :func:`subgroup`).
    """
    n = len(codes)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    if not dense:
        _, codes = np.unique(codes, return_inverse=True)
        codes = codes.astype(np.int64)
    ncodes = int(codes.max()) + 1
    firsts = np.full(ncodes, n, dtype=np.int64)
    np.minimum.at(firsts, codes, np.arange(n, dtype=np.int64))
    appearance = np.argsort(firsts, kind="stable")  # over groups, not rows
    rank = np.empty(ncodes, dtype=np.int64)
    rank[appearance] = np.arange(ncodes, dtype=np.int64)
    ids = rank[codes]
    extents = firsts[appearance]
    histogram = np.bincount(ids, minlength=ncodes)
    return ids, extents, histogram.astype(np.int64)


def group(column: Column) -> Grouping:
    """Group rows by one column's values (NULLs form their own group)."""
    ids, extents, histogram = _densify_first_appearance(
        _value_codes(column), dense=True
    )
    return Grouping(Column(Atom.OID, ids), extents, histogram)


def subgroup(column: Column, previous: Grouping) -> Grouping:
    """Refine an existing grouping by an extra column (group.subgroup)."""
    if len(column) != len(previous.groups):
        raise GDKError("subgroup: column not aligned with previous grouping")
    sub_codes = _value_codes(column)
    prev_ids = previous.groups.values
    width = int(sub_codes.max()) + 1 if len(sub_codes) else 1
    combined = prev_ids * width + sub_codes
    ids, extents, histogram = _densify_first_appearance(combined)
    return Grouping(Column(Atom.OID, ids), extents, histogram)


def group_by_columns(columns: list[Column]) -> Grouping:
    """Group by a compound key (chained group/subgroup, as MAL emits)."""
    if not columns:
        raise GDKError("group_by_columns needs at least one column")
    result = group(columns[0])
    for column in columns[1:]:
        result = subgroup(column, result)
    return result


def explicit_grouping(group_ids: np.ndarray, ngroups: int) -> Grouping:
    """Wrap externally computed group ids (used by array tiling).

    Group ids must lie in ``[0, ngroups)``; rows with id ``-1`` belong to
    no group and are dropped from the histogram (their id is remapped to
    an unused trailing group so aggregate kernels can ignore them).
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if len(group_ids) and group_ids.max() >= ngroups:
        raise GDKError("group id out of range")
    histogram = np.bincount(group_ids[group_ids >= 0], minlength=ngroups)
    extents = np.full(ngroups, -1, dtype=np.int64)
    positions = np.flatnonzero(group_ids >= 0)
    if len(positions):
        grouped = group_ids[positions]
        order = np.argsort(grouped, kind="stable")
        sorted_ids = grouped[order]
        seg_starts = np.flatnonzero(
            np.r_[True, sorted_ids[1:] != sorted_ids[:-1]]
        )
        extents[sorted_ids[seg_starts]] = positions[order[seg_starts]]
    return Grouping(Column(Atom.OID, group_ids), extents, histogram)


@dataclass(frozen=True)
class GroupView:
    """A grouping seen only through (row ids, group count).

    The aggregation kernels never touch extents or histograms, so the
    ``aggr.sub*`` operators wrap their explicit group-id inputs in this
    view instead of :func:`explicit_grouping` — skipping a full stable
    sort per aggregate call.  Structurally compatible with
    :class:`Grouping` everywhere only ``groups``/``ngroups`` are read
    (:func:`subgroup` included).
    """

    groups: Column
    ngroups: int


def grouping_view(group_ids: np.ndarray, ngroups: int) -> GroupView:
    """Cheap :class:`GroupView` over externally computed group ids."""
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if len(group_ids) and ngroups >= 0 and group_ids.max() >= ngroups:
        raise GDKError("group id out of range")
    return GroupView(Column(Atom.OID, group_ids), int(ngroups))


def groups_bat(grouping: Grouping, hseqbase: int = 0) -> BAT:
    """The group-id column as a BAT aligned with the grouped input."""
    return BAT(grouping.groups, hseqbase)


# ----------------------------------------------------------------------
# reference (loop) implementations — property-test oracles only
# ----------------------------------------------------------------------
def group_reference(column: Column) -> Grouping:
    """Tuple-at-a-time grouping (the seed implementation)."""
    ids = np.empty(len(column), dtype=np.int64)
    extents: list[int] = []
    counts: list[int] = []
    seen: dict = {}
    mask = column.mask
    values = column.values
    null_key = object()
    for pos in range(len(column)):
        key = null_key if (mask is not None and mask[pos]) else _canon_key(values[pos])
        gid = seen.get(key)
        if gid is None:
            gid = len(extents)
            seen[key] = gid
            extents.append(pos)
            counts.append(0)
        ids[pos] = gid
        counts[gid] += 1
    return Grouping(
        Column(Atom.OID, ids),
        np.asarray(extents, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )


def subgroup_reference(column: Column, previous: Grouping) -> Grouping:
    """Tuple-at-a-time grouping refinement (the seed implementation)."""
    if len(column) != len(previous.groups):
        raise GDKError("subgroup: column not aligned with previous grouping")
    ids = np.empty(len(column), dtype=np.int64)
    extents: list[int] = []
    counts: list[int] = []
    seen: dict = {}
    mask = column.mask
    values = column.values
    prev_ids = previous.groups.values
    null_key = object()
    for pos in range(len(column)):
        sub = null_key if (mask is not None and mask[pos]) else _canon_key(values[pos])
        key = (int(prev_ids[pos]), sub)
        gid = seen.get(key)
        if gid is None:
            gid = len(extents)
            seen[key] = gid
            extents.append(pos)
            counts.append(0)
        ids[pos] = gid
        counts[gid] += 1
    return Grouping(
        Column(Atom.OID, ids),
        np.asarray(extents, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )
