"""Grouping operators.

``group.group`` / ``group.subgroup`` derive, for a (sequence of)
column(s), a dense *group-id* column plus the group *extents* (one
representative oid per group) — the kernel building blocks of SQL's
GROUP BY.  NULL is a group of its own, as in SQL grouping semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GDKError
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column


@dataclass(frozen=True)
class Grouping:
    """Result of a grouping step.

    Attributes:
        groups: oid column aligned with the input; entry i is the group
            id (0-based, dense) of row i.
        extents: one representative row position per group, in order of
            first appearance.
        histogram: per-group row counts.
    """

    groups: Column
    extents: np.ndarray
    histogram: np.ndarray

    @property
    def ngroups(self) -> int:
        return len(self.extents)


def group(column: Column) -> Grouping:
    """Group rows by one column's values (NULLs form their own group)."""
    ids = np.empty(len(column), dtype=np.int64)
    extents: list[int] = []
    counts: list[int] = []
    seen: dict = {}
    mask = column.mask
    values = column.values
    null_key = object()
    for pos in range(len(column)):
        key = null_key if (mask is not None and mask[pos]) else values[pos]
        gid = seen.get(key)
        if gid is None:
            gid = len(extents)
            seen[key] = gid
            extents.append(pos)
            counts.append(0)
        ids[pos] = gid
        counts[gid] += 1
    return Grouping(
        Column(Atom.OID, ids),
        np.asarray(extents, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )


def subgroup(column: Column, previous: Grouping) -> Grouping:
    """Refine an existing grouping by an extra column (group.subgroup)."""
    if len(column) != len(previous.groups):
        raise GDKError("subgroup: column not aligned with previous grouping")
    ids = np.empty(len(column), dtype=np.int64)
    extents: list[int] = []
    counts: list[int] = []
    seen: dict = {}
    mask = column.mask
    values = column.values
    prev_ids = previous.groups.values
    null_key = object()
    for pos in range(len(column)):
        sub = null_key if (mask is not None and mask[pos]) else values[pos]
        key = (int(prev_ids[pos]), sub)
        gid = seen.get(key)
        if gid is None:
            gid = len(extents)
            seen[key] = gid
            extents.append(pos)
            counts.append(0)
        ids[pos] = gid
        counts[gid] += 1
    return Grouping(
        Column(Atom.OID, ids),
        np.asarray(extents, dtype=np.int64),
        np.asarray(counts, dtype=np.int64),
    )


def group_by_columns(columns: list[Column]) -> Grouping:
    """Group by a compound key (chained group/subgroup, as MAL emits)."""
    if not columns:
        raise GDKError("group_by_columns needs at least one column")
    result = group(columns[0])
    for column in columns[1:]:
        result = subgroup(column, result)
    return result


def explicit_grouping(group_ids: np.ndarray, ngroups: int) -> Grouping:
    """Wrap externally computed group ids (used by array tiling).

    Group ids must lie in ``[0, ngroups)``; rows with id ``-1`` belong to
    no group and are dropped from the histogram (their id is remapped to
    an unused trailing group so aggregate kernels can ignore them).
    """
    group_ids = np.asarray(group_ids, dtype=np.int64)
    if len(group_ids) and group_ids.max() >= ngroups:
        raise GDKError("group id out of range")
    histogram = np.bincount(group_ids[group_ids >= 0], minlength=ngroups)
    extents = np.full(ngroups, -1, dtype=np.int64)
    seen_order: list[int] = []
    for pos, gid in enumerate(group_ids.tolist()):
        if gid >= 0 and extents[gid] < 0:
            extents[gid] = pos
            seen_order.append(gid)
    return Grouping(Column(Atom.OID, group_ids), extents, histogram)


def groups_bat(grouping: Grouping, hseqbase: int = 0) -> BAT:
    """The group-id column as a BAT aligned with the grouped input."""
    return BAT(grouping.groups, hseqbase)
