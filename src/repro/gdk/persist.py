"""BAT persistence — the "farm" directory.

MonetDB stores each BAT as memory-mapped files inside a *farm*
directory.  We reproduce the idea with one payload file per column
(plus one for the null mask when present) and a JSON descriptor per
BAT.  The catalog layer composes these into whole-database snapshots
(see :mod:`repro.catalog`); :func:`publish_farm` swaps a freshly
written snapshot in atomically, which is what checkpointing of the
engine's :class:`~repro.engine.database.Database` builds on.

Storage formats (chosen per column at :func:`save_bat` time, recorded
in the descriptor's ``encoding`` entry):

* **plain** — ``<name>.values.npy``, the raw numpy payload;
* **dict** — string tails always persist as ``<name>.codes.npy``
  (int32 codes) plus ``<name>.dict.json`` (the sorted dictionary);
  they load back as :class:`~repro.gdk.dictenc.DictColumn`, so
  selections/joins/grouping run on codes straight off disk.  Legacy
  ``<name>.values.json`` payloads still load (as plain columns);
* **rle** — numeric tails whose (bitwise) run structure compresses
  well persist as ``<name>.rle.npz`` (run values + run lengths),
  decoded eagerly on load.

The descriptor also carries the column's zone map
(:mod:`repro.gdk.zonemap`), computed at save time — publish/checkpoint
is exactly when fragment statistics are refreshed, and loading them
costs no payload I/O.

Lazy loading: ``.npy`` payloads at or above the mmap threshold (see
:func:`repro.gdk.storage.should_mmap`) open as read-only
:class:`numpy.memmap` views instead of eager reads, so a farm open
touches only descriptors and a scan only pages in the fragments it
visits.  CRC verification for memory-mapped payloads is deferred: the
bytes are re-checksummed when the next checkpoint republishes them,
and any eager load still verifies up front.  Masks and dictionaries
are always read (and verified) eagerly — they are small and kernels
touch them wholesale anyway.

Crash-safety contract (tested by the fault-point matrix in
``tests/engine/test_recovery.py``):

* every farm file is written via :func:`atomic_write_bytes` — staged to
  a ``.tmp`` sibling, fsync'd, renamed over the target, directory
  fsync'd — so a crash never leaves a torn descriptor or payload under
  the real name;
* :func:`save_bat` records a CRC32 per payload/mask/dictionary file in
  the descriptor and :func:`load_bat` verifies it, quarantining
  damaged files (``<file>.corrupt``) and raising
  :class:`~repro.errors.CorruptionError` instead of loading garbage; a
  descriptor naming a payload, dictionary or mask file that does not
  exist quarantines the *descriptor* and raises
  :class:`CorruptionError` too — structural damage never surfaces as a
  bare ``FileNotFoundError`` mid-load;
* :func:`publish_farm` never deletes a leftover ``<name>.retired``
  before confirming the main directory exists, and
  :func:`recover_farm` adopts a stranded ``.retired`` copy when a
  crash between the swap's two renames left it as the only farm.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import warnings
import zlib
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.errors import CorruptionError, PersistenceError, RecoveryWarning
from repro.gdk import dictenc, storage
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.gdk.dictenc import DictColumn
from repro.gdk.zonemap import ZoneMap
from repro.testing.faultpoints import crash_point

_DESCRIPTOR_SUFFIX = ".bat.json"

#: RLE is worth it when the payload has at least this many rows ...
_RLE_MIN_ROWS = 64
#: ... and at most ``rows // _RLE_MAX_RUN_DIVISOR`` runs.
_RLE_MAX_RUN_DIVISOR = 4


# ----------------------------------------------------------------------
# atomic file primitives
# ----------------------------------------------------------------------
def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table (persists renames within it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* under *path* so a crash leaves old-or-new, never torn.

    The bytes are staged to a ``.tmp`` sibling, fsync'd, renamed over
    the target (atomic on POSIX), and the parent directory is fsync'd
    so the rename itself survives a power cut.
    """
    path = Path(path)
    staged = path.with_name(path.name + ".tmp")
    with open(staged, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    crash_point("persist.file_staged")
    os.replace(staged, path)
    fsync_directory(path.parent)


def _read_checked(directory: Path, filename: str, checksums: Optional[dict]) -> bytes:
    """Read one farm file, verifying its recorded CRC32 when present.

    A mismatch quarantines the file (renames it to ``<file>.corrupt``)
    and raises :class:`CorruptionError` naming the damaged file and the
    recovery options — silently loading garbage is never an option.
    """
    path = directory / filename
    data = path.read_bytes()
    expected = (checksums or {}).get(filename)
    if expected is not None and zlib.crc32(data) != expected:
        quarantined = path.with_name(path.name + ".corrupt")
        path.rename(quarantined)  # lint: allow-rename (quarantine, not durability)
        raise CorruptionError(
            f"checksum mismatch in {path}: the file is damaged and has "
            f"been quarantined as {quarantined.name}. Recovery options: "
            "restore the farm from a backup, re-run a checkpoint from a "
            "healthy replica, or drop the containing object and reload "
            "its data; replaying the write-ahead log (Database.open) "
            "repairs the farm only when a checkpoint predates the damage."
        )
    return data


# ----------------------------------------------------------------------
# farm-level swap and crash recovery
# ----------------------------------------------------------------------
def recover_farm(directory: Path) -> Optional[str]:
    """Repair the aftermath of a crash around :func:`publish_farm`.

    * main directory missing but ``<name>.retired`` present — the crash
      hit between the swap's two renames; the retired copy is the only
      farm, so it is adopted (renamed back) with a
      :class:`RecoveryWarning`;
    * leftover ``.staging`` — an unfinished write, removed;
    * leftover ``.retired`` next to an existing main directory — a
      completed swap that crashed before cleanup, removed.

    Returns a short description of the action taken, or ``None``.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".staging")
    retired = directory.with_name(directory.name + ".retired")
    action = None
    if not directory.exists() and retired.exists():
        retired.rename(directory)
        fsync_directory(directory.parent)
        action = "adopted-retired-farm"
        warnings.warn(
            f"farm directory {directory} was missing; adopted the "
            f"stranded {retired.name} copy left by an interrupted "
            "publish (state of the last completed checkpoint)",
            RecoveryWarning,
            stacklevel=2,
        )
    if staging.exists():
        shutil.rmtree(staging)
    if retired.exists() and directory.exists():
        shutil.rmtree(retired)
    return action


def publish_farm(directory: Path, write: Callable[[Path], None]) -> None:
    """Atomically replace *directory* with a farm produced by *write*.

    ``write(staging_dir)`` fills a staging sibling; only after it
    returns successfully is the staging directory swapped in (old farm
    renamed aside, staging renamed into place, old farm removed).  A
    failure while writing leaves the previous farm untouched; a crash
    between the two renames leaves the old farm recoverable under
    ``<name>.retired``, which :func:`recover_farm` (and the next
    publish) adopts — leftovers are only deleted once the main
    directory is confirmed to exist.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".staging")
    retired = directory.with_name(directory.name + ".retired")
    if not directory.exists() and retired.exists():
        # A previous publish crashed mid-swap: the retired copy is the
        # only farm there is.  Adopt it before clearing anything.
        retired.rename(directory)
    if staging.exists():
        shutil.rmtree(staging)
    if retired.exists():
        # The main directory exists, so the retired copy is a dead
        # pre-swap snapshot from a crash after the swap completed.
        shutil.rmtree(retired)
    staging.mkdir(parents=True)
    try:
        write(staging)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    crash_point("publish.staged")
    if directory.exists():
        directory.rename(retired)
    crash_point("publish.retired")
    staging.rename(directory)
    crash_point("publish.swapped")
    fsync_directory(directory.parent)
    shutil.rmtree(retired, ignore_errors=True)


# ----------------------------------------------------------------------
# single-BAT save/load
# ----------------------------------------------------------------------
def _npy_bytes(array: np.ndarray) -> bytes:
    buffer = io.BytesIO()
    np.save(buffer, array, allow_pickle=False)
    return buffer.getvalue()


def _rle_runs(values: np.ndarray) -> Optional[tuple[np.ndarray, np.ndarray]]:
    """(run values, run lengths) when run-length encoding pays off.

    Run boundaries compare *bit patterns*, not values: float payloads
    are compared through an integer view so ``-0.0`` never merges with
    ``0.0`` and NaNs never merge across payload bits — decoding via
    ``np.repeat`` must reproduce the exact original bytes.
    """
    n = len(values)
    if n < _RLE_MIN_ROWS:
        return None
    comparable = values
    if values.dtype.kind == "f":
        comparable = np.ascontiguousarray(values).view(np.int64)
    changes = np.flatnonzero(comparable[1:] != comparable[:-1])
    nruns = len(changes) + 1
    if nruns > n // _RLE_MAX_RUN_DIVISOR:
        return None
    starts = np.concatenate([[0], changes + 1])
    lengths = np.diff(np.concatenate([starts, [n]]))
    return values[starts], lengths.astype(np.int64)


def save_bat(bat: BAT, directory: Path, name: str) -> None:
    """Write one BAT under *directory* (payload + mask + descriptor).

    Every file lands atomically and the descriptor carries a CRC32 per
    payload file, so :func:`load_bat` can prove integrity.  The
    descriptor — including the zone map and the encoding record — is
    written last: a crash mid-save leaves at worst payload files
    without a descriptor, which :func:`list_bats` ignores.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    tail = bat.tail
    checksums: dict[str, int] = {}
    encoding = None
    if bat.atom is Atom.STR:
        if isinstance(tail, DictColumn):
            dictionary = tail.dictionary
            codes = np.asarray(tail.codes)
        else:
            dictionary, codes = dictenc.encode_values(tail.values)
        dict_file = f"{name}.dict.json"
        dict_data = json.dumps({"strings": dictionary.tolist()}).encode()
        checksums[dict_file] = zlib.crc32(dict_data)
        atomic_write_bytes(directory / dict_file, dict_data)
        crash_point("persist.dict_staged")
        values_file = f"{name}.codes.npy"
        values_data = _npy_bytes(codes)
        encoding = {"kind": "dict", "dict": dict_file}
        zone_source = codes
    else:
        values = tail.values
        runs = _rle_runs(values)
        if runs is not None:
            run_values, run_lengths = runs
            buffer = io.BytesIO()
            np.savez(buffer, values=run_values, lengths=run_lengths)
            values_file = f"{name}.rle.npz"
            values_data = buffer.getvalue()
            encoding = {"kind": "rle"}
        else:
            values_file = f"{name}.values.npy"
            values_data = _npy_bytes(values)
        zone_source = values
    checksums[values_file] = zlib.crc32(values_data)
    atomic_write_bytes(directory / values_file, values_data)
    mask_file = None
    if tail.mask is not None:
        mask_file = f"{name}.mask.npy"
        mask_data = _npy_bytes(tail.mask)
        checksums[mask_file] = zlib.crc32(mask_data)
        atomic_write_bytes(directory / mask_file, mask_data)
    zones = ZoneMap.build(zone_source, tail.mask)
    crash_point("persist.zones_computed")
    descriptor = {
        "atom": bat.atom.value,
        "hseqbase": bat.hseqbase,
        "count": len(bat),
        "values": values_file,
        "mask": mask_file,
        "checksums": checksums,
    }
    if encoding is not None:
        descriptor["encoding"] = encoding
    if zones is not None:
        descriptor["zones"] = zones.to_json()
    atomic_write_bytes(
        directory / f"{name}{_DESCRIPTOR_SUFFIX}",
        json.dumps(descriptor, indent=1).encode(),
    )


def _quarantine_descriptor(
    descriptor_path: Path, name: str, reason: str
) -> CorruptionError:
    """Quarantine a structurally-broken descriptor; build the error."""
    quarantined = descriptor_path.with_name(descriptor_path.name + ".corrupt")
    descriptor_path.rename(quarantined)  # lint: allow-rename (quarantine, not durability)
    return CorruptionError(
        f"cannot load BAT {name}: {reason}; the descriptor has been "
        f"quarantined as {quarantined.name}. Recovery options: restore "
        "the farm from a backup, re-run a checkpoint from a healthy "
        "replica, or drop the containing object and reload its data."
    )


def _load_array(directory: Path, filename: str, checksums: Optional[dict]) -> np.ndarray:
    """One ``.npy`` payload: eager + CRC-verified, or a lazy memmap view.

    The memmap path defers CRC verification (re-checked when the next
    checkpoint republishes the file); kernels touching the view report
    faulted bytes via :func:`repro.gdk.storage.note_scan`.
    """
    path = directory / filename
    if storage.should_mmap(path.stat().st_size):
        return np.load(path, mmap_mode="r", allow_pickle=False)
    data = _read_checked(directory, filename, checksums)
    return np.load(io.BytesIO(data), allow_pickle=False)


def load_bat(directory: Path, name: str) -> BAT:
    """Read a BAT previously written by :func:`save_bat`.

    Payload, mask and dictionary files are checksum-verified against
    the descriptor (descriptors from older farms without checksums
    still load; memory-mapped payloads defer verification as described
    in the module docstring).  Corrupt files are quarantined and raise
    :class:`CorruptionError`, as does a descriptor listing files that
    are missing on disk; other structural damage (unparseable
    descriptor, count mismatches) raises :class:`PersistenceError`
    naming the BAT.
    """
    directory = Path(directory)
    descriptor_path = directory / f"{name}{_DESCRIPTOR_SUFFIX}"
    if not descriptor_path.exists():
        raise PersistenceError(f"no BAT descriptor {descriptor_path}")
    try:
        descriptor = json.loads(descriptor_path.read_text())
        atom = Atom(descriptor["atom"])
        checksums = descriptor.get("checksums")
        values_name = descriptor["values"]
        encoding = descriptor.get("encoding") or {}
        kind = encoding.get("kind")

        listed = [values_name]
        if kind == "dict":
            listed.append(encoding["dict"])
        if descriptor.get("mask"):
            listed.append(descriptor["mask"])
        for filename in listed:
            if not (directory / filename).exists():
                raise _quarantine_descriptor(
                    descriptor_path,
                    name,
                    f"descriptor lists {filename}, which is missing on disk",
                )

        mask = None
        if descriptor.get("mask"):
            mask_data = _read_checked(directory, descriptor["mask"], checksums)
            mask = np.load(io.BytesIO(mask_data), allow_pickle=False)

        if kind == "dict":
            dict_data = _read_checked(directory, encoding["dict"], checksums)
            dictionary = np.array(
                json.loads(dict_data.decode())["strings"], dtype=object
            )
            codes = _load_array(directory, values_name, checksums)
            column: Column = DictColumn(Atom.STR, codes, dictionary, mask)
        elif values_name.endswith(".values.json"):
            # Legacy string payload (pre-dictionary farms).
            values_data = _read_checked(directory, values_name, checksums)
            values = np.array(json.loads(values_data.decode())["strings"], dtype=object)
            column = Column(atom, values, mask)
        elif kind == "rle":
            values_data = _read_checked(directory, values_name, checksums)
            with np.load(io.BytesIO(values_data), allow_pickle=False) as npz:
                values = np.repeat(npz["values"], npz["lengths"])
            column = Column(atom, values, mask)
        else:
            values = _load_array(directory, values_name, checksums)
            column = Column(atom, values, mask)
        if len(column) != descriptor["count"]:
            raise PersistenceError(f"BAT {name}: count mismatch on load")
        bat = BAT(column, descriptor["hseqbase"])
        if descriptor.get("zones"):
            bat._zones = ZoneMap.from_json(descriptor["zones"])
        return bat
    except CorruptionError:
        raise
    except (OSError, ValueError, KeyError) as exc:
        raise PersistenceError(f"cannot load BAT {name}: {exc}") from exc


def list_bats(directory: Path) -> list[str]:
    """Names of all BATs stored under *directory*."""
    directory = Path(directory)
    if not directory.exists():
        return []
    names = []
    for path in sorted(directory.glob(f"*{_DESCRIPTOR_SUFFIX}")):
        names.append(path.name[: -len(_DESCRIPTOR_SUFFIX)])
    return names


def delete_bat(directory: Path, name: str) -> None:
    """Remove a BAT's files; missing files are ignored."""
    directory = Path(directory)
    for suffix in (f"{name}{_DESCRIPTOR_SUFFIX}", f"{name}.values.npy",
                   f"{name}.values.json", f"{name}.mask.npy",
                   f"{name}.codes.npy", f"{name}.dict.json",
                   f"{name}.rle.npz"):
        path = directory / suffix
        if path.exists():
            path.unlink()
