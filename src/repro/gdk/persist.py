"""BAT persistence — the "farm" directory.

MonetDB stores each BAT as memory-mapped files inside a *farm*
directory.  We reproduce the idea with one ``.npy`` file per column
payload (plus one for the null mask when present) and a JSON descriptor
per BAT.  The catalog layer composes these into whole-database
snapshots (see :mod:`repro.catalog`); :func:`publish_farm` swaps a
freshly written snapshot in atomically, which is what commit-time
durability of the engine's :class:`~repro.engine.database.Database`
builds on.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path
from typing import Callable

import numpy as np

from repro.errors import PersistenceError
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column

_DESCRIPTOR_SUFFIX = ".bat.json"


def publish_farm(directory: Path, write: Callable[[Path], None]) -> None:
    """Atomically replace *directory* with a farm produced by *write*.

    ``write(staging_dir)`` fills a staging sibling; only after it
    returns successfully is the staging directory swapped in (old farm
    renamed aside, staging renamed into place, old farm removed).  A
    failure while writing leaves the previous farm untouched; a crash
    between the two renames leaves the old farm recoverable under
    ``<name>.retired``.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".staging")
    retired = directory.with_name(directory.name + ".retired")
    for leftover in (staging, retired):
        if leftover.exists():
            shutil.rmtree(leftover)
    staging.mkdir(parents=True)
    try:
        write(staging)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if directory.exists():
        directory.rename(retired)
    staging.rename(directory)
    shutil.rmtree(retired, ignore_errors=True)


def save_bat(bat: BAT, directory: Path, name: str) -> None:
    """Write one BAT under *directory* as ``name.values.npy`` (+ mask, meta)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    values_path = directory / f"{name}.values.npy"
    if bat.atom is Atom.STR:
        # Object arrays do not round-trip via np.save without pickle;
        # store strings as JSON alongside an index-preserving layout.
        payload = {"strings": bat.tail.values.tolist()}
        (directory / f"{name}.values.json").write_text(json.dumps(payload))
        has_values_npy = False
    else:
        np.save(values_path, bat.tail.values, allow_pickle=False)
        has_values_npy = True
    mask_file = None
    if bat.tail.mask is not None:
        mask_file = f"{name}.mask.npy"
        np.save(directory / mask_file, bat.tail.mask, allow_pickle=False)
    descriptor = {
        "atom": bat.atom.value,
        "hseqbase": bat.hseqbase,
        "count": len(bat),
        "values": f"{name}.values.npy" if has_values_npy else f"{name}.values.json",
        "mask": mask_file,
    }
    (directory / f"{name}{_DESCRIPTOR_SUFFIX}").write_text(json.dumps(descriptor, indent=1))


def load_bat(directory: Path, name: str) -> BAT:
    """Read a BAT previously written by :func:`save_bat`."""
    directory = Path(directory)
    descriptor_path = directory / f"{name}{_DESCRIPTOR_SUFFIX}"
    if not descriptor_path.exists():
        raise PersistenceError(f"no BAT descriptor {descriptor_path}")
    try:
        descriptor = json.loads(descriptor_path.read_text())
        atom = Atom(descriptor["atom"])
        values_name = descriptor["values"]
        if values_name.endswith(".json"):
            payload = json.loads((directory / values_name).read_text())
            values = np.array(payload["strings"], dtype=object)
        else:
            values = np.load(directory / values_name, allow_pickle=False)
        mask = None
        if descriptor.get("mask"):
            mask = np.load(directory / descriptor["mask"], allow_pickle=False)
        column = Column(atom, values, mask)
        if len(column) != descriptor["count"]:
            raise PersistenceError(f"BAT {name}: count mismatch on load")
        return BAT(column, descriptor["hseqbase"])
    except (OSError, ValueError, KeyError) as exc:
        raise PersistenceError(f"cannot load BAT {name}: {exc}") from exc


def list_bats(directory: Path) -> list[str]:
    """Names of all BATs stored under *directory*."""
    directory = Path(directory)
    if not directory.exists():
        return []
    names = []
    for path in sorted(directory.glob(f"*{_DESCRIPTOR_SUFFIX}")):
        names.append(path.name[: -len(_DESCRIPTOR_SUFFIX)])
    return names


def delete_bat(directory: Path, name: str) -> None:
    """Remove a BAT's files; missing files are ignored."""
    directory = Path(directory)
    for suffix in (f"{name}{_DESCRIPTOR_SUFFIX}", f"{name}.values.npy",
                   f"{name}.values.json", f"{name}.mask.npy"):
        path = directory / suffix
        if path.exists():
            path.unlink()
