"""BAT persistence — the "farm" directory.

MonetDB stores each BAT as memory-mapped files inside a *farm*
directory.  We reproduce the idea with one ``.npy`` file per column
payload (plus one for the null mask when present) and a JSON descriptor
per BAT.  The catalog layer composes these into whole-database
snapshots (see :mod:`repro.catalog`); :func:`publish_farm` swaps a
freshly written snapshot in atomically, which is what checkpointing of
the engine's :class:`~repro.engine.database.Database` builds on.

Crash-safety contract (tested by the fault-point matrix in
``tests/engine/test_recovery.py``):

* every farm file is written via :func:`atomic_write_bytes` — staged to
  a ``.tmp`` sibling, fsync'd, renamed over the target, directory
  fsync'd — so a crash never leaves a torn descriptor or payload under
  the real name;
* :func:`save_bat` records a CRC32 per payload/mask file in the
  descriptor and :func:`load_bat` verifies it, quarantining damaged
  files (``<file>.corrupt``) and raising
  :class:`~repro.errors.CorruptionError` instead of loading garbage;
* :func:`publish_farm` never deletes a leftover ``<name>.retired``
  before confirming the main directory exists, and
  :func:`recover_farm` adopts a stranded ``.retired`` copy when a
  crash between the swap's two renames left it as the only farm.
"""

from __future__ import annotations

import io
import json
import os
import shutil
import warnings
import zlib
from pathlib import Path
from typing import Callable, Optional

import numpy as np

from repro.errors import CorruptionError, PersistenceError, RecoveryWarning
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT
from repro.gdk.column import Column
from repro.testing.faultpoints import crash_point

_DESCRIPTOR_SUFFIX = ".bat.json"


# ----------------------------------------------------------------------
# atomic file primitives
# ----------------------------------------------------------------------
def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table (persists renames within it)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write *data* under *path* so a crash leaves old-or-new, never torn.

    The bytes are staged to a ``.tmp`` sibling, fsync'd, renamed over
    the target (atomic on POSIX), and the parent directory is fsync'd
    so the rename itself survives a power cut.
    """
    path = Path(path)
    staged = path.with_name(path.name + ".tmp")
    with open(staged, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    crash_point("persist.file_staged")
    os.replace(staged, path)
    fsync_directory(path.parent)


def _read_checked(directory: Path, filename: str, checksums: Optional[dict]) -> bytes:
    """Read one farm file, verifying its recorded CRC32 when present.

    A mismatch quarantines the file (renames it to ``<file>.corrupt``)
    and raises :class:`CorruptionError` naming the damaged file and the
    recovery options — silently loading garbage is never an option.
    """
    path = directory / filename
    data = path.read_bytes()
    expected = (checksums or {}).get(filename)
    if expected is not None and zlib.crc32(data) != expected:
        quarantined = path.with_name(path.name + ".corrupt")
        path.rename(quarantined)
        raise CorruptionError(
            f"checksum mismatch in {path}: the file is damaged and has "
            f"been quarantined as {quarantined.name}. Recovery options: "
            "restore the farm from a backup, re-run a checkpoint from a "
            "healthy replica, or drop the containing object and reload "
            "its data; replaying the write-ahead log (Database.open) "
            "repairs the farm only when a checkpoint predates the damage."
        )
    return data


# ----------------------------------------------------------------------
# farm-level swap and crash recovery
# ----------------------------------------------------------------------
def recover_farm(directory: Path) -> Optional[str]:
    """Repair the aftermath of a crash around :func:`publish_farm`.

    * main directory missing but ``<name>.retired`` present — the crash
      hit between the swap's two renames; the retired copy is the only
      farm, so it is adopted (renamed back) with a
      :class:`RecoveryWarning`;
    * leftover ``.staging`` — an unfinished write, removed;
    * leftover ``.retired`` next to an existing main directory — a
      completed swap that crashed before cleanup, removed.

    Returns a short description of the action taken, or ``None``.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".staging")
    retired = directory.with_name(directory.name + ".retired")
    action = None
    if not directory.exists() and retired.exists():
        retired.rename(directory)
        fsync_directory(directory.parent)
        action = "adopted-retired-farm"
        warnings.warn(
            f"farm directory {directory} was missing; adopted the "
            f"stranded {retired.name} copy left by an interrupted "
            "publish (state of the last completed checkpoint)",
            RecoveryWarning,
            stacklevel=2,
        )
    if staging.exists():
        shutil.rmtree(staging)
    if retired.exists() and directory.exists():
        shutil.rmtree(retired)
    return action


def publish_farm(directory: Path, write: Callable[[Path], None]) -> None:
    """Atomically replace *directory* with a farm produced by *write*.

    ``write(staging_dir)`` fills a staging sibling; only after it
    returns successfully is the staging directory swapped in (old farm
    renamed aside, staging renamed into place, old farm removed).  A
    failure while writing leaves the previous farm untouched; a crash
    between the two renames leaves the old farm recoverable under
    ``<name>.retired``, which :func:`recover_farm` (and the next
    publish) adopts — leftovers are only deleted once the main
    directory is confirmed to exist.
    """
    directory = Path(directory)
    staging = directory.with_name(directory.name + ".staging")
    retired = directory.with_name(directory.name + ".retired")
    if not directory.exists() and retired.exists():
        # A previous publish crashed mid-swap: the retired copy is the
        # only farm there is.  Adopt it before clearing anything.
        retired.rename(directory)
    if staging.exists():
        shutil.rmtree(staging)
    if retired.exists():
        # The main directory exists, so the retired copy is a dead
        # pre-swap snapshot from a crash after the swap completed.
        shutil.rmtree(retired)
    staging.mkdir(parents=True)
    try:
        write(staging)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    crash_point("publish.staged")
    if directory.exists():
        directory.rename(retired)
    crash_point("publish.retired")
    staging.rename(directory)
    crash_point("publish.swapped")
    fsync_directory(directory.parent)
    shutil.rmtree(retired, ignore_errors=True)


# ----------------------------------------------------------------------
# single-BAT save/load
# ----------------------------------------------------------------------
def _values_payload(bat: BAT) -> tuple[str, bytes]:
    """Serialized tail values: (filename suffix, bytes)."""
    if bat.atom is Atom.STR:
        # Object arrays do not round-trip via np.save without pickle;
        # store strings as JSON alongside an index-preserving layout.
        payload = {"strings": bat.tail.values.tolist()}
        return ".values.json", json.dumps(payload).encode()
    buffer = io.BytesIO()
    np.save(buffer, bat.tail.values, allow_pickle=False)
    return ".values.npy", buffer.getvalue()


def save_bat(bat: BAT, directory: Path, name: str) -> None:
    """Write one BAT under *directory* as ``name.values.npy`` (+ mask, meta).

    Every file lands atomically and the descriptor carries a CRC32 per
    payload file, so :func:`load_bat` can prove integrity.  The
    descriptor is written last: a crash mid-save leaves at worst
    payload files without a descriptor, which :func:`list_bats` ignores.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    suffix, values_data = _values_payload(bat)
    values_file = f"{name}{suffix}"
    checksums = {values_file: zlib.crc32(values_data)}
    atomic_write_bytes(directory / values_file, values_data)
    mask_file = None
    if bat.tail.mask is not None:
        mask_file = f"{name}.mask.npy"
        buffer = io.BytesIO()
        np.save(buffer, bat.tail.mask, allow_pickle=False)
        mask_data = buffer.getvalue()
        checksums[mask_file] = zlib.crc32(mask_data)
        atomic_write_bytes(directory / mask_file, mask_data)
    descriptor = {
        "atom": bat.atom.value,
        "hseqbase": bat.hseqbase,
        "count": len(bat),
        "values": values_file,
        "mask": mask_file,
        "checksums": checksums,
    }
    atomic_write_bytes(
        directory / f"{name}{_DESCRIPTOR_SUFFIX}",
        json.dumps(descriptor, indent=1).encode(),
    )


def load_bat(directory: Path, name: str) -> BAT:
    """Read a BAT previously written by :func:`save_bat`.

    Payload and mask files are checksum-verified against the
    descriptor (descriptors from older farms without checksums still
    load).  Corrupt files are quarantined and raise
    :class:`CorruptionError`; structural damage (unparseable
    descriptor, missing files, count mismatches) raises
    :class:`PersistenceError` naming the BAT.
    """
    directory = Path(directory)
    descriptor_path = directory / f"{name}{_DESCRIPTOR_SUFFIX}"
    if not descriptor_path.exists():
        raise PersistenceError(f"no BAT descriptor {descriptor_path}")
    try:
        descriptor = json.loads(descriptor_path.read_text())
        atom = Atom(descriptor["atom"])
        checksums = descriptor.get("checksums")
        values_name = descriptor["values"]
        values_data = _read_checked(directory, values_name, checksums)
        if values_name.endswith(".json"):
            payload = json.loads(values_data.decode())
            values = np.array(payload["strings"], dtype=object)
        else:
            values = np.load(io.BytesIO(values_data), allow_pickle=False)
        mask = None
        if descriptor.get("mask"):
            mask_data = _read_checked(directory, descriptor["mask"], checksums)
            mask = np.load(io.BytesIO(mask_data), allow_pickle=False)
        column = Column(atom, values, mask)
        if len(column) != descriptor["count"]:
            raise PersistenceError(f"BAT {name}: count mismatch on load")
        return BAT(column, descriptor["hseqbase"])
    except CorruptionError:
        raise
    except (OSError, ValueError, KeyError) as exc:
        raise PersistenceError(f"cannot load BAT {name}: {exc}") from exc


def list_bats(directory: Path) -> list[str]:
    """Names of all BATs stored under *directory*."""
    directory = Path(directory)
    if not directory.exists():
        return []
    names = []
    for path in sorted(directory.glob(f"*{_DESCRIPTOR_SUFFIX}")):
        names.append(path.name[: -len(_DESCRIPTOR_SUFFIX)])
    return names


def delete_bat(directory: Path, name: str) -> None:
    """Remove a BAT's files; missing files are ignored."""
    directory = Path(directory)
    for suffix in (f"{name}{_DESCRIPTOR_SUFFIX}", f"{name}.values.npy",
                   f"{name}.values.json", f"{name}.mask.npy"):
        path = directory / suffix
        if path.exists():
            path.unlink()
