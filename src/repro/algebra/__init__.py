"""Relational algebra layer: plans, compiler, MAL generation."""

from repro.algebra.compiler import plan_select, plan_statement
from repro.algebra.malgen import MALGenerator

__all__ = ["MALGenerator", "plan_select", "plan_statement"]
