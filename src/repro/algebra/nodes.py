"""Relational algebra plan nodes (the "Relational Algebra" box, Figure 2).

The compiler lowers a bound AST into this small algebra; the MAL
generator then lowers each node into MAL instructions.  SciQL adds one
genuinely new node over classic relational algebra: :class:`TileProject`
— structural grouping over an array's cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.gdk.atoms import Atom
from repro.core.tiling import TileSpec
from repro.semantic.binder import SourceInfo


@dataclass(frozen=True)
class OutputItem:
    """One column of a plan's result."""

    name: str
    expression: Any  # bound expression
    atom: Optional[Atom]
    is_dimension: bool = False


@dataclass(frozen=True)
class OutputRef:
    """A sort key referring to an output column by position."""

    index: int
    atom: Optional[Atom] = None


@dataclass
class Scan:
    """Read all columns of one base table/array."""

    source: SourceInfo
    source_index: int


@dataclass
class DerivedScan:
    """A FROM-clause subquery materialised as a source."""

    plan: "QueryPlan"
    source: SourceInfo
    source_index: int


@dataclass
class Join:
    """Binary join; ``condition`` is a bound predicate (None for cross)."""

    left: "PlanNode"
    right: "PlanNode"
    kind: str  # "inner" | "left" | "cross"
    condition: Any = None


@dataclass
class Filter:
    """Row selection by a bound predicate."""

    child: "PlanNode"
    predicate: Any


@dataclass
class Project:
    """Row-wise projection (no aggregation)."""

    child: "PlanNode"
    items: list[OutputItem]


@dataclass
class Aggregate:
    """Value-based GROUP BY with aggregated output items."""

    child: "PlanNode"
    keys: list[Any]  # bound key expressions
    items: list[OutputItem]
    having: Any = None


@dataclass
class ScalarAggregate:
    """Aggregation without GROUP BY: one output row."""

    child: "PlanNode"
    items: list[OutputItem]


@dataclass
class TileProject:
    """SciQL structural grouping (GROUP BY array[...]...).

    Every anchor (= cell) yields one output row; aggregates fold the
    anchor's tile.  With an array-shaped result HAVING masks values to
    NULL; with a table-shaped result it filters rows (see malgen).
    """

    child: Scan
    array_name: str
    spec: TileSpec
    items: list[OutputItem]
    having: Any = None


@dataclass
class Distinct:
    """Duplicate elimination over all output columns."""

    child: "PlanNode"


@dataclass
class Sort:
    """Order by bound key expressions (True = descending)."""

    child: "PlanNode"
    keys: list[tuple[Any, bool]]


@dataclass
class LimitNode:
    """LIMIT/OFFSET."""

    child: "PlanNode"
    limit: Optional[int]
    offset: Optional[int]


PlanNode = Union[
    Scan,
    DerivedScan,
    Join,
    Filter,
    Project,
    Aggregate,
    ScalarAggregate,
    TileProject,
    Distinct,
    Sort,
    LimitNode,
]


# ----------------------------------------------------------------------
# statement-level plans
# ----------------------------------------------------------------------
@dataclass
class QueryPlan:
    """A SELECT: the root node plus result-shape metadata."""

    root: PlanNode
    items: list[OutputItem]
    result_kind: str  # "table" | "array"


@dataclass
class SetOpPlan:
    """UNION [ALL] / EXCEPT / INTERSECT of two query plans."""

    op: str  # "union" | "except" | "intersect"
    all: bool
    left: QueryPlan
    right: QueryPlan
    items: list[OutputItem] = field(default_factory=list)
    result_kind: str = "table"


@dataclass
class CreateTablePlan:
    name: str
    columns_json: str
    if_not_exists: bool = False


@dataclass
class CreateArrayPlan:
    name: str
    dimensions_json: str
    attributes_json: str
    if_not_exists: bool = False


@dataclass
class DropPlan:
    name: str
    kind: str
    if_exists: bool = False


@dataclass
class AlterDimensionPlan:
    array: str
    dimension: str
    start: int
    step: int
    stop: int


@dataclass
class InsertValuesPlan:
    target: str
    target_kind: str  # "table" | "array"
    columns: list[str]
    rows: list[list[Any]]  # bound constant expressions


@dataclass
class InsertSelectPlan:
    target: str
    target_kind: str
    columns: list[str]
    query: QueryPlan


@dataclass
class UpdatePlan:
    target: str
    target_kind: str
    assignments: list[tuple[str, Any]]  # (column, bound expression)
    where: Any = None


@dataclass
class DeletePlan:
    target: str
    target_kind: str
    where: Any = None


StatementPlan = Union[
    QueryPlan,
    SetOpPlan,
    CreateTablePlan,
    CreateArrayPlan,
    DropPlan,
    AlterDimensionPlan,
    InsertValuesPlan,
    InsertSelectPlan,
    UpdatePlan,
    DeletePlan,
]
