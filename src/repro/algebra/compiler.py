"""AST → relational algebra compilation (with name binding).

This is the back half of the "SQL/SciQL Compiler" of Figure 2: bound
syntax trees become :mod:`repro.algebra.nodes` plans.  SciQL-specific
rules implemented here:

* CREATE ARRAY splits elements into dimensions (materialised ranges)
  and cell attributes;
* a structural GROUP BY requires the FROM clause to be exactly the
  tiled array, and its bracket groups must reference the array's
  dimensions in declaration order with constant offsets;
* dimension-qualified projection items (``[x]``) switch the result to
  an array shape;
* INSERT/UPDATE/DELETE against arrays keep cell semantics (holes,
  overwrite-in-place) — lowered later by malgen.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.errors import SemanticError
from repro.gdk.atoms import Atom, atom_for_sql_type
from repro.catalog import Array, Catalog, Table
from repro.core.tiling import TileSpec
from repro.semantic.binder import (
    BoundCellRef,
    BoundColumn,
    Parameter,
    Scope,
    SourceInfo,
    source_from_catalog,
)
from repro.semantic.types import (
    AGGREGATE_FUNCTIONS,
    contains_aggregate,
    infer_atom,
    is_aggregate_call,
)
from repro.sql import ast_nodes as ast
from repro.algebra import nodes

_INTEGRAL_ATOMS = (Atom.INT, Atom.LNG)


# ----------------------------------------------------------------------
# constant folding (DDL ranges, defaults, VALUES rows)
# ----------------------------------------------------------------------
def fold_constant(expression: Any, allow_params: bool = False) -> Any:
    """Evaluate a constant expression at compile time.

    Raises :class:`SemanticError` when the expression references
    columns or functions — DDL ranges and VALUES rows must be literal.
    With ``allow_params`` a *bare* placeholder passes through as a
    :class:`~repro.semantic.binder.Parameter` marker (used by INSERT
    VALUES rows, which bind the value at execution time); placeholders
    inside compound constant expressions stay rejected.
    """
    if isinstance(expression, (ast.Placeholder, Parameter)):
        if not allow_params:
            raise SemanticError(
                "bind parameters are not allowed in this constant context "
                "(DDL ranges, tile bounds, LIMIT, function constants)"
            )
        if isinstance(expression, Parameter):
            return expression
        return Parameter(expression.key)
    if isinstance(expression, ast.Literal):
        return expression.value
    if isinstance(expression, ast.UnaryOp) and expression.op == "-":
        value = fold_constant(expression.operand)
        if value is None:
            return None
        return -value
    if isinstance(expression, ast.BinaryOp):
        left = fold_constant(expression.left)
        right = fold_constant(expression.right)
        if left is None or right is None:
            return None
        op = expression.op
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if right == 0:
                raise SemanticError("division by zero in constant expression")
            if isinstance(left, int) and isinstance(right, int):
                quotient = abs(left) // abs(right)
                return -quotient if (left < 0) != (right < 0) else quotient
            return left / right
        if op == "%":
            if right == 0:
                raise SemanticError("modulo by zero in constant expression")
            return left % right
        if op == "||":
            return str(left) + str(right)
    if isinstance(expression, ast.CastExpression):
        from repro.gdk.atoms import coerce_scalar

        value = fold_constant(expression.operand)
        return coerce_scalar(value, atom_for_sql_type(expression.type_name))
    raise SemanticError("expected a constant expression")


# ----------------------------------------------------------------------
# expression binding
# ----------------------------------------------------------------------
class Binder:
    """Rewrites name references inside expressions for one scope."""

    def __init__(self, scope: Scope, catalog: Catalog):
        self.scope = scope
        self.catalog = catalog

    def bind(self, expression: Any) -> Any:
        if isinstance(expression, (ast.Literal, BoundColumn, BoundCellRef, Parameter)):
            return expression
        if isinstance(expression, ast.Placeholder):
            return Parameter(expression.key)
        if isinstance(expression, ast.ColumnRef):
            return self.scope.resolve(expression.name, expression.qualifier)
        if isinstance(expression, ast.Star):
            raise SemanticError("* is only allowed as a projection item")
        if isinstance(expression, ast.CellRef):
            return self._bind_cell_ref(expression)
        if isinstance(expression, ast.BinaryOp):
            return ast.BinaryOp(
                expression.op, self.bind(expression.left), self.bind(expression.right)
            )
        if isinstance(expression, ast.UnaryOp):
            return ast.UnaryOp(expression.op, self.bind(expression.operand))
        if isinstance(expression, ast.FunctionCall):
            return ast.FunctionCall(
                expression.name,
                tuple(self.bind(a) for a in expression.args),
                expression.star,
                expression.distinct,
            )
        if isinstance(expression, ast.CaseExpression):
            return ast.CaseExpression(
                tuple(
                    (self.bind(c), self.bind(v)) for c, v in expression.whens
                ),
                None
                if expression.otherwise is None
                else self.bind(expression.otherwise),
            )
        if isinstance(expression, ast.IsNull):
            return ast.IsNull(self.bind(expression.operand), expression.negated)
        if isinstance(expression, ast.InList):
            return ast.InList(
                self.bind(expression.operand),
                tuple(self.bind(i) for i in expression.items),
                expression.negated,
            )
        if isinstance(expression, ast.Between):
            return ast.Between(
                self.bind(expression.operand),
                self.bind(expression.low),
                self.bind(expression.high),
                expression.negated,
            )
        if isinstance(expression, ast.CastExpression):
            return ast.CastExpression(
                self.bind(expression.operand), expression.type_name
            )
        raise SemanticError(f"cannot bind {type(expression).__name__}")

    def _bind_cell_ref(self, ref: ast.CellRef) -> BoundCellRef:
        # Resolve the array: FROM alias first, then catalog name.
        array_name: Optional[str] = None
        for source in self.scope.sources:
            if source.alias == ref.array and source.kind == "array":
                array_name = source.object_name
                break
        if array_name is None:
            if ref.array in self.catalog and isinstance(
                self.catalog.get(ref.array), Array
            ):
                array_name = ref.array.lower()
            else:
                raise SemanticError(f"cell reference to unknown array {ref.array!r}")
        array = self.catalog.get_array(array_name)
        if len(ref.indexes) != len(array.dimensions):
            raise SemanticError(
                f"array {array_name!r} has {len(array.dimensions)} dimensions, "
                f"cell reference supplies {len(ref.indexes)}"
            )
        attribute = ref.attribute
        if attribute is None:
            if len(array.attributes) != 1:
                raise SemanticError(
                    f"array {array_name!r} has several attributes; "
                    "qualify the cell reference (A[i][j].attr)"
                )
            attribute = array.attributes[0].name
        atom = array.attribute_def(attribute).atom
        return BoundCellRef(
            array_name,
            tuple(self.bind(i) for i in ref.indexes),
            attribute,
            atom,
        )


# ----------------------------------------------------------------------
# statement planning
# ----------------------------------------------------------------------
def plan_statement(statement: ast.Statement, catalog: Catalog) -> nodes.StatementPlan:
    """Compile one parsed statement into an executable plan."""
    if isinstance(statement, ast.SelectStatement):
        return plan_select(statement, catalog)
    if isinstance(statement, ast.SetOperation):
        return _plan_set_operation(statement, catalog)
    if isinstance(statement, ast.CreateTable):
        return _plan_create_table(statement)
    if isinstance(statement, ast.CreateArray):
        return _plan_create_array(statement)
    if isinstance(statement, ast.DropObject):
        return nodes.DropPlan(statement.name.lower(), statement.kind, statement.if_exists)
    if isinstance(statement, ast.AlterArrayDimension):
        return _plan_alter(statement, catalog)
    if isinstance(statement, ast.InsertValues):
        return _plan_insert_values(statement, catalog)
    if isinstance(statement, ast.InsertSelect):
        return _plan_insert_select(statement, catalog)
    if isinstance(statement, ast.Update):
        return _plan_update(statement, catalog)
    if isinstance(statement, ast.Delete):
        return _plan_delete(statement, catalog)
    raise SemanticError(f"unsupported statement {type(statement).__name__}")


def _plan_set_operation(
    statement: ast.SetOperation, catalog: Catalog
) -> nodes.SetOpPlan:
    """Compile UNION/EXCEPT/INTERSECT: both sides must align in arity."""

    def plan_side(side) -> nodes.QueryPlan | nodes.SetOpPlan:
        if isinstance(side, ast.SetOperation):
            return _plan_set_operation(side, catalog)
        return plan_select(side, catalog)

    left = plan_side(statement.left)
    right = plan_side(statement.right)
    if len(left.items) != len(right.items):
        raise SemanticError(
            f"set operation arity mismatch: {len(left.items)} vs "
            f"{len(right.items)} columns"
        )
    from repro.semantic.types import common_atom

    items: list[nodes.OutputItem] = []
    for left_item, right_item in zip(left.items, right.items):
        atom = common_atom(left_item.atom, right_item.atom)
        items.append(
            nodes.OutputItem(
                left_item.name, left_item.expression, atom, left_item.is_dimension
            )
        )
    return nodes.SetOpPlan(
        statement.op, statement.all, left, right, items, left.result_kind
    )


# ------------------------------ DDL ------------------------------
def _column_entry(spec: ast.ColumnSpec) -> dict:
    atom = atom_for_sql_type(spec.type_name)
    default = None
    if spec.has_default:
        default = fold_constant(spec.default)
    return {
        "name": spec.name,
        "atom": atom.value,
        "default": default,
        "has_default": spec.has_default,
    }


def _plan_create_table(statement: ast.CreateTable) -> nodes.CreateTablePlan:
    entries = [_column_entry(c) for c in statement.columns]
    return nodes.CreateTablePlan(
        statement.name.lower(), json.dumps(entries), statement.if_not_exists
    )


def _plan_create_array(statement: ast.CreateArray) -> nodes.CreateArrayPlan:
    dimensions: list[dict] = []
    attributes: list[dict] = []
    for spec in statement.elements:
        if spec.is_dimension:
            atom = atom_for_sql_type(spec.type_name)
            if atom not in _INTEGRAL_ATOMS:
                raise SemanticError(
                    f"dimension {spec.name!r} must have an integral type"
                )
            if spec.dimension_range is None:
                raise SemanticError(
                    f"dimension {spec.name!r}: unbounded dimensions must gain "
                    "a size through coercion; CREATE ARRAY needs a range"
                )
            dimensions.append(
                {
                    "name": spec.name,
                    "atom": atom.value,
                    "start": int(fold_constant(spec.dimension_range.start)),
                    "step": int(fold_constant(spec.dimension_range.step)),
                    "stop": int(fold_constant(spec.dimension_range.stop)),
                }
            )
        else:
            attributes.append(_column_entry(spec))
    if not dimensions:
        raise SemanticError("CREATE ARRAY needs at least one DIMENSION element")
    if not attributes:
        raise SemanticError("CREATE ARRAY needs at least one cell attribute")
    return nodes.CreateArrayPlan(
        statement.name.lower(),
        json.dumps(dimensions),
        json.dumps(attributes),
        statement.if_not_exists,
    )


def _plan_alter(
    statement: ast.AlterArrayDimension, catalog: Catalog
) -> nodes.AlterDimensionPlan:
    array = catalog.get_array(statement.array)
    array.dimension_def(statement.dimension)  # existence check
    return nodes.AlterDimensionPlan(
        array.name,
        statement.dimension,
        int(fold_constant(statement.range.start)),
        int(fold_constant(statement.range.step)),
        int(fold_constant(statement.range.stop)),
    )


# ------------------------------ DML ------------------------------
def _target_kind(catalog: Catalog, name: str) -> str:
    return "array" if isinstance(catalog.get(name), Array) else "table"


def _plan_insert_values(
    statement: ast.InsertValues, catalog: Catalog
) -> nodes.InsertValuesPlan:
    obj = catalog.get(statement.table)
    columns = list(statement.columns) or obj.column_names()
    for column in columns:
        obj.column_def(column)  # existence check
    rows: list[list[Any]] = []
    for row in statement.rows:
        if len(row) != len(columns):
            raise SemanticError(
                f"INSERT row has {len(row)} values, expected {len(columns)}"
            )
        rows.append([fold_constant(value, allow_params=True) for value in row])
    if isinstance(obj, Array):
        provided = set(columns)
        for dimension in obj.dimensions:
            if dimension.name not in provided:
                raise SemanticError(
                    f"INSERT into array {obj.name!r} must supply dimension "
                    f"{dimension.name!r}"
                )
    return nodes.InsertValuesPlan(
        obj.name, _target_kind(catalog, statement.table), columns, rows
    )


def _plan_insert_select(
    statement: ast.InsertSelect, catalog: Catalog
) -> nodes.InsertSelectPlan:
    obj = catalog.get(statement.table)
    query = plan_select(statement.query, catalog)
    columns = list(statement.columns)
    if not columns:
        if isinstance(obj, Array):
            # Dimension-qualified query items name the coordinates; the
            # remaining items map to attributes in declaration order.
            dim_count = sum(1 for item in query.items if item.is_dimension)
            if dim_count and dim_count != len(obj.dimensions):
                raise SemanticError(
                    f"query yields {dim_count} dimension columns, array "
                    f"{obj.name!r} has {len(obj.dimensions)}"
                )
            value_count = len(query.items) - (dim_count or len(obj.dimensions))
            columns = [d.name for d in obj.dimensions]
            columns += [a.name for a in obj.attributes[:value_count]]
        else:
            columns = obj.column_names()[: len(query.items)]
    if len(columns) != len(query.items):
        raise SemanticError(
            f"INSERT column list has {len(columns)} names, query yields "
            f"{len(query.items)}"
        )
    for column in columns:
        obj.column_def(column)
    return nodes.InsertSelectPlan(
        obj.name, _target_kind(catalog, statement.table), columns, query
    )


def _plan_update(statement: ast.Update, catalog: Catalog) -> nodes.UpdatePlan:
    obj = catalog.get(statement.table)
    source = source_from_catalog(catalog, statement.table, None)
    scope = Scope([source])
    binder = Binder(scope, catalog)
    assignments: list[tuple[str, Any]] = []
    for column, expression in statement.assignments:
        if isinstance(obj, Array) and obj.is_dimension(column):
            raise SemanticError(
                f"cannot UPDATE dimension {column!r}; use ALTER ARRAY"
            )
        obj.column_def(column)
        assignments.append((column, binder.bind(expression)))
    where = binder.bind(statement.where) if statement.where is not None else None
    return nodes.UpdatePlan(
        obj.name, _target_kind(catalog, statement.table), assignments, where
    )


def _plan_delete(statement: ast.Delete, catalog: Catalog) -> nodes.DeletePlan:
    obj = catalog.get(statement.table)
    source = source_from_catalog(catalog, statement.table, None)
    binder = Binder(Scope([source]), catalog)
    where = binder.bind(statement.where) if statement.where is not None else None
    return nodes.DeletePlan(obj.name, _target_kind(catalog, statement.table), where)


# ----------------------------- SELECT ----------------------------
def _default_item_name(expression: Any, index: int) -> str:
    if isinstance(expression, ast.ColumnRef):
        return expression.name
    if isinstance(expression, ast.CellRef):
        return expression.attribute or expression.array
    if isinstance(expression, ast.FunctionCall):
        return expression.name
    return f"col_{index}"


def _build_source(
    table_source: ast.TableSource, catalog: Catalog, sources: list[SourceInfo]
) -> nodes.PlanNode:
    if isinstance(table_source, ast.NamedSource):
        info = source_from_catalog(catalog, table_source.name, table_source.alias)
        index = len(sources)
        sources.append(info)
        return nodes.Scan(info, index)
    if isinstance(table_source, ast.SubquerySource):
        if isinstance(table_source.query, ast.SetOperation):
            plan = _plan_set_operation(table_source.query, catalog)
        else:
            plan = plan_select(table_source.query, catalog)
        columns = [(item.name, item.atom or Atom.INT) for item in plan.items]
        info = SourceInfo(table_source.alias, "", "derived", columns, [])
        index = len(sources)
        sources.append(info)
        return nodes.DerivedScan(plan, info, index)
    if isinstance(table_source, ast.JoinSource):
        left = _build_source(table_source.left, catalog, sources)
        right = _build_source(table_source.right, catalog, sources)
        condition = None
        if table_source.condition is not None:
            binder = Binder(Scope(list(sources)), catalog)
            condition = binder.bind(table_source.condition)
        return nodes.Join(left, right, table_source.kind, condition)
    raise SemanticError(f"unsupported FROM element {type(table_source).__name__}")


def _anchor_offset(expression: Any) -> tuple[str, int]:
    """Extract (dimension name, integer offset) from a tile bound."""
    if isinstance(expression, ast.ColumnRef):
        return expression.name, 0
    if isinstance(expression, ast.BinaryOp) and expression.op in ("+", "-"):
        if isinstance(expression.left, ast.ColumnRef):
            offset = fold_constant(expression.right)
            if not isinstance(offset, int):
                raise SemanticError("tile offsets must be integer constants")
            sign = 1 if expression.op == "+" else -1
            return expression.left.name, sign * offset
    raise SemanticError(
        "tile bounds must be of the form <dimension> or <dimension> ± <int>"
    )


def _tile_spec(
    group_by: ast.TileGroupBy, array: Array
) -> TileSpec:
    if len(group_by.dimensions) != len(array.dimensions):
        raise SemanticError(
            f"tile has {len(group_by.dimensions)} bracket groups, array "
            f"{array.name!r} has {len(array.dimensions)} dimensions"
        )
    ranges: list[tuple[int, int]] = []
    steps: list[int] = []
    for tile_dim, dim_def in zip(group_by.dimensions, array.dimensions):
        low_name, low_offset = _anchor_offset(tile_dim.low)
        if low_name != dim_def.name:
            raise SemanticError(
                f"tile bracket for dimension {dim_def.name!r} references "
                f"{low_name!r}; brackets follow declaration order"
            )
        if tile_dim.high is None:
            high_offset = low_offset + dim_def.step
        else:
            high_name, high_offset = _anchor_offset(tile_dim.high)
            if high_name != dim_def.name:
                raise SemanticError(
                    f"tile bounds must reference the same dimension "
                    f"({low_name!r} vs {high_name!r})"
                )
        ranges.append((low_offset, high_offset))
        steps.append(dim_def.step)
    return TileSpec.from_ranges(ranges, steps)


def _validate_grouped_expression(expression: Any, keys: list[Any]) -> None:
    """Check that a grouped output only uses keys, constants, aggregates."""
    if any(expression == key for key in keys):
        return
    if isinstance(expression, (ast.Literal, Parameter)):
        return
    if is_aggregate_call(expression):
        return
    if isinstance(expression, BoundColumn):
        raise SemanticError(
            f"column {expression.column!r} must appear in GROUP BY or inside "
            "an aggregate"
        )
    if isinstance(expression, ast.BinaryOp):
        _validate_grouped_expression(expression.left, keys)
        _validate_grouped_expression(expression.right, keys)
        return
    if isinstance(expression, ast.UnaryOp):
        _validate_grouped_expression(expression.operand, keys)
        return
    if isinstance(expression, ast.CaseExpression):
        for condition, value in expression.whens:
            _validate_grouped_expression(condition, keys)
            _validate_grouped_expression(value, keys)
        if expression.otherwise is not None:
            _validate_grouped_expression(expression.otherwise, keys)
        return
    if isinstance(expression, (ast.IsNull,)):
        _validate_grouped_expression(expression.operand, keys)
        return
    if isinstance(expression, ast.InList):
        _validate_grouped_expression(expression.operand, keys)
        for item in expression.items:
            _validate_grouped_expression(item, keys)
        return
    if isinstance(expression, ast.Between):
        _validate_grouped_expression(expression.operand, keys)
        _validate_grouped_expression(expression.low, keys)
        _validate_grouped_expression(expression.high, keys)
        return
    if isinstance(expression, ast.CastExpression):
        _validate_grouped_expression(expression.operand, keys)
        return
    if isinstance(expression, ast.FunctionCall):
        for argument in expression.args:
            _validate_grouped_expression(argument, keys)
        return
    if isinstance(expression, BoundCellRef):
        raise SemanticError("cell references are not allowed in grouped output")
    raise SemanticError(
        f"unsupported grouped expression {type(expression).__name__}"
    )


def plan_select(statement: ast.SelectStatement, catalog: Catalog) -> nodes.QueryPlan:
    """Compile a SELECT into a query plan."""
    sources: list[SourceInfo] = []
    node: Optional[nodes.PlanNode] = None
    for table_source in statement.sources:
        sub_node = _build_source(table_source, catalog, sources)
        node = sub_node if node is None else nodes.Join(node, sub_node, "cross")
    scope = Scope(sources)
    binder = Binder(scope, catalog)

    is_tile = isinstance(statement.group_by, ast.TileGroupBy)
    if statement.where is not None:
        if is_tile:
            raise SemanticError(
                "WHERE cannot be combined with structural GROUP BY; "
                "filter anchors with HAVING instead"
            )
        if node is None:
            raise SemanticError("WHERE without FROM")
        node = nodes.Filter(node, binder.bind(statement.where))

    # --- projection items -------------------------------------------
    items: list[nodes.OutputItem] = []
    for index, item in enumerate(statement.items):
        if isinstance(item.expression, ast.Star):
            for bound in scope.all_columns(item.expression.qualifier):
                items.append(
                    nodes.OutputItem(bound.column, bound, bound.atom, False)
                )
            continue
        bound = binder.bind(item.expression)
        name = item.alias or _default_item_name(item.expression, index)
        items.append(
            nodes.OutputItem(name, bound, infer_atom(bound), item.dimension)
        )
    result_kind = "array" if any(i.is_dimension for i in items) else "table"

    having = (
        binder.bind(statement.having) if statement.having is not None else None
    )

    # --- grouping ----------------------------------------------------
    if is_tile:
        group_by = statement.group_by
        assert isinstance(group_by, ast.TileGroupBy)
        if not isinstance(node, nodes.Scan) or node.source.kind != "array":
            raise SemanticError(
                "structural GROUP BY requires FROM to be exactly the tiled array"
            )
        if group_by.array not in (node.source.alias, node.source.object_name):
            raise SemanticError(
                f"GROUP BY tiles {group_by.array!r} which is not the FROM array"
            )
        array = catalog.get_array(node.source.object_name)
        spec = _tile_spec(group_by, array)
        projecting: nodes.PlanNode = nodes.TileProject(
            node, array.name, spec, items, having
        )
    elif isinstance(statement.group_by, ast.ValueGroupBy):
        keys = [binder.bind(e) for e in statement.group_by.expressions]
        for item in items:
            _validate_grouped_expression(item.expression, keys)
        if having is not None:
            _validate_grouped_expression(having, keys)
        if node is None:
            raise SemanticError("GROUP BY without FROM")
        projecting = nodes.Aggregate(node, keys, items, having)
    elif any(contains_aggregate(item.expression) for item in items):
        for item in items:
            _validate_grouped_expression(item.expression, [])
        if node is None:
            raise SemanticError("aggregates need a FROM clause")
        projecting = nodes.ScalarAggregate(node, items)
    else:
        if having is not None:
            raise SemanticError("HAVING requires GROUP BY")
        projecting = nodes.Project(node, items) if node is not None else nodes.Project(
            None, items
        )

    # --- distinct / order / limit ------------------------------------
    root: nodes.PlanNode = projecting
    visible_items = list(items)
    if statement.distinct:
        root = nodes.Distinct(root)

    if statement.order_by:
        sort_keys: list[tuple[Any, bool]] = []
        for order in statement.order_by:
            ref = _match_output(order.expression, visible_items)
            if ref is None:
                bound = binder.bind(order.expression)
                if isinstance(projecting, nodes.Aggregate):
                    _validate_grouped_expression(bound, projecting.keys)
                hidden_index = len(items)
                items.append(
                    nodes.OutputItem(
                        f"%sort_{hidden_index}", bound, infer_atom(bound), False
                    )
                )
                ref = nodes.OutputRef(hidden_index, infer_atom(bound))
            sort_keys.append((ref, order.descending))
        root = nodes.Sort(root, sort_keys)

    if statement.limit is not None or statement.offset is not None:
        root = nodes.LimitNode(root, statement.limit, statement.offset)

    return nodes.QueryPlan(root, visible_items, result_kind)


def _match_output(
    expression: Any, items: list[nodes.OutputItem]
) -> Optional[nodes.OutputRef]:
    """Match an ORDER BY expression against output column names/positions."""
    if isinstance(expression, ast.Literal) and isinstance(expression.value, int):
        position = expression.value - 1
        if 0 <= position < len(items):
            return nodes.OutputRef(position, items[position].atom)
    if isinstance(expression, ast.ColumnRef) and expression.qualifier is None:
        for index, item in enumerate(items):
            if item.name == expression.name:
                return nodes.OutputRef(index, item.atom)
    return None
