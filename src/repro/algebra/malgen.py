"""Algebra plan → MAL lowering (the "MAL Generator" of Figure 2).

The generator walks a :mod:`repro.algebra.nodes` plan and emits a
linear MAL program.  Conventions:

* every relational node yields a *binding*: a set of head-aligned BAT
  variables, one per visible column, plus a reference variable used
  for alignment (constant broadcasting);
* predicates become ``bit`` BATs followed by ``algebra.select`` into a
  candidate list, then ``algebra.projection`` of every column —
  MonetDB's classic select/project dance;
* structural grouping lowers to ``array.tileagg`` per aggregate — a
  tile-size-independent prefix-sum/sliding-window kernel; no join is
  ever built (the whole point of the paper's Scenario I comparison).
  Each tiling op carries a JSON tile-spec metadata constant so the
  optimizer passes can compute halo extents and split the op into
  fragment-parallel ``array.tilepart`` calls;
* DML lowers to ``sql.update`` / ``sql.append`` / ``sql.delete`` with
  SciQL cell semantics preserved for arrays (DELETE punches holes,
  INSERT overwrites cells in place).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import SemanticError
from repro.gdk.atoms import Atom
from repro.catalog import Array, Catalog
from repro.semantic.binder import BoundCellRef, BoundColumn, Parameter
from repro.semantic.types import infer_atom, is_aggregate_call
from repro.sql import ast_nodes as ast
from repro.algebra import nodes
from repro.mal.program import Constant, MALProgram, Param, Var, bat_type, scalar_type

_BAT = "bat"
_SCALAR = "scalar"


@dataclass
class EvalResult:
    """Either an aligned BAT variable or a scalar (variable/constant)."""

    kind: str  # "bat" | "scalar"
    value: Var | Constant
    atom: Optional[Atom]


@dataclass
class Binding:
    """Aligned BAT variables for the visible columns of a plan node.

    Candidate lists are propagated *lazily*: a selection or join does
    not copy every payload column through the qualifying oids (the seed
    behaviour); instead each column keeps its base BAT plus a pending
    candidate-list variable, and the payload fetch is emitted only when
    — and if — the column is actually referenced.  Successive row-set
    reductions compose their oid lists with a cheap oid-on-oid
    ``algebra.projection`` instead of re-copying payloads, mirroring how
    MonetDB threads candidate lists between GDK kernels.
    """

    vars: dict[tuple[int, str], str] = field(default_factory=dict)
    atoms: dict[tuple[int, str], Atom] = field(default_factory=dict)
    ref: Optional[str] = None  # any variable of row-set length, for broadcast
    #: per-column pending candidate list: (oid var, needs projectionsafe)
    pending: dict[tuple[int, str], Optional[tuple[str, bool]]] = field(
        default_factory=dict
    )

    def column_var(self, generator: "MALGenerator", key: tuple[int, str]) -> str:
        """The column as a row-set-aligned BAT var, fetching it on demand."""
        entry = self.pending.get(key)
        if entry is None:
            return self.vars[key]
        candidates, safe = entry
        op = "projectionsafe" if safe else "projection"
        var = generator.program.emit1(
            "algebra", op, [Var(candidates), Var(self.vars[key])],
            bat_type(self.atoms[key]),
        )
        self.vars[key] = var  # memoize: fetch each column at most once
        self.pending[key] = None
        return var

    def restrict(self, generator: "MALGenerator", positions: str) -> "Binding":
        """New binding narrowed to *positions* (oids into the current row set).

        Pending candidate lists are composed with an oid-level
        projection — one per distinct list, never per payload column.
        """
        out = Binding(vars=dict(self.vars), atoms=dict(self.atoms), ref=positions)
        composed: dict[str, str] = {}
        for key in self.vars:
            entry = self.pending.get(key)
            if entry is None:
                out.pending[key] = (positions, False)
                continue
            candidates, safe = entry
            if candidates not in composed:
                composed[candidates] = generator.program.emit1(
                    "algebra", "projection",
                    [Var(positions), Var(candidates)], bat_type(Atom.OID),
                )
            out.pending[key] = (composed[candidates], safe)
        return out


def _source_indexes(node: nodes.PlanNode) -> set[int]:
    if isinstance(node, nodes.Scan):
        return {node.source_index}
    if isinstance(node, nodes.DerivedScan):
        return {node.source_index}
    if isinstance(node, nodes.Join):
        return _source_indexes(node.left) | _source_indexes(node.right)
    if isinstance(node, nodes.Filter):
        return _source_indexes(node.child)
    raise SemanticError(f"unexpected relational node {type(node).__name__}")


def _expression_sources(expression: Any) -> set[int]:
    if isinstance(expression, BoundColumn):
        return {expression.source}
    if isinstance(expression, BoundCellRef):
        out: set[int] = set()
        for index in expression.indexes:
            out |= _expression_sources(index)
        return out
    if isinstance(expression, ast.BinaryOp):
        return _expression_sources(expression.left) | _expression_sources(
            expression.right
        )
    if isinstance(expression, ast.UnaryOp):
        return _expression_sources(expression.operand)
    if isinstance(expression, ast.FunctionCall):
        out = set()
        for argument in expression.args:
            out |= _expression_sources(argument)
        return out
    if isinstance(expression, ast.CaseExpression):
        out = set()
        for condition, value in expression.whens:
            out |= _expression_sources(condition) | _expression_sources(value)
        if expression.otherwise is not None:
            out |= _expression_sources(expression.otherwise)
        return out
    if isinstance(expression, ast.IsNull):
        return _expression_sources(expression.operand)
    if isinstance(expression, ast.InList):
        out = _expression_sources(expression.operand)
        for item in expression.items:
            out |= _expression_sources(item)
        return out
    if isinstance(expression, ast.Between):
        return (
            _expression_sources(expression.operand)
            | _expression_sources(expression.low)
            | _expression_sources(expression.high)
        )
    if isinstance(expression, ast.CastExpression):
        return _expression_sources(expression.operand)
    return set()


def _split_equi_conjuncts(
    condition: Any, left_sources: set[int], right_sources: set[int]
) -> tuple[list[tuple[Any, Any]], list[Any]]:
    """Partition an ON condition into equi pairs (left, right) + residual."""
    conjuncts: list[Any] = []

    def flatten(expr: Any) -> None:
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            flatten(expr.left)
            flatten(expr.right)
        else:
            conjuncts.append(expr)

    flatten(condition)
    equi: list[tuple[Any, Any]] = []
    residual: list[Any] = []
    for conjunct in conjuncts:
        if isinstance(conjunct, ast.BinaryOp) and conjunct.op == "=":
            ls = _expression_sources(conjunct.left)
            rs = _expression_sources(conjunct.right)
            if ls and rs:
                if ls <= left_sources and rs <= right_sources:
                    equi.append((conjunct.left, conjunct.right))
                    continue
                if ls <= right_sources and rs <= left_sources:
                    equi.append((conjunct.right, conjunct.left))
                    continue
        residual.append(conjunct)
    return equi, residual


class MALGenerator:
    """Lowers statement plans to MAL programs."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self.program = MALProgram()

    # ------------------------------------------------------------------
    # entry point
    # ------------------------------------------------------------------
    def generate(self, plan: nodes.StatementPlan) -> MALProgram:
        self.program = MALProgram()
        if isinstance(plan, nodes.QueryPlan):
            self._emit_result(plan)
        elif isinstance(plan, nodes.SetOpPlan):
            self._emit_set_operation_result(plan)
        elif isinstance(plan, nodes.CreateTablePlan):
            self.program.emit(
                "sql", "createTable",
                [plan.name, plan.columns_json, plan.if_not_exists],
                [scalar_type(Atom.INT)],
            )
        elif isinstance(plan, nodes.CreateArrayPlan):
            self.program.emit(
                "sql", "createArray",
                [plan.name, plan.dimensions_json, plan.attributes_json,
                 plan.if_not_exists],
                [scalar_type(Atom.INT)],
            )
        elif isinstance(plan, nodes.DropPlan):
            self.program.emit(
                "sql", "dropObject", [plan.name, plan.if_exists],
                [scalar_type(Atom.INT)],
            )
        elif isinstance(plan, nodes.AlterDimensionPlan):
            self.program.emit(
                "sql", "alterDimension",
                [plan.array, plan.dimension, plan.start, plan.step, plan.stop],
                [scalar_type(Atom.INT)],
            )
        elif isinstance(plan, nodes.InsertValuesPlan):
            self._emit_insert_values(plan)
        elif isinstance(plan, nodes.InsertSelectPlan):
            self._emit_insert_select(plan)
        elif isinstance(plan, nodes.UpdatePlan):
            self._emit_update(plan)
        elif isinstance(plan, nodes.DeletePlan):
            self._emit_delete(plan)
        else:
            raise SemanticError(f"cannot lower plan {type(plan).__name__}")
        self.program.validate()
        return self.program

    # ------------------------------------------------------------------
    # SELECT
    # ------------------------------------------------------------------
    def _emit_result(self, plan: nodes.QueryPlan) -> None:
        output_vars, all_items = self._emit_output(plan.root)
        visible = output_vars[: len(plan.items)]
        names = [item.name for item in plan.items]
        meta = {
            "dims": [item.name for item in plan.items if item.is_dimension],
            "atoms": [
                (item.atom.value if item.atom else None) for item in plan.items
            ],
        }
        args: list[Any] = [
            plan.result_kind,
            json.dumps(names),
            json.dumps(meta),
        ]
        args.extend(Var(v) for v in visible)
        self.program.emit("sql", "resultSet", args, [scalar_type(Atom.INT)])
        self.program.result_columns = list(zip(names, visible))
        self.program.result_kind = plan.result_kind

    def _emit_set_operation_result(self, plan: nodes.SetOpPlan) -> None:
        output_vars = self._emit_set_operation(plan)
        names = [item.name for item in plan.items]
        meta = {
            "dims": [item.name for item in plan.items if item.is_dimension],
            "atoms": [
                (item.atom.value if item.atom else None) for item in plan.items
            ],
        }
        args: list[Any] = [plan.result_kind, json.dumps(names), json.dumps(meta)]
        args.extend(Var(v) for v in output_vars)
        self.program.emit("sql", "resultSet", args, [scalar_type(Atom.INT)])
        self.program.result_columns = list(zip(names, output_vars))
        self.program.result_kind = plan.result_kind

    def _emit_query_side(self, plan) -> list[str]:
        """Output vars of one side of a set operation (visible columns)."""
        if isinstance(plan, nodes.SetOpPlan):
            return self._emit_set_operation(plan)
        output_vars, _ = self._emit_output(plan.root)
        return output_vars[: len(plan.items)]

    def _emit_set_operation(self, plan: nodes.SetOpPlan) -> list[str]:
        left_vars = self._emit_query_side(plan.left)
        right_vars = self._emit_query_side(plan.right)
        # Reconcile atoms: cast both sides to the merged item atoms.
        cast_left: list[str] = []
        cast_right: list[str] = []
        for item, lvar, rvar in zip(plan.items, left_vars, right_vars):
            atom = item.atom or Atom.INT
            cast_left.append(
                self.program.emit1(
                    "bat", "cast", [Var(lvar), atom.value], bat_type(atom)
                )
            )
            cast_right.append(
                self.program.emit1(
                    "bat", "cast", [Var(rvar), atom.value], bat_type(atom)
                )
            )
        if plan.op == "union":
            merged = [
                self.program.emit1(
                    "bat", "append", [Var(l), Var(r)], self.program.type_of(l)
                )
                for l, r in zip(cast_left, cast_right)
            ]
            if plan.all:
                return merged
            return self._distinct_vars(merged)
        # EXCEPT / INTERSECT: membership of left rows in the right set.
        membership = self.program.emit1(
            "algebra", "rowmembership",
            [len(cast_left)]
            + [Var(v) for v in cast_left]
            + [Var(v) for v in cast_right],
            bat_type(Atom.BIT),
        )
        if plan.op == "except":
            membership = self.program.emit1(
                "batcalc", "not", [Var(membership)], bat_type(Atom.BIT)
            )
        candidates = self.program.emit1(
            "algebra", "select", [Var(membership)], bat_type(Atom.OID)
        )
        selected = [
            self.program.emit1(
                "algebra", "projection", [Var(candidates), Var(v)],
                self.program.type_of(v),
            )
            for v in cast_left
        ]
        return self._distinct_vars(selected)

    def _distinct_vars(self, variables: list[str]) -> list[str]:
        """Duplicate elimination over aligned result columns."""
        if not variables:
            return variables
        groups = extents = None
        for variable in variables:
            if groups is None:
                groups, extents, _ = self.program.emit(
                    "group", "group", [Var(variable)],
                    [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                )
            else:
                groups, extents, _ = self.program.emit(
                    "group", "subgroup", [Var(variable), Var(groups)],
                    [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                )
        return [
            self.program.emit1(
                "algebra", "projection", [Var(extents), Var(v)],
                self.program.type_of(v),
            )
            for v in variables
        ]

    def _emit_output(self, node: nodes.PlanNode) -> tuple[list[str], list[nodes.OutputItem]]:
        """Emit a projecting pipeline; returns aligned output vars + items."""
        if isinstance(node, nodes.LimitNode):
            child_vars, items = self._emit_output(node.child)
            start = node.offset or 0
            stop = start + node.limit if node.limit is not None else 2**62
            out = [
                self.program.emit1(
                    "bat", "slice", [Var(v), start, stop],
                    self.program.type_of(v),
                )
                for v in child_vars
            ]
            return out, items
        if isinstance(node, nodes.Sort):
            child_vars, items = self._emit_output(node.child)
            key_vars: list[str] = []
            flags: list[bool] = []
            for ref, descending in node.keys:
                if not isinstance(ref, nodes.OutputRef):
                    raise SemanticError("sort keys must be output references")
                key_vars.append(child_vars[ref.index])
                flags.append(descending)
            order = self.program.emit1(
                "algebra", "sortmulti",
                [json.dumps(flags)] + [Var(v) for v in key_vars],
                bat_type(Atom.OID),
            )
            out = [
                self.program.emit1(
                    "algebra", "projection", [Var(order), Var(v)],
                    self.program.type_of(v),
                )
                for v in child_vars
            ]
            return out, items
        if isinstance(node, nodes.Distinct):
            child_vars, items = self._emit_output(node.child)
            if not child_vars:
                return child_vars, items
            groups = None
            extents = None
            for var in child_vars:
                if groups is None:
                    groups, extents, _ = self.program.emit(
                        "group", "group", [Var(var)],
                        [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                    )
                else:
                    groups, extents, _ = self.program.emit(
                        "group", "subgroup", [Var(var), Var(groups)],
                        [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                    )
            out = [
                self.program.emit1(
                    "algebra", "projection", [Var(extents), Var(v)],
                    self.program.type_of(v),
                )
                for v in child_vars
            ]
            return out, items
        if isinstance(node, nodes.Project):
            return self._emit_project(node), node.items
        if isinstance(node, nodes.Aggregate):
            return self._emit_aggregate(node), node.items
        if isinstance(node, nodes.ScalarAggregate):
            return self._emit_scalar_aggregate(node), node.items
        if isinstance(node, nodes.TileProject):
            return self._emit_tile(node), node.items
        raise SemanticError(f"unexpected output node {type(node).__name__}")

    # ------------------------------------------------------------------
    # relational sub-tree
    # ------------------------------------------------------------------
    def _emit_relational(self, node: nodes.PlanNode) -> Binding:
        if isinstance(node, nodes.Scan):
            binding = Binding()
            for column, atom in node.source.columns:
                var = self.program.emit1(
                    "sql", "bind", [node.source.object_name, column],
                    bat_type(atom),
                    comment=f"{node.source.alias}.{column}",
                )
                binding.vars[(node.source_index, column)] = var
                binding.atoms[(node.source_index, column)] = atom
            binding.ref = next(iter(binding.vars.values()), None)
            return binding
        if isinstance(node, nodes.DerivedScan):
            output_vars = self._emit_query_side(node.plan)
            binding = Binding()
            for (column, atom), var in zip(node.source.columns, output_vars):
                binding.vars[(node.source_index, column)] = var
                binding.atoms[(node.source_index, column)] = atom
            binding.ref = next(iter(binding.vars.values()), None)
            return binding
        if isinstance(node, nodes.Filter):
            binding = self._emit_relational(node.child)
            predicate = self._force_bat(
                self._eval(node.predicate, binding), binding
            )
            candidates = self.program.emit1(
                "algebra", "select", [Var(predicate)], bat_type(Atom.OID)
            )
            return binding.restrict(self, candidates)
        if isinstance(node, nodes.Join):
            return self._emit_join(node)
        raise SemanticError(f"unexpected relational node {type(node).__name__}")

    def _emit_join(self, node: nodes.Join) -> Binding:
        left = self._emit_relational(node.left)
        right = self._emit_relational(node.right)
        left_sources = _source_indexes(node.left)
        right_sources = _source_indexes(node.right)

        def combine(loids: str, roids: str, safe_right: bool = False) -> Binding:
            """Joined binding: payload fetches stay pending behind the oids."""
            out = Binding(atoms={**left.atoms, **right.atoms}, ref=loids)
            for side, oids in ((left, loids), (right, roids)):
                composed: dict[str, str] = {}
                for key, var in side.vars.items():
                    if side is right and safe_right:
                        # Left-outer right side: roids may hold -1, which
                        # plain oid composition cannot thread; fetch the
                        # column through any pending list first and mark
                        # it for projectionsafe.
                        out.vars[key] = side.column_var(self, key)
                        out.pending[key] = (roids, True)
                        continue
                    out.vars[key] = var
                    entry = side.pending.get(key)
                    if entry is None:
                        out.pending[key] = (oids, False)
                        continue
                    candidates, safe = entry
                    if candidates not in composed:
                        composed[candidates] = self.program.emit1(
                            "algebra", "projection",
                            [Var(oids), Var(candidates)], bat_type(Atom.OID),
                        )
                    out.pending[key] = (composed[candidates], safe)
            return out

        if node.kind == "cross" or node.condition is None:
            if node.kind == "left":
                raise SemanticError("LEFT JOIN requires an ON condition")
            lcount = self.program.emit1(
                "bat", "getcount", [Var(left.ref)], scalar_type(Atom.LNG)
            )
            rcount = self.program.emit1(
                "bat", "getcount", [Var(right.ref)], scalar_type(Atom.LNG)
            )
            loids, roids = self.program.emit(
                "algebra", "crossproduct", [Var(lcount), Var(rcount)],
                [bat_type(Atom.OID), bat_type(Atom.OID)],
            )
            return combine(loids, roids)

        equi, residual = _split_equi_conjuncts(
            node.condition, left_sources, right_sources
        )
        if equi:
            left_key, right_key = equi[0]
            key_left = self._force_bat(self._eval(left_key, left), left)
            key_right = self._force_bat(self._eval(right_key, right), right)
            if node.kind == "left":
                if equi[1:] or residual:
                    raise SemanticError(
                        "LEFT JOIN supports a single equality condition"
                    )
                loids, roids = self.program.emit(
                    "algebra", "leftjoin", [Var(key_left), Var(key_right)],
                    [bat_type(Atom.OID), bat_type(Atom.OID)],
                )
                return combine(loids, roids, safe_right=True)
            loids, roids = self.program.emit(
                "algebra", "join", [Var(key_left), Var(key_right)],
                [bat_type(Atom.OID), bat_type(Atom.OID)],
            )
            binding = combine(loids, roids)
            leftover = equi[1:]
            extra = [ast.BinaryOp("=", a, b) for a, b in leftover] + residual
        else:
            if node.kind == "left":
                raise SemanticError("LEFT JOIN requires an equality condition")
            lcount = self.program.emit1(
                "bat", "getcount", [Var(left.ref)], scalar_type(Atom.LNG)
            )
            rcount = self.program.emit1(
                "bat", "getcount", [Var(right.ref)], scalar_type(Atom.LNG)
            )
            loids, roids = self.program.emit(
                "algebra", "crossproduct", [Var(lcount), Var(rcount)],
                [bat_type(Atom.OID), bat_type(Atom.OID)],
            )
            binding = combine(loids, roids)
            extra = [node.condition]
        for conjunct in extra:
            predicate = self._force_bat(self._eval(conjunct, binding), binding)
            candidates = self.program.emit1(
                "algebra", "select", [Var(predicate)], bat_type(Atom.OID)
            )
            binding = binding.restrict(self, candidates)
        return binding

    # ------------------------------------------------------------------
    # projecting nodes
    # ------------------------------------------------------------------
    def _emit_project(self, node: nodes.Project) -> list[str]:
        if node.child is None:
            # FROM-less SELECT: every item must be scalar; one result row.
            out: list[str] = []
            for item in node.items:
                result = self._eval(item.expression, None)
                if result.kind != _SCALAR:
                    raise SemanticError("SELECT without FROM must be constant")
                out.append(
                    self.program.emit1(
                        "bat", "pack", [result.value],
                        bat_type(result.atom or Atom.INT),
                    )
                )
            return out
        binding = self._emit_relational(node.child)
        return [
            self._force_bat(self._eval(item.expression, binding), binding, item.atom)
            for item in node.items
        ]

    def _emit_aggregate(self, node: nodes.Aggregate) -> list[str]:
        binding = self._emit_relational(node.child)
        key_vars: list[str] = []
        for key in node.keys:
            key_vars.append(
                self._force_bat(self._eval(key, binding), binding)
            )
        groups = extents = None
        for key_var in key_vars:
            if groups is None:
                groups, extents, _ = self.program.emit(
                    "group", "group", [Var(key_var)],
                    [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                )
            else:
                groups, extents, _ = self.program.emit(
                    "group", "subgroup", [Var(key_var), Var(groups)],
                    [bat_type(Atom.OID), bat_type(Atom.OID), bat_type(Atom.OID)],
                )
        ngroups = self.program.emit1(
            "bat", "getcount", [Var(extents)], scalar_type(Atom.LNG)
        )
        grouped = _GroupedContext(
            self, binding, node.keys, key_vars, groups, extents, ngroups
        )
        output = [
            grouped.force_bat(grouped.eval(item.expression), item.atom)
            for item in node.items
        ]
        if node.having is not None:
            predicate = grouped.force_bat(grouped.eval(node.having))
            candidates = self.program.emit1(
                "algebra", "select", [Var(predicate)], bat_type(Atom.OID)
            )
            output = [
                self.program.emit1(
                    "algebra", "projection", [Var(candidates), Var(v)],
                    self.program.type_of(v),
                )
                for v in output
            ]
        return output

    def _emit_scalar_aggregate(self, node: nodes.ScalarAggregate) -> list[str]:
        binding = self._emit_relational(node.child)
        out: list[str] = []
        for item in node.items:
            result = self._eval_scalar_aggregate(item.expression, binding)
            out.append(
                self.program.emit1(
                    "bat", "pack", [result.value],
                    bat_type(result.atom or item.atom or Atom.INT),
                )
            )
        return out

    def _eval_scalar_aggregate(self, expression: Any, binding: Binding) -> EvalResult:
        if is_aggregate_call(expression):
            name = expression.name
            if expression.star:
                count = self.program.emit1(
                    "bat", "getcount", [Var(binding.ref)], scalar_type(Atom.LNG)
                )
                return EvalResult(_SCALAR, Var(count), Atom.LNG)
            value = self._force_bat(
                self._eval(expression.args[0], binding), binding
            )
            atom = infer_atom(expression)
            if expression.distinct:
                if name != "count":
                    raise SemanticError(
                        f"DISTINCT is only supported for COUNT, not {name.upper()}"
                    )
                var = self.program.emit1(
                    "aggr", "countdistinct", [Var(value)], scalar_type(Atom.LNG)
                )
                return EvalResult(_SCALAR, Var(var), Atom.LNG)
            var = self.program.emit1(
                "aggr", name, [Var(value)], scalar_type(atom or Atom.DBL)
            )
            return EvalResult(_SCALAR, Var(var), atom)
        if isinstance(expression, ast.Literal):
            return EvalResult(
                _SCALAR, Constant(expression.value), infer_atom(expression)
            )
        if isinstance(expression, Parameter):
            return EvalResult(_SCALAR, Param(expression.key), expression.atom)
        if isinstance(expression, ast.BinaryOp):
            left = self._eval_scalar_aggregate(expression.left, binding)
            right = self._eval_scalar_aggregate(expression.right, binding)
            return self._scalar_binary(expression.op, left, right, expression)
        if isinstance(expression, ast.UnaryOp):
            operand = self._eval_scalar_aggregate(expression.operand, binding)
            op_name = "not" if expression.op == "NOT" else "negate"
            var = self.program.emit1(
                "calc", op_name, [operand.value],
                scalar_type(operand.atom or Atom.BIT),
            )
            return EvalResult(_SCALAR, Var(var), operand.atom)
        if isinstance(expression, ast.CastExpression):
            operand = self._eval_scalar_aggregate(expression.operand, binding)
            atom = infer_atom(expression)
            var = self.program.emit1(
                "calc", "cast", [operand.value, atom.value], scalar_type(atom)
            )
            return EvalResult(_SCALAR, Var(var), atom)
        raise SemanticError(
            "scalar aggregate output may only combine aggregates and constants"
        )

    def _emit_tile(self, node: nodes.TileProject) -> list[str]:
        binding = self._emit_relational(node.child)
        array = self.catalog.get_array(node.array_name)
        # One canonical metadata constant per tiling op: the optimizer
        # passes (mitosis/mergetable) parse it to size halo fragments.
        meta_json = json.dumps(
            {
                "shape": list(array.shape()),
                "offsets": [list(o) for o in node.spec.offsets],
            }
        )
        tile = _TileContext(self, binding, meta_json)
        output = [
            tile.force_bat(tile.eval(item.expression), item.atom)
            for item in node.items
        ]
        if node.having is not None:
            predicate = tile.force_bat(tile.eval(node.having))
            is_array_result = any(item.is_dimension for item in node.items)
            if is_array_result:
                # Array-shaped result: non-qualifying anchors stay in the
                # array but their aggregate values become NULL (Fig 1(e)).
                masked: list[str] = []
                for item, var in zip(node.items, output):
                    if item.is_dimension:
                        masked.append(var)
                    else:
                        masked.append(
                            self.program.emit1(
                                "batcalc", "ifthenelse",
                                [Var(predicate), Var(var), Constant(None)],
                                self.program.type_of(var),
                            )
                        )
                output = masked
            else:
                candidates = self.program.emit1(
                    "algebra", "select", [Var(predicate)], bat_type(Atom.OID)
                )
                output = [
                    self.program.emit1(
                        "algebra", "projection", [Var(candidates), Var(v)],
                        self.program.type_of(v),
                    )
                    for v in output
                ]
        return output

    # ------------------------------------------------------------------
    # row-mode expression evaluation
    # ------------------------------------------------------------------
    def _force_bat(
        self,
        result: EvalResult,
        binding: Optional[Binding],
        atom: Optional[Atom] = None,
    ) -> str:
        """Ensure an evaluation result is an aligned BAT variable."""
        if result.kind == _BAT:
            assert isinstance(result.value, Var)
            return result.value.name
        if binding is None or binding.ref is None:
            raise SemanticError("cannot broadcast a constant without a FROM row set")
        target_atom = result.atom or atom
        if target_atom is None and isinstance(result.value, Param):
            # Untyped parameter: let the runtime infer the atom from the
            # bound value instead of coercing through a guessed type.
            return self.program.emit1(
                "bat", "project_const",
                [Var(binding.ref), result.value, None],
                bat_type(None),
            )
        if target_atom is None:
            target_atom = Atom.INT
        return self.program.emit1(
            "bat", "project_const",
            [Var(binding.ref), result.value, target_atom.value],
            bat_type(target_atom),
        )

    def _eval(self, expression: Any, binding: Optional[Binding]) -> EvalResult:
        """Evaluate an expression over a row binding (no aggregates)."""
        if isinstance(expression, ast.Literal):
            return EvalResult(
                _SCALAR, Constant(expression.value), infer_atom(expression)
            )
        if isinstance(expression, Parameter):
            return EvalResult(_SCALAR, Param(expression.key), expression.atom)
        if isinstance(expression, BoundColumn):
            if binding is None:
                raise SemanticError("column reference without a FROM clause")
            var = binding.column_var(self, (expression.source, expression.column))
            return EvalResult(_BAT, Var(var), expression.atom)
        if isinstance(expression, BoundCellRef):
            return self._eval_cell_ref(expression, binding)
        if isinstance(expression, ast.BinaryOp):
            left = self._eval(expression.left, binding)
            right = self._eval(expression.right, binding)
            return self._binary(expression.op, left, right, expression, binding)
        if isinstance(expression, ast.UnaryOp):
            operand = self._eval(expression.operand, binding)
            return self._unary(expression.op, operand, binding)
        if isinstance(expression, ast.FunctionCall):
            return self._function(expression, binding)
        if isinstance(expression, ast.CaseExpression):
            return self._case(expression, binding, lambda e: self._eval(e, binding))
        if isinstance(expression, ast.IsNull):
            operand = self._eval(expression.operand, binding)
            forced = self._force_bat(operand, binding)
            var = self.program.emit1(
                "batcalc", "isnil", [Var(forced)], bat_type(Atom.BIT)
            )
            result = EvalResult(_BAT, Var(var), Atom.BIT)
            if expression.negated:
                return self._unary("NOT", result, binding)
            return result
        if isinstance(expression, ast.InList):
            return self._in_list(expression, binding, lambda e: self._eval(e, binding))
        if isinstance(expression, ast.Between):
            return self._between(expression, binding, lambda e: self._eval(e, binding))
        if isinstance(expression, ast.CastExpression):
            operand = self._eval(expression.operand, binding)
            atom = infer_atom(expression)
            if operand.kind == _SCALAR:
                var = self.program.emit1(
                    "calc", "cast", [operand.value, atom.value], scalar_type(atom)
                )
                return EvalResult(_SCALAR, Var(var), atom)
            var = self.program.emit1(
                "batcalc", "cast", [operand.value, atom.value], bat_type(atom)
            )
            return EvalResult(_BAT, Var(var), atom)
        if is_aggregate_call(expression):
            raise SemanticError("aggregate used outside GROUP BY context")
        raise SemanticError(f"cannot evaluate {type(expression).__name__}")

    _OP_NAMES = {
        "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
        "=": "eq", "<>": "ne", "!=": "ne", "<": "lt", "<=": "le",
        ">": "gt", ">=": "ge", "AND": "and", "OR": "or", "||": "concat",
    }

    def _binary(
        self,
        op: str,
        left: EvalResult,
        right: EvalResult,
        expression: Any,
        binding: Optional[Binding],
    ) -> EvalResult:
        name = self._OP_NAMES.get(op)
        if name is None:
            raise SemanticError(f"unsupported operator {op!r}")
        atom = infer_atom(expression)
        if left.kind == _SCALAR and right.kind == _SCALAR:
            var = self.program.emit1(
                "calc", name, [left.value, right.value],
                scalar_type(atom or Atom.INT),
            )
            return EvalResult(_SCALAR, Var(var), atom)
        var = self.program.emit1(
            "batcalc", name, [left.value, right.value],
            bat_type(atom or Atom.INT),
        )
        return EvalResult(_BAT, Var(var), atom)

    def _scalar_binary(
        self, op: str, left: EvalResult, right: EvalResult, expression: Any
    ) -> EvalResult:
        name = self._OP_NAMES.get(op)
        if name is None:
            raise SemanticError(f"unsupported operator {op!r}")
        atom = infer_atom(expression)
        var = self.program.emit1(
            "calc", name, [left.value, right.value], scalar_type(atom or Atom.INT)
        )
        return EvalResult(_SCALAR, Var(var), atom)

    def _unary(
        self, op: str, operand: EvalResult, binding: Optional[Binding]
    ) -> EvalResult:
        name = "not" if op == "NOT" else "negate"
        module = "calc" if operand.kind == _SCALAR else "batcalc"
        result_type = (
            scalar_type(operand.atom or Atom.BIT)
            if operand.kind == _SCALAR
            else bat_type(operand.atom or Atom.BIT)
        )
        var = self.program.emit1(module, name, [operand.value], result_type)
        return EvalResult(operand.kind, Var(var), operand.atom)

    def _function(
        self, expression: ast.FunctionCall, binding: Optional[Binding]
    ) -> EvalResult:
        if not expression.args:
            raise SemanticError(f"function {expression.name!r} needs arguments")
        operand = self._eval(expression.args[0], binding)
        return self._function_on(expression, operand)

    def _function_on(
        self, expression: ast.FunctionCall, operand: Optional[EvalResult]
    ) -> EvalResult:
        """Apply a non-aggregate function to an already evaluated operand."""
        if operand is None:
            raise SemanticError(f"function {expression.name!r} needs arguments")
        name = expression.name
        atom = infer_atom(expression)
        module = "calc" if operand.kind == _SCALAR else "batcalc"
        result_type = (
            scalar_type(atom) if operand.kind == _SCALAR else bat_type(atom)
        )
        if name == "abs":
            var = self.program.emit1(module, "abs", [operand.value], result_type)
            return EvalResult(operand.kind, Var(var), atom)
        from repro.semantic.types import (
            MATH_FUNCTIONS,
            ROUNDING_FUNCTIONS,
            STRING_FUNCTIONS,
        )

        if name in MATH_FUNCTIONS or name in ROUNDING_FUNCTIONS:
            var = self.program.emit1(
                module, "math", [Constant(name), operand.value], result_type
            )
            return EvalResult(operand.kind, Var(var), atom)
        if name in STRING_FUNCTIONS:
            return self._string_function(expression, operand, module, result_type)
        raise SemanticError(f"unknown function {name!r}")

    def _string_function(
        self,
        expression: ast.FunctionCall,
        operand: EvalResult,
        module: str,
        result_type,
    ) -> EvalResult:
        """Lower lower/upper/trim/length/substring/like applications."""
        from repro.algebra.compiler import fold_constant

        name = expression.name
        atom = infer_atom(expression)
        if name in ("lower", "upper", "trim"):
            var = self.program.emit1(module, name, [operand.value], result_type)
            return EvalResult(operand.kind, Var(var), atom)
        if name in ("length", "char_length"):
            var = self.program.emit1(module, "length", [operand.value], result_type)
            return EvalResult(operand.kind, Var(var), atom)
        if name in ("substring", "substr"):
            if len(expression.args) not in (2, 3):
                raise SemanticError("SUBSTRING needs (string, start[, length])")
            extra = [Constant(int(fold_constant(a))) for a in expression.args[1:]]
            var = self.program.emit1(
                module, "substring", [operand.value] + extra, result_type
            )
            return EvalResult(operand.kind, Var(var), atom)
        if name == "like":
            if len(expression.args) != 2:
                raise SemanticError("LIKE needs (string, pattern)")
            pattern = fold_constant(expression.args[1])
            var = self.program.emit1(
                module, "like", [operand.value, Constant(pattern)], result_type
            )
            return EvalResult(operand.kind, Var(var), atom)
        raise SemanticError(f"unknown string function {name!r}")

    def _case(self, expression: ast.CaseExpression, binding, evaluator) -> EvalResult:
        pieces: list[tuple[EvalResult, EvalResult]] = [
            (evaluator(condition), evaluator(value))
            for condition, value in expression.whens
        ]
        otherwise = (
            evaluator(expression.otherwise)
            if expression.otherwise is not None
            else EvalResult(_SCALAR, Constant(None), None)
        )
        any_bat = otherwise.kind == _BAT or any(
            c.kind == _BAT or v.kind == _BAT for c, v in pieces
        )
        atom = infer_atom(expression)
        accumulator = otherwise
        for condition, value in reversed(pieces):
            if any_bat:
                cond_var = self._force_bat(condition, binding, Atom.BIT)
                var = self.program.emit1(
                    "batcalc", "ifthenelse",
                    [Var(cond_var), value.value, accumulator.value],
                    bat_type(atom or value.atom or Atom.INT),
                )
                accumulator = EvalResult(_BAT, Var(var), atom or value.atom)
            else:
                var = self.program.emit1(
                    "calc", "ifthenelse",
                    [condition.value, value.value, accumulator.value],
                    scalar_type(atom or value.atom or Atom.INT),
                )
                accumulator = EvalResult(_SCALAR, Var(var), atom or value.atom)
        return accumulator

    def _in_list(self, expression: ast.InList, binding, evaluator) -> EvalResult:
        operand = evaluator(expression.operand)
        result: Optional[EvalResult] = None
        for item in expression.items:
            item_result = evaluator(item)
            comparison = self._binary(
                "=", operand, item_result,
                ast.BinaryOp("=", expression.operand, item), binding,
            )
            if result is None:
                result = comparison
            else:
                result = self._binary(
                    "OR", result, comparison,
                    ast.BinaryOp("OR", ast.Literal(True), ast.Literal(True)),
                    binding,
                )
        assert result is not None
        if expression.negated:
            return self._unary("NOT", result, binding)
        return result

    def _between(self, expression: ast.Between, binding, evaluator) -> EvalResult:
        operand = evaluator(expression.operand)
        low = evaluator(expression.low)
        high = evaluator(expression.high)
        ge = self._binary(
            ">=", operand, low,
            ast.BinaryOp(">=", expression.operand, expression.low), binding,
        )
        le = self._binary(
            "<=", operand, high,
            ast.BinaryOp("<=", expression.operand, expression.high), binding,
        )
        result = self._binary(
            "AND", ge, le,
            ast.BinaryOp("AND", ast.Literal(True), ast.Literal(True)), binding,
        )
        if expression.negated:
            return self._unary("NOT", result, binding)
        return result

    def _eval_cell_ref(
        self, expression: BoundCellRef, binding: Optional[Binding]
    ) -> EvalResult:
        if binding is None:
            raise SemanticError("cell reference without a FROM clause")
        array = self.catalog.get_array(expression.array)
        shape_json = json.dumps(list(array.shape()))
        dims_json = json.dumps(
            [[d.start, d.step, d.stop] for d in array.dimensions]
        )
        coordinate_vars: list[str] = []
        for index_expression in expression.indexes:
            coordinate_vars.append(
                self._force_bat(self._eval(index_expression, binding), binding, Atom.LNG)
            )
        oids = self.program.emit1(
            "array", "cellindex",
            [shape_json, dims_json] + [Var(v) for v in coordinate_vars],
            bat_type(Atom.OID),
        )
        attribute = self.program.emit1(
            "sql", "bind", [expression.array, expression.attribute],
            bat_type(expression.atom),
        )
        var = self.program.emit1(
            "algebra", "projectionsafe", [Var(oids), Var(attribute)],
            bat_type(expression.atom),
        )
        return EvalResult(_BAT, Var(var), expression.atom)

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def _pack_column(self, values: list[Any], atom: Atom) -> str:
        packed = self.program.emit1(
            "bat", "pack",
            [
                Param(v.key) if isinstance(v, Parameter) else Constant(v)
                for v in values
            ],
            bat_type(None),
        )
        return self.program.emit1(
            "bat", "cast", [Var(packed), atom.value], bat_type(atom)
        )

    def _emit_insert_values(self, plan: nodes.InsertValuesPlan) -> None:
        obj = self.catalog.get(plan.target)
        per_column: dict[str, list[Any]] = {c: [] for c in plan.columns}
        for row in plan.rows:
            for column, value in zip(plan.columns, row):
                per_column[column].append(value)
        if plan.target_kind == "table":
            bats = [
                Var(self._pack_column(per_column[c], obj.column_def(c).atom))
                for c in plan.columns
            ]
            count = self.program.emit1(
                "sql", "append",
                [plan.target, json.dumps(plan.columns)] + bats,
                scalar_type(Atom.INT),
            )
            self.program.emit("sql", "affected", [Var(count)], [scalar_type(Atom.INT)])
            return
        array = self.catalog.get_array(plan.target)
        oids = self._cell_oids_from_columns(array, plan.columns, per_column)
        affected = None
        for column in plan.columns:
            if array.is_dimension(column):
                continue
            values = self._pack_column(
                per_column[column], array.attribute_def(column).atom
            )
            affected = self.program.emit1(
                "sql", "update", [plan.target, column, Var(oids), Var(values)],
                scalar_type(Atom.INT),
            )
        if affected is not None:
            self.program.emit(
                "sql", "affected", [Var(affected)], [scalar_type(Atom.INT)]
            )

    def _cell_oids_from_columns(
        self, array: Array, columns: list[str], per_column: dict[str, list[Any]]
    ) -> str:
        shape_json = json.dumps(list(array.shape()))
        dims_json = json.dumps([[d.start, d.step, d.stop] for d in array.dimensions])
        coordinate_vars = []
        for dimension in array.dimensions:
            coordinate_vars.append(
                Var(self._pack_column(per_column[dimension.name], Atom.LNG))
            )
        return self.program.emit1(
            "array", "cellindex", [shape_json, dims_json] + coordinate_vars,
            bat_type(Atom.OID),
        )

    def _emit_insert_select(self, plan: nodes.InsertSelectPlan) -> None:
        obj = self.catalog.get(plan.target)
        output_vars, _ = self._emit_output(plan.query.root)
        output_vars = output_vars[: len(plan.query.items)]
        column_vars = dict(zip(plan.columns, output_vars))
        if plan.target_kind == "table":
            bats = []
            for column in plan.columns:
                atom = obj.column_def(column).atom
                bats.append(
                    Var(
                        self.program.emit1(
                            "bat", "cast", [Var(column_vars[column]), atom.value],
                            bat_type(atom),
                        )
                    )
                )
            count = self.program.emit1(
                "sql", "append", [plan.target, json.dumps(plan.columns)] + bats,
                scalar_type(Atom.INT),
            )
            self.program.emit("sql", "affected", [Var(count)], [scalar_type(Atom.INT)])
            return
        array = self.catalog.get_array(plan.target)
        shape_json = json.dumps(list(array.shape()))
        dims_json = json.dumps([[d.start, d.step, d.stop] for d in array.dimensions])
        coordinate_vars = []
        for dimension in array.dimensions:
            if dimension.name not in column_vars:
                raise SemanticError(
                    f"INSERT into array {array.name!r} must supply dimension "
                    f"{dimension.name!r}"
                )
            coordinate_vars.append(Var(column_vars[dimension.name]))
        oids = self.program.emit1(
            "array", "cellindex", [shape_json, dims_json] + coordinate_vars,
            bat_type(Atom.OID),
        )
        affected = None
        for column in plan.columns:
            if array.is_dimension(column):
                continue
            atom = array.attribute_def(column).atom
            values = self.program.emit1(
                "bat", "cast", [Var(column_vars[column]), atom.value], bat_type(atom)
            )
            affected = self.program.emit1(
                "sql", "update", [plan.target, column, Var(oids), Var(values)],
                scalar_type(Atom.INT),
            )
        if affected is not None:
            self.program.emit(
                "sql", "affected", [Var(affected)], [scalar_type(Atom.INT)]
            )

    def _target_binding(self, plan) -> Binding:
        from repro.semantic.binder import source_from_catalog

        info = source_from_catalog(self.catalog, plan.target, None)
        scan = nodes.Scan(info, 0)
        return self._emit_relational(scan)

    def _candidates(self, where: Any, binding: Binding) -> str:
        if where is None:
            return self.program.emit1(
                "bat", "mirror", [Var(binding.ref)], bat_type(Atom.OID)
            )
        predicate = self._force_bat(self._eval(where, binding), binding)
        return self.program.emit1(
            "algebra", "select", [Var(predicate)], bat_type(Atom.OID)
        )

    def _emit_update(self, plan: nodes.UpdatePlan) -> None:
        obj = self.catalog.get(plan.target)
        binding = self._target_binding(plan)
        candidates = self._candidates(plan.where, binding)
        affected = None
        for column, expression in plan.assignments:
            atom = obj.column_def(column).atom
            full = self._force_bat(self._eval(expression, binding), binding, atom)
            cast = self.program.emit1(
                "bat", "cast", [Var(full), atom.value], bat_type(atom)
            )
            selected = self.program.emit1(
                "algebra", "projection", [Var(candidates), Var(cast)], bat_type(atom)
            )
            affected = self.program.emit1(
                "sql", "update",
                [plan.target, column, Var(candidates), Var(selected)],
                scalar_type(Atom.INT),
            )
        if affected is not None:
            self.program.emit(
                "sql", "affected", [Var(affected)], [scalar_type(Atom.INT)]
            )

    def _emit_delete(self, plan: nodes.DeletePlan) -> None:
        binding = self._target_binding(plan)
        candidates = self._candidates(plan.where, binding)
        count = self.program.emit1(
            "sql", "delete", [plan.target, Var(candidates)], scalar_type(Atom.INT)
        )
        self.program.emit("sql", "affected", [Var(count)], [scalar_type(Atom.INT)])


# ----------------------------------------------------------------------
# grouped / tiled evaluation contexts
# ----------------------------------------------------------------------
class _GroupedContext:
    """Evaluates output expressions of a value-based GROUP BY."""

    def __init__(
        self,
        generator: MALGenerator,
        binding: Binding,
        keys: list[Any],
        key_vars: list[str],
        groups: str,
        extents: str,
        ngroups: str,
    ):
        self.generator = generator
        self.binding = binding
        self.keys = keys
        self.key_vars = key_vars
        self.groups = groups
        self.extents = extents
        self.ngroups = ngroups
        self._group_ref: Optional[str] = None

    def group_ref(self) -> str:
        if self._group_ref is None:
            self._group_ref = self.extents
        return self._group_ref

    def force_bat(self, result: EvalResult, atom: Optional[Atom] = None) -> str:
        if result.kind == _BAT:
            assert isinstance(result.value, Var)
            return result.value.name
        target_atom = result.atom or atom or Atom.INT
        return self.generator.program.emit1(
            "bat", "project_const",
            [Var(self.group_ref()), result.value, target_atom.value],
            bat_type(target_atom),
        )

    def eval(self, expression: Any) -> EvalResult:
        program = self.generator.program
        for key, key_var in zip(self.keys, self.key_vars):
            if expression == key:
                var = program.emit1(
                    "algebra", "projection", [Var(self.extents), Var(key_var)],
                    program.type_of(key_var),
                )
                return EvalResult(_BAT, Var(var), infer_atom(expression))
        if is_aggregate_call(expression):
            name = expression.name
            if expression.star:
                var = program.emit1(
                    "aggr", "subcountstar", [Var(self.groups), Var(self.ngroups)],
                    bat_type(Atom.LNG),
                )
                return EvalResult(_BAT, Var(var), Atom.LNG)
            value = self.generator._force_bat(
                self.generator._eval(expression.args[0], self.binding), self.binding
            )
            atom = infer_atom(expression)
            if expression.distinct:
                if name != "count":
                    raise SemanticError(
                        f"DISTINCT is only supported for COUNT, not {name.upper()}"
                    )
                var = program.emit1(
                    "aggr", "subcountdistinct",
                    [Var(value), Var(self.groups), Var(self.ngroups)],
                    bat_type(Atom.LNG),
                )
                return EvalResult(_BAT, Var(var), Atom.LNG)
            var = program.emit1(
                "aggr", f"sub{name}",
                [Var(value), Var(self.groups), Var(self.ngroups)],
                bat_type(atom or Atom.DBL),
            )
            return EvalResult(_BAT, Var(var), atom)
        if isinstance(expression, ast.Literal):
            return EvalResult(
                _SCALAR, Constant(expression.value), infer_atom(expression)
            )
        if isinstance(expression, Parameter):
            return EvalResult(_SCALAR, Param(expression.key), expression.atom)
        if isinstance(expression, ast.BinaryOp):
            left = self.eval(expression.left)
            right = self.eval(expression.right)
            return self.generator._binary(
                expression.op, left, right, expression, None
            )
        if isinstance(expression, ast.UnaryOp):
            return self.generator._unary(
                expression.op, self.eval(expression.operand), None
            )
        if isinstance(expression, ast.CaseExpression):
            return self.generator._case(expression, _FakeBinding(self), self.eval)
        if isinstance(expression, ast.IsNull):
            operand = self.force_bat(self.eval(expression.operand))
            var = self.generator.program.emit1(
                "batcalc", "isnil", [Var(operand)], bat_type(Atom.BIT)
            )
            result = EvalResult(_BAT, Var(var), Atom.BIT)
            if expression.negated:
                return self.generator._unary("NOT", result, None)
            return result
        if isinstance(expression, ast.InList):
            return self.generator._in_list(expression, _FakeBinding(self), self.eval)
        if isinstance(expression, ast.Between):
            return self.generator._between(expression, _FakeBinding(self), self.eval)
        if isinstance(expression, ast.CastExpression):
            operand = self.eval(expression.operand)
            atom = infer_atom(expression)
            module = "calc" if operand.kind == _SCALAR else "batcalc"
            mal_type = scalar_type(atom) if operand.kind == _SCALAR else bat_type(atom)
            var = self.generator.program.emit1(
                module, "cast", [operand.value, atom.value], mal_type
            )
            return EvalResult(operand.kind, Var(var), atom)
        if isinstance(expression, ast.FunctionCall):
            inner = self.eval(expression.args[0]) if expression.args else None
            return self.generator._function_on(expression, inner)
        raise SemanticError(
            f"unsupported grouped expression {type(expression).__name__}"
        )


class _FakeBinding:
    """Adapter letting grouped/tiled contexts reuse _case/_in_list/_between."""

    def __init__(self, context):
        self._context = context

    @property
    def ref(self):
        return self._context.group_ref()


class _TileContext:
    """Evaluates output expressions of a structural GROUP BY (tiling).

    Everything stays cell-aligned: non-aggregate references are the
    anchor cell's own values; aggregates fold the anchor's tile via
    ``array.tileagg``.
    """

    def __init__(
        self,
        generator: MALGenerator,
        binding: Binding,
        meta_json: str,
    ):
        self.generator = generator
        self.binding = binding
        self.meta_json = meta_json

    def group_ref(self) -> str:
        return self.binding.ref

    def force_bat(self, result: EvalResult, atom: Optional[Atom] = None) -> str:
        return self.generator._force_bat(result, self.binding, atom)

    def eval(self, expression: Any) -> EvalResult:
        program = self.generator.program
        if is_aggregate_call(expression):
            name = expression.name
            if expression.star:
                var = program.emit1(
                    "array", "tileagg",
                    [Var(self.binding.ref), "count_star", self.meta_json],
                    bat_type(Atom.LNG),
                )
                return EvalResult(_BAT, Var(var), Atom.LNG)
            value = self.generator._force_bat(
                self.generator._eval(expression.args[0], self.binding), self.binding
            )
            atom = infer_atom(expression)
            var = program.emit1(
                "array", "tileagg",
                [Var(value), name, self.meta_json],
                bat_type(atom or Atom.DBL),
            )
            return EvalResult(_BAT, Var(var), atom)
        if isinstance(expression, ast.BinaryOp):
            left = self.eval(expression.left)
            right = self.eval(expression.right)
            return self.generator._binary(
                expression.op, left, right, expression, self.binding
            )
        if isinstance(expression, ast.UnaryOp):
            return self.generator._unary(
                expression.op, self.eval(expression.operand), self.binding
            )
        if isinstance(expression, ast.CaseExpression):
            return self.generator._case(expression, self.binding, self.eval)
        if isinstance(expression, ast.InList):
            return self.generator._in_list(expression, self.binding, self.eval)
        if isinstance(expression, ast.Between):
            return self.generator._between(expression, self.binding, self.eval)
        # Bare columns, literals, cell refs, IS NULL, casts: plain row mode.
        return self.generator._eval(expression, self.binding)
