"""Semantic analysis: name binding and type inference."""

from repro.semantic.binder import BoundColumn, Scope, SourceInfo, source_from_catalog
from repro.semantic.types import (
    AGGREGATE_FUNCTIONS,
    contains_aggregate,
    infer_atom,
    is_aggregate_call,
)

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "BoundColumn",
    "Scope",
    "SourceInfo",
    "contains_aggregate",
    "infer_atom",
    "is_aggregate_call",
    "source_from_catalog",
]
