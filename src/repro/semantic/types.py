"""Expression type inference over bound ASTs.

Determines the atom type of every expression, applying SQL/MonetDB
widening rules (``int`` < ``lng`` < ``dbl``); comparisons and logic
yield ``bit``; AVG always yields ``dbl``; SUM widens to ``lng``.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SemanticError
from repro.gdk.atoms import Atom, atom_for_python, atom_for_sql_type, is_numeric
from repro.semantic.binder import BoundCellRef, BoundColumn, Parameter
from repro.sql import ast_nodes as ast

#: aggregate function names.
AGGREGATE_FUNCTIONS = frozenset(
    {"sum", "avg", "min", "max", "count", "prod", "stddev", "median"}
)

#: scalar math functions with double results.
MATH_FUNCTIONS = frozenset(
    {"sqrt", "exp", "log", "ln", "log10", "sin", "cos", "tan"}
)
#: math functions preserving integer atoms.
ROUNDING_FUNCTIONS = frozenset({"floor", "ceil", "ceiling", "round"})

#: string functions and their result atoms.
STRING_FUNCTIONS = {
    "lower": Atom.STR,
    "upper": Atom.STR,
    "trim": Atom.STR,
    "substring": Atom.STR,
    "substr": Atom.STR,
    "length": Atom.INT,
    "char_length": Atom.INT,
    "like": Atom.BIT,
}


def is_aggregate_call(expression) -> bool:
    """True for a direct aggregate function application."""
    return (
        isinstance(expression, ast.FunctionCall)
        and expression.name in AGGREGATE_FUNCTIONS
    )


def contains_aggregate(expression) -> bool:
    """True when any aggregate call occurs inside *expression*."""
    if is_aggregate_call(expression):
        return True
    if isinstance(expression, ast.BinaryOp):
        return contains_aggregate(expression.left) or contains_aggregate(expression.right)
    if isinstance(expression, ast.UnaryOp):
        return contains_aggregate(expression.operand)
    if isinstance(expression, ast.FunctionCall):
        return any(contains_aggregate(a) for a in expression.args)
    if isinstance(expression, ast.CaseExpression):
        for condition, value in expression.whens:
            if contains_aggregate(condition) or contains_aggregate(value):
                return True
        return expression.otherwise is not None and contains_aggregate(
            expression.otherwise
        )
    if isinstance(expression, ast.IsNull):
        return contains_aggregate(expression.operand)
    if isinstance(expression, ast.InList):
        return contains_aggregate(expression.operand) or any(
            contains_aggregate(i) for i in expression.items
        )
    if isinstance(expression, ast.Between):
        return (
            contains_aggregate(expression.operand)
            or contains_aggregate(expression.low)
            or contains_aggregate(expression.high)
        )
    if isinstance(expression, ast.CastExpression):
        return contains_aggregate(expression.operand)
    return False


def common_atom(left: Optional[Atom], right: Optional[Atom]) -> Optional[Atom]:
    """Widest common atom of two optional atoms (None = untyped NULL)."""
    if left is None:
        return right
    if right is None:
        return left
    if left is right:
        return left
    if is_numeric(left) and is_numeric(right):
        order = {Atom.INT: 0, Atom.LNG: 1, Atom.DBL: 2}
        return left if order[left] >= order[right] else right
    raise SemanticError(f"incompatible types {left.value} and {right.value}")


def infer_atom(expression) -> Optional[Atom]:
    """Result atom of a bound expression; None for untyped NULL."""
    if isinstance(expression, ast.Literal):
        if expression.value is None:
            return None
        return atom_for_python(expression.value)
    if isinstance(expression, BoundColumn):
        return expression.atom
    if isinstance(expression, BoundCellRef):
        return expression.atom
    if isinstance(expression, Parameter):
        return expression.atom
    if isinstance(expression, ast.CellRef):
        raise SemanticError("cell reference not bound before type inference")
    if isinstance(expression, ast.BinaryOp):
        if expression.op in ("AND", "OR"):
            return Atom.BIT
        if expression.op in ("=", "<>", "!=", "<", "<=", ">", ">="):
            return Atom.BIT
        if expression.op == "||":
            return Atom.STR
        left = infer_atom(expression.left)
        right = infer_atom(expression.right)
        merged = common_atom(left, right)
        if merged is not None and not is_numeric(merged):
            raise SemanticError(
                f"arithmetic on non-numeric type {merged.value}"
            )
        if expression.op == "/" and merged is None:
            return None
        return merged
    if isinstance(expression, ast.UnaryOp):
        if expression.op == "NOT":
            return Atom.BIT
        return infer_atom(expression.operand)
    if isinstance(expression, ast.FunctionCall):
        name = expression.name
        if name == "count":
            return Atom.LNG
        if name in ("avg", "stddev", "median"):
            return Atom.DBL
        if name in ("sum", "prod"):
            inner = infer_atom(expression.args[0]) if expression.args else Atom.LNG
            return Atom.DBL if inner is Atom.DBL else Atom.LNG
        if name in ("min", "max") and expression.args:
            return infer_atom(expression.args[0])
        if name in MATH_FUNCTIONS:
            return Atom.DBL
        if name in ROUNDING_FUNCTIONS:
            inner = infer_atom(expression.args[0]) if expression.args else Atom.DBL
            return inner if inner in (Atom.INT, Atom.LNG) else Atom.DBL
        if name == "abs" and expression.args:
            return infer_atom(expression.args[0])
        if name in STRING_FUNCTIONS:
            return STRING_FUNCTIONS[name]
        raise SemanticError(f"unknown function {name!r}")
    if isinstance(expression, ast.CaseExpression):
        atom: Optional[Atom] = None
        for _, value in expression.whens:
            atom = common_atom(atom, infer_atom(value))
        if expression.otherwise is not None:
            atom = common_atom(atom, infer_atom(expression.otherwise))
        return atom
    if isinstance(expression, (ast.IsNull, ast.InList, ast.Between)):
        return Atom.BIT
    if isinstance(expression, ast.CastExpression):
        return atom_for_sql_type(expression.type_name)
    raise SemanticError(f"cannot infer type of {type(expression).__name__}")
