"""Name binding: resolving column references against FROM sources.

The binder rewrites :class:`~repro.sql.ast_nodes.ColumnRef` nodes into
:class:`BoundColumn` nodes carrying the source index and atom type, so
later stages never look names up again.  It is the front half of the
"SQL/SciQL Compiler" box in the paper's Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import SemanticError
from repro.gdk.atoms import Atom
from repro.catalog import Array, Catalog, Table
from repro.catalog.objects import DimensionDef


@dataclass(frozen=True)
class Parameter:
    """A typed bind parameter surviving into the compiled plan.

    The binder rewrites :class:`~repro.sql.ast_nodes.Placeholder`
    markers into ``Parameter`` nodes.  ``atom`` stays ``None`` for an
    untyped parameter (like a bare NULL literal); wrapping the marker
    in ``CAST(? AS type)`` pins the type.  MAL generation lowers a
    ``Parameter`` to a late-bound :class:`~repro.mal.program.Param`
    operand, so one compiled program re-executes under fresh bindings.
    """

    key: Union[int, str]
    atom: Optional[Atom] = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        marker = f"?{self.key}" if isinstance(self.key, int) else f":{self.key}"
        return f"Parameter({marker})"


@dataclass(frozen=True)
class BoundColumn:
    """A resolved column reference: source ordinal + column name + type.

    ``is_dimension`` is True for SciQL array dimensions — several
    compilation rules special-case them (tiling anchors, coercions).
    """

    source: int
    column: str
    atom: Atom
    is_dimension: bool = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BoundColumn(#{self.source}.{self.column}:{self.atom.value})"


@dataclass(frozen=True)
class BoundCellRef:
    """A resolved SciQL cell reference ``A[e1][e2](.attr)``.

    ``indexes`` are bound coordinate expressions evaluated per row of
    the current scope; the fetch happens against the *stored* array
    (out-of-range coordinates produce NULL).
    """

    array: str  # catalog name of the array
    indexes: tuple  # bound expressions, one per dimension
    attribute: str
    atom: Atom


@dataclass
class SourceInfo:
    """One FROM source visible in a scope."""

    alias: str
    object_name: str  # catalog name, or "" for derived tables
    kind: str  # "table" | "array" | "derived"
    columns: list[tuple[str, Atom]]
    dimensions: list[DimensionDef]

    def column_atom(self, name: str) -> Optional[Atom]:
        for column, atom in self.columns:
            if column == name:
                return atom
        return None

    def is_dimension(self, name: str) -> bool:
        return any(d.name == name for d in self.dimensions)


def source_from_catalog(catalog: Catalog, name: str, alias: str | None) -> SourceInfo:
    """Build a SourceInfo for a named table/array."""
    obj = catalog.get(name)
    if isinstance(obj, Array):
        columns = [(d.name, d.atom) for d in obj.dimensions]
        columns += [(a.name, a.atom) for a in obj.attributes]
        return SourceInfo(
            alias or obj.name, obj.name, "array", columns, list(obj.dimensions)
        )
    assert isinstance(obj, Table)
    columns = [(c.name, c.atom) for c in obj.columns]
    return SourceInfo(alias or obj.name, obj.name, "table", columns, [])


class Scope:
    """The set of sources a query block can reference."""

    def __init__(self, sources: list[SourceInfo]):
        self.sources = sources
        aliases = [s.alias for s in sources]
        if len(set(aliases)) != len(aliases):
            raise SemanticError(f"duplicate source aliases in FROM: {aliases}")

    def resolve(self, name: str, qualifier: str | None) -> BoundColumn:
        """Resolve ``[qualifier.]name`` to a unique source column."""
        matches: list[BoundColumn] = []
        for index, source in enumerate(self.sources):
            if qualifier is not None and source.alias != qualifier:
                continue
            atom = source.column_atom(name)
            if atom is not None:
                matches.append(
                    BoundColumn(index, name, atom, source.is_dimension(name))
                )
        if not matches:
            target = f"{qualifier}.{name}" if qualifier else name
            raise SemanticError(f"unknown column {target!r}")
        if len(matches) > 1:
            raise SemanticError(f"ambiguous column reference {name!r}")
        return matches[0]

    def source_by_alias(self, alias: str) -> tuple[int, SourceInfo]:
        for index, source in enumerate(self.sources):
            if source.alias == alias:
                return index, source
        raise SemanticError(f"unknown source {alias!r}")

    def all_columns(self, qualifier: str | None = None) -> list[BoundColumn]:
        """Expansion of ``*`` / ``qualifier.*`` in declaration order."""
        out: list[BoundColumn] = []
        for index, source in enumerate(self.sources):
            if qualifier is not None and source.alias != qualifier:
                continue
            for column, atom in source.columns:
                out.append(BoundColumn(index, column, atom, source.is_dimension(column)))
        if qualifier is not None and not out:
            raise SemanticError(f"unknown source {qualifier!r}")
        return out
