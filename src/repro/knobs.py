"""Central registry of every ``REPRO_*`` environment knob.

Every environment variable the engine consults is declared here, once,
with its default and documentation.  Call sites fetch raw values via
:func:`raw` (which refuses unregistered names, so a typo'd knob fails
loudly instead of silently reading nothing) and keep their own parsing
semantics.  The lint rule in ``tools/lint_repro.py`` enforces that no
module outside this one touches ``os.environ`` with a ``REPRO_*`` name,
and the README knob table is generated from this registry
(``python -m repro.knobs`` prints it; ``python -m repro.knobs --write``
syncs it between the ``<!-- knob-table:begin -->`` markers).
"""

from __future__ import annotations

import os
from dataclasses import dataclass


@dataclass(frozen=True)
class Knob:
    """One environment knob: name, displayed default, one-line doc."""

    name: str
    default: str
    description: str
    section: str


#: Every knob the engine reads, grouped by subsystem.  Keep this table
#: sorted within each section; the README table is generated from it.
KNOBS: tuple[Knob, ...] = (
    Knob(
        "REPRO_NR_THREADS",
        "auto (min(cpus, 8))",
        "Dataflow scheduler worker count; 1 keeps the sequential "
        "interpreter loop.",
        "execution",
    ),
    Knob(
        "REPRO_FRAGMENT_ROWS",
        "auto (≥32768 rows split per worker)",
        "Rows per mitosis fragment; `inf`/`off`/`none` disables "
        "fragmentation, `auto` sizes from the scan.",
        "execution",
    ),
    Knob(
        "REPRO_VERIFY_PLANS",
        "0 (on in tests/CI)",
        "Re-verify every MAL plan after each optimizer pass; "
        "violations raise `PlanVerificationError` naming the pass.",
        "execution",
    ),
    Knob(
        "REPRO_STORAGE_MMAP",
        "auto",
        "mmap-backed BAT heaps: `1` forces, `0` disables, `auto` maps "
        "payloads above the size threshold.",
        "storage",
    ),
    Knob(
        "REPRO_MMAP_THRESHOLD_BYTES",
        str(1 << 20),
        "Payload size above which `auto` mmap mode maps instead of "
        "loading eagerly.",
        "storage",
    ),
    Knob(
        "REPRO_ZONEMAPS",
        "1",
        "Zone-map pruning short-circuit in the select kernels "
        "(folding is unconditional; results are identical either way).",
        "storage",
    ),
    Knob(
        "REPRO_ZONE_ROWS",
        "4096",
        "Rows per zone for persisted min/max/null statistics.",
        "storage",
    ),
    Knob(
        "REPRO_DICT",
        "1",
        "Dictionary-encode qualifying string columns on append.",
        "storage",
    ),
    Knob(
        "REPRO_DICT_MIN_ROWS",
        "4096",
        "Minimum column length before dictionary encoding is "
        "considered.",
        "storage",
    ),
    Knob(
        "REPRO_WAL_CHECKPOINT_BYTES",
        str(64 * 1024 * 1024),
        "WAL size that triggers a checkpoint (atomic farm republish + "
        "log reset).",
        "durability",
    ),
    Knob(
        "REPRO_WAL_CHECKPOINT_RECORDS",
        "1024",
        "WAL record count that triggers a checkpoint.",
        "durability",
    ),
    Knob(
        "REPRO_FAULTPOINT",
        "unset",
        "Crash the process at a registered fault point: `name` or "
        "`name:k` (k-th hit); see `repro.testing.faultpoints`.",
        "durability",
    ),
    Knob(
        "REPRO_STATEMENT_TIMEOUT_MS",
        "unset (no deadline)",
        "Default per-statement deadline in milliseconds; expiry aborts "
        "the statement with `QueryTimeoutError` at the next instruction "
        "boundary.",
        "governance",
    ),
    Knob(
        "REPRO_MEM_BUDGET_BYTES",
        "unset (no budget)",
        "Default per-query memory budget; BAT materialisations beyond "
        "it abort the statement with `ResourceError`.",
        "governance",
    ),
    Knob(
        "REPRO_NET_MAX_SESSIONS",
        "64",
        "Server admission cap; connects beyond it are refused with an "
        "error frame.",
        "network",
    ),
    Knob(
        "REPRO_NET_BATCH_ROWS",
        "65536",
        "Rows per streamed result batch on the wire.",
        "network",
    ),
    Knob(
        "REPRO_NET_MAX_PENDING",
        "8",
        "Per-connection pipeline queue bound; over-pipelining blocks "
        "on TCP instead of server memory.",
        "network",
    ),
    Knob(
        "REPRO_NET_RETRIES",
        "2",
        "Reconnect attempts for idempotent client operations (connect, "
        "ping, stats) before `NetworkError` surfaces.",
        "network",
    ),
    Knob(
        "REPRO_NET_RETRY_BACKOFF_MS",
        "100",
        "Base delay of the client's exponential reconnect backoff "
        "(doubles per attempt, capped at 2s).",
        "network",
    ),
)

_BY_NAME: dict[str, Knob] = {knob.name: knob for knob in KNOBS}


def registered(name: str) -> bool:
    """Whether *name* is a declared knob."""
    return name in _BY_NAME


def raw(name: str) -> str | None:
    """The raw environment value of a registered knob (or ``None``).

    Raises :class:`KeyError` for unregistered names so that adding a
    new knob without declaring it here fails on first read.
    """
    if name not in _BY_NAME:
        raise KeyError(f"unregistered REPRO knob: {name!r} (declare it in repro.knobs)")
    return os.environ.get(name)


def flag(name: str, default: bool) -> bool:
    """A boolean knob: ``1/true/on/yes`` → True, ``0/false/off/no`` → False."""
    value = raw(name)
    if value is None or value.strip() == "":
        return default
    return value.strip().lower() in ("1", "true", "on", "yes")


# ----------------------------------------------------------------------
# README table generation
# ----------------------------------------------------------------------
TABLE_BEGIN = "<!-- knob-table:begin -->"
TABLE_END = "<!-- knob-table:end -->"


def markdown_table() -> str:
    """The README knob table, generated from the registry."""
    lines = [
        "| Knob | Default | Subsystem | Effect |",
        "| --- | --- | --- | --- |",
    ]
    for knob in KNOBS:
        lines.append(
            f"| `{knob.name}` | {knob.default} | {knob.section} "
            f"| {knob.description} |"
        )
    return "\n".join(lines)


def sync_readme(path: str, write: bool = False) -> bool:
    """Whether the README table between the markers matches the registry.

    With ``write=True`` the table is rewritten in place.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    begin = text.index(TABLE_BEGIN) + len(TABLE_BEGIN)
    end = text.index(TABLE_END)
    current = text[begin:end].strip()
    wanted = markdown_table()
    if current == wanted:
        return True
    if write:
        updated = text[:begin] + "\n" + wanted + "\n" + text[end:]
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(updated)
    return False


def _main(argv: list[str]) -> int:
    readme = os.path.join(os.path.dirname(__file__), "..", "..", "README.md")
    readme = os.path.abspath(readme)
    if "--write" in argv:
        sync_readme(readme, write=True)
        return 0
    if "--check" in argv:
        if sync_readme(readme):
            return 0
        print("README knob table is stale; run: python -m repro.knobs --write")
        return 1
    print(markdown_table())
    return 0


if __name__ == "__main__":  # pragma: no cover - thin CLI
    import sys

    raise SystemExit(_main(sys.argv[1:]))
