"""The asyncio socket server: many clients, one shared ``Database``.

The accept loop hands every TCP client its own
``Database.connect()`` session, so the engine's snapshot isolation,
first-committer-wins conflicts and the cross-session plan cache apply
to remote clients exactly as they do in process.  Three rules keep the
event loop responsive under heavy traffic:

* **Never block the loop on a query.**  Statements run on a thread
  pool via ``run_in_executor``; inside, the engine schedules dataflow
  onto its own shared worker pool as usual.
* **Stream, don't materialise.**  Query results leave as columnar
  ``RESULT_BATCH`` frames of at most ``batch_rows`` rows (raw dtype
  bytes + NULL masks via :meth:`Result.iter_batches`), and every
  frame waits for ``writer.drain()`` — a stalled reader suspends its
  own stream at O(batch) buffered bytes instead of pinning the whole
  result set (``drain_timeout`` eventually disconnects it).
* **Bound admission.**  At most ``max_sessions`` concurrent clients
  (excess connects are refused with an ``OperationalError`` frame),
  and per connection a bounded in-flight queue of ``max_pending``
  pipelined requests — when it fills, the server simply stops reading
  that socket and TCP pushes back.

``CANCEL`` frames bypass the queue: the connection's reader task sets
a flag the streaming loop checks between batches *and* cancels the
session's running statement through its cooperative token, so even a
scan that never yields a batch dies at the next instruction boundary.
A client that disconnects mid-statement (or mid-stream) has its
running statement cancelled, its session rolled back and closed —
no leaked forks, no leaked admission slots.

Run standalone with ``python -m repro.net.server --port 50123
[--path FARM --durable]``, embed via :class:`ReproServer`, or use
:class:`ServerThread` to host one on a background thread (tests,
benchmarks, examples).
"""

from __future__ import annotations

import argparse
import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional

from repro import knobs
from repro.engine.database import Database
from repro.engine.result import Result
from repro.errors import (
    NetworkError,
    OperationalError,
    ProgrammingError,
    ProtocolError,
    SciQLError,
)
from repro.net import protocol
from repro.net.protocol import Msg
from repro.testing.faultpoints import crash_point

DEFAULT_HOST = "127.0.0.1"
#: default TCP port (an homage to MonetDB's 50000).
DEFAULT_PORT = 50123
#: default cap on concurrently admitted client connections.
DEFAULT_MAX_SESSIONS = 64
#: default cap on pipelined (queued) requests per connection.
DEFAULT_MAX_PENDING = 8
#: seconds a client may take to send its HELLO frame.
HANDSHAKE_TIMEOUT = 10.0
#: default seconds a stalled reader may block one batch write.
DEFAULT_DRAIN_TIMEOUT = 300.0
#: seconds teardown waits for a transport/handler before forcing it.
CLOSE_GRACE = 5.0


def _env_int(name: str, default: int) -> int:
    value = knobs.raw(name)
    if not value:
        return default
    try:
        return max(1, int(value))
    except ValueError:
        raise ProgrammingError(
            f"invalid {name} value {value!r}: expected an integer"
        ) from None


class ServerStats:
    """Counters the STATS message reports (mutated on the event loop)."""

    __slots__ = (
        "connections_accepted",
        "connections_rejected",
        "connections_active",
        "disconnects",
        "statements",
        "batches_streamed",
        "bytes_streamed",
        "peak_batch_bytes",
        "cancelled",
        "errors",
        "stalled_disconnects",
    )

    def __init__(self) -> None:
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class _ClientState:
    """Everything one admitted connection owns."""

    __slots__ = (
        "reader",
        "writer",
        "session",
        "batch_rows",
        "cancel_event",
        "statements",
        "next_statement_id",
    )

    def __init__(self, reader, writer, session, batch_rows: int):
        self.reader = reader
        self.writer = writer
        self.session = session
        self.batch_rows = batch_rows
        self.cancel_event = asyncio.Event()
        self.statements: dict[int, object] = {}
        self.next_statement_id = 1


class ReproServer:
    """An asyncio TCP front door over one shared :class:`Database`."""

    def __init__(
        self,
        database: Optional[Database] = None,
        host: str = DEFAULT_HOST,
        port: int = 0,
        *,
        max_sessions: Optional[int] = None,
        batch_rows: Optional[int] = None,
        max_pending: Optional[int] = None,
        auth=None,
        drain_timeout: Optional[float] = DEFAULT_DRAIN_TIMEOUT,
    ):
        if database is None:
            database = Database()
            self._owns_database = True
        else:
            self._owns_database = False
        self.database = database
        self.host = host
        self.port = port
        self.max_sessions = (
            _env_int("REPRO_NET_MAX_SESSIONS", DEFAULT_MAX_SESSIONS)
            if max_sessions is None
            else max(1, int(max_sessions))
        )
        self.batch_rows = (
            _env_int("REPRO_NET_BATCH_ROWS", protocol.DEFAULT_BATCH_ROWS)
            if batch_rows is None
            else max(1, int(batch_rows))
        )
        self.max_pending = (
            _env_int("REPRO_NET_MAX_PENDING", DEFAULT_MAX_PENDING)
            if max_pending is None
            else max(1, int(max_pending))
        )
        #: optional ``auth(user, password) -> bool`` hook; None admits all.
        self.auth = auth
        self.drain_timeout = drain_timeout
        self.stats = ServerStats()
        #: blocking statement calls run here, NOT on the event loop; the
        #: engine's own dataflow pool parallelises inside each call.
        self._executor = ThreadPoolExecutor(
            max_workers=min(self.max_sessions, 32),
            thread_name_prefix="repro-net",
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._active = 0
        #: live ``_handle_client`` tasks, so :meth:`aclose` can cancel
        #: stragglers instead of abandoning them mid-teardown.
        self._client_tasks: set = set()
        #: admitted connection states, so :meth:`shutdown` can cancel
        #: their running statements cooperatively.
        self._states: set = set()
        #: requests currently being dispatched (drain watches this).
        self._inflight = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) once :meth:`start` ran."""
        if self._server is None:
            raise NetworkError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"repro://{host}:{port}"

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        return self.address

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def aclose(self) -> None:
        """Immediate teardown: :meth:`shutdown` without the grace period."""
        await self.shutdown(drain_timeout=None)

    async def shutdown(self, drain_timeout: Optional[float] = 5.0) -> None:
        """Graceful teardown: stop accepting, drain, then disconnect.

        New connections are refused immediately; requests already in
        flight get *drain_timeout* seconds to finish.  Whatever still
        runs past the deadline is cancelled cooperatively through its
        session's token, then the remaining clients are disconnected
        and the executor (and an owned database) close.
        """
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if drain_timeout:
            loop = asyncio.get_running_loop()
            deadline = loop.time() + drain_timeout
            while self._inflight and loop.time() < deadline:
                await asyncio.sleep(0.02)
        for state in list(self._states):
            state.session.cancel_running("server shutting down")
        for task in list(self._client_tasks):
            task.cancel()
        if self._client_tasks:
            # A handler absorbing the first cancel can still wedge on
            # its transport teardown (wait_closed never resolving for
            # an already-dead peer); bound the wait and cancel again
            # so shutdown terminates no matter what clients do.
            _, pending = await asyncio.wait(
                list(self._client_tasks), timeout=CLOSE_GRACE
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        self._executor.shutdown(wait=False)
        if self._owns_database:
            self.database.close()

    # ------------------------------------------------------------------
    # per-connection protocol
    # ------------------------------------------------------------------
    async def _send(self, state_or_writer, frame: bytes) -> None:
        writer = (
            state_or_writer.writer
            if isinstance(state_or_writer, _ClientState)
            else state_or_writer
        )
        writer.write(frame)
        if self.drain_timeout is None:
            await writer.drain()
            return
        try:
            await asyncio.wait_for(writer.drain(), self.drain_timeout)
        except asyncio.TimeoutError:
            self.stats.stalled_disconnects += 1
            raise NetworkError(
                f"client stalled for {self.drain_timeout}s; disconnecting"
            ) from None

    async def _send_error(self, state_or_writer, exc: BaseException) -> None:
        self.stats.errors += 1
        await self._send(
            state_or_writer,
            protocol.encode_frame(Msg.ERROR, protocol.error_header(exc)),
        )

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._client_tasks.add(task)
            task.add_done_callback(self._client_tasks.discard)
        self.stats.connections_accepted += 1
        if self._active >= self.max_sessions:
            self.stats.connections_rejected += 1
            try:
                await self._send_error(
                    writer,
                    OperationalError(
                        f"server refused the connection: max_sessions "
                        f"({self.max_sessions}) already admitted"
                    ),
                )
            except (ConnectionError, NetworkError):
                pass
            writer.close()
            return
        self._active += 1
        self.stats.connections_active = self._active
        session = self.database.connect()
        state = _ClientState(reader, writer, session, self.batch_rows)
        self._states.add(state)
        try:
            if await self._handshake(state):
                await self._serve_session(state)
        except (
            ConnectionError,
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            NetworkError,
        ):
            self.stats.disconnects += 1
        except asyncio.CancelledError:
            # Server shutdown cancelled this handler; absorb it (the
            # task ends here anyway) so the reclaim below still runs
            # and asyncio's stream callback never sees the cancel.
            self.stats.disconnects += 1
        except ProtocolError as exc:
            try:
                await self._send_error(state, exc)
            except (ConnectionError, NetworkError):
                pass
        finally:
            # Reclaim everything the client held: cancel whatever is
            # still running, roll back any open transaction fork,
            # close the session, release the slot.
            crash_point("net.disconnect_reclaim")
            self._states.discard(state)
            session.cancel_running("client disconnected")
            try:
                if not session.closed:
                    session.rollback()
            except SciQLError:
                pass
            session.close()
            state.statements.clear()
            self._active -= 1
            self.stats.connections_active = self._active
            # close() is enough: it tears the transport down on the
            # loop without blocking this handler.  Awaiting
            # wait_closed here can wedge forever on a peer that
            # vanished mid-teardown, pinning the shutdown gather —
            # and everything the client held is already released.
            writer.close()

    async def _read_frame(self, reader) -> tuple[Msg, dict, bytes]:
        prelude = await reader.readexactly(protocol.FRAME_PRELUDE.size)
        length, crc = protocol.FRAME_PRELUDE.unpack(prelude)
        protocol.check_frame_length(length)
        payload = await reader.readexactly(length)
        protocol.check_payload(length, crc, payload)
        return protocol.decode_payload(payload)

    async def _handshake(self, state: _ClientState) -> bool:
        msg, header, _ = await asyncio.wait_for(
            self._read_frame(state.reader), HANDSHAKE_TIMEOUT
        )
        if msg is not Msg.HELLO or header.get("magic") != protocol.CLIENT_MAGIC:
            raise ProtocolError("expected a HELLO frame to open the session")
        if header.get("protocol") != protocol.PROTOCOL_VERSION:
            await self._send_error(
                state,
                ProtocolError(
                    f"protocol version mismatch: client speaks "
                    f"{header.get('protocol')!r}, server speaks "
                    f"{protocol.PROTOCOL_VERSION}"
                ),
            )
            return False
        if self.auth is not None and not self.auth(
            header.get("user"), header.get("password")
        ):
            await self._send_error(
                state,
                OperationalError(
                    f"authentication failed for user {header.get('user')!r}"
                ),
            )
            return False
        requested = header.get("batch_rows")
        if isinstance(requested, int) and requested > 0:
            state.batch_rows = requested
        timeout_ms = header.get("statement_timeout_ms")
        if isinstance(timeout_ms, (int, float)) and timeout_ms > 0:
            # The session's default deadline travels with the
            # handshake; every statement on this connection inherits
            # it unless the server environment set a tighter one.
            state.session.statement_timeout = float(timeout_ms) / 1000.0
        import repro

        await self._send(
            state,
            protocol.encode_frame(
                Msg.WELCOME,
                {
                    "server_version": repro.__version__,
                    "protocol": protocol.PROTOCOL_VERSION,
                    "batch_rows": state.batch_rows,
                },
            ),
        )
        return True

    async def _serve_session(self, state: _ClientState) -> None:
        """Bounded-pipeline request loop: one reader, one worker.

        The reader task moves frames into a bounded queue (so an
        over-pipelining client blocks on TCP, not on server memory)
        and handles CANCEL immediately, out of band.  The worker
        executes requests strictly in order.
        """
        queue: asyncio.Queue = asyncio.Queue(self.max_pending)

        async def pump() -> None:
            try:
                while True:
                    frame = await self._read_frame(state.reader)
                    if frame[0] is Msg.CANCEL:
                        # Flag the between-batch check AND cancel the
                        # running statement through its cooperative
                        # token, so a statement that never yields a
                        # batch is still killable mid-execution.
                        state.cancel_event.set()
                        if state.session.cancel_running(
                            "cancelled by client CANCEL"
                        ):
                            self.stats.cancelled += 1
                        continue
                    await queue.put(frame)
                    if frame[0] is Msg.GOODBYE:
                        return
            except (
                ConnectionError,
                OSError,
                asyncio.IncompleteReadError,
                ProtocolError,
            ) as exc:
                # The socket died under a running statement: abort it
                # now instead of computing for a client that is gone.
                state.session.cancel_running("client disconnected")
                await queue.put(exc)

        pump_task = asyncio.create_task(pump())
        try:
            while True:
                item = await queue.get()
                if isinstance(item, ProtocolError):
                    raise item
                if isinstance(item, Exception):
                    raise NetworkError(str(item))
                msg, header, blob = item
                if msg is Msg.GOODBYE:
                    return
                await self._dispatch(state, msg, header)
        finally:
            pump_task.cancel()

    async def _dispatch(self, state: _ClientState, msg: Msg, header: dict) -> None:
        state.cancel_event.clear()
        self._inflight += 1
        try:
            handler = self._HANDLERS.get(msg)
            if handler is None:
                raise ProtocolError(
                    f"unexpected {msg.name} frame from a client"
                )
            await handler(self, state, header)
        except (ConnectionError, NetworkError):
            raise
        except ProtocolError as exc:
            await self._send_error(state, exc)
        except SciQLError as exc:
            await self._send_error(state, exc)
        except Exception as exc:  # noqa: BLE001 - surfaced to the client
            await self._send_error(state, exc)
        finally:
            self._inflight -= 1

    async def _call(self, fn, *args):
        """Run one blocking engine call off the event loop."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, lambda: fn(*args))

    # ------------------------------------------------------------------
    # request handlers
    # ------------------------------------------------------------------
    async def _on_execute(self, state: _ClientState, header: dict) -> None:
        sql = header.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("EXECUTE frame without SQL text")
        params = protocol.decoded_params(header.get("params"))
        self.stats.statements += 1
        result = await self._call(state.session.execute, sql, params)
        await self._send_result(state, result)

    async def _on_prepare(self, state: _ClientState, header: dict) -> None:
        sql = header.get("sql")
        if not isinstance(sql, str):
            raise ProtocolError("PREPARE frame without SQL text")
        statement = await self._call(state.session.prepare, sql)
        statement_id = state.next_statement_id
        state.next_statement_id += 1
        state.statements[statement_id] = statement
        await self._send(
            state,
            protocol.encode_frame(
                Msg.PREPARED,
                {
                    "statement_id": statement_id,
                    "parameters": list(statement.parameters),
                },
            ),
        )

    def _statement(self, state: _ClientState, header: dict):
        statement = state.statements.get(header.get("statement_id"))
        if statement is None:
            raise ProgrammingError(
                f"unknown prepared statement id {header.get('statement_id')!r}"
            )
        return statement

    async def _on_execute_prepared(
        self, state: _ClientState, header: dict
    ) -> None:
        statement = self._statement(state, header)
        params = protocol.decoded_params(header.get("params"))
        self.stats.statements += 1
        result = await self._call(statement.execute, params)
        await self._send_result(state, result)

    async def _on_executemany(self, state: _ClientState, header: dict) -> None:
        seq = header.get("params_seq")
        if not isinstance(seq, list):
            raise ProtocolError("EXECUTEMANY frame without a parameter list")
        seq = [protocol.decoded_params(params) for params in seq]
        self.stats.statements += 1
        if "statement_id" in header:
            statement = self._statement(state, header)
            result = await self._call(statement.executemany, seq)
        else:
            sql = header.get("sql")
            if not isinstance(sql, str):
                raise ProtocolError("EXECUTEMANY frame without SQL text")
            result = await self._call(state.session.executemany, sql, seq)
        await self._send_result(state, result)

    async def _on_begin(self, state: _ClientState, header: dict) -> None:
        await self._call(state.session.begin)
        await self._send_ok(state)

    async def _on_commit(self, state: _ClientState, header: dict) -> None:
        await self._call(state.session.commit)
        await self._send_ok(state)

    async def _on_rollback(self, state: _ClientState, header: dict) -> None:
        await self._call(state.session.rollback)
        await self._send_ok(state)

    async def _on_close_statement(
        self, state: _ClientState, header: dict
    ) -> None:
        state.statements.pop(header.get("statement_id"), None)
        await self._send_ok(state)

    async def _on_ping(self, state: _ClientState, header: dict) -> None:
        # In-band on purpose: the reply must never interleave with a
        # result stream, so PING rides the ordered request queue.
        await self._send(state, protocol.encode_frame(Msg.PONG, {}))

    async def _on_stats(self, state: _ClientState, header: dict) -> None:
        stats = dict(self.database.stats())
        stats.update(self.stats.snapshot())
        stats["batch_rows"] = self.batch_rows
        stats["max_sessions"] = self.max_sessions
        await self._send(state, protocol.encode_frame(Msg.STATS_DATA, stats))

    _HANDLERS = {
        Msg.EXECUTE: _on_execute,
        Msg.PREPARE: _on_prepare,
        Msg.EXECUTE_PREPARED: _on_execute_prepared,
        Msg.EXECUTEMANY: _on_executemany,
        Msg.BEGIN: _on_begin,
        Msg.COMMIT: _on_commit,
        Msg.ROLLBACK: _on_rollback,
        Msg.CLOSE_STATEMENT: _on_close_statement,
        Msg.STATS: _on_stats,
        Msg.PING: _on_ping,
    }

    # ------------------------------------------------------------------
    # result streaming
    # ------------------------------------------------------------------
    async def _send_ok(self, state: _ClientState, affected: int = 0) -> None:
        await self._send(
            state,
            protocol.encode_frame(
                Msg.OK,
                {
                    "affected": affected,
                    "in_transaction": state.session.in_transaction,
                },
            ),
        )

    async def _send_result(self, state: _ClientState, result: Result) -> None:
        """Stream one result: header, bounded columnar batches, done.

        The per-connection transfer buffer never exceeds one encoded
        batch — each frame is encoded from O(batch_rows) column
        slices and fully drained (backpressure) before the next one
        is built.  Cancellation is honoured between batches.
        """
        if not result.is_query:
            await self._send_ok(state, result.affected)
            return
        await self._send(
            state,
            protocol.encode_frame(
                Msg.RESULT_HEADER,
                {
                    "kind": result.kind,
                    "names": result.names,
                    "meta": result.meta,
                    "row_count": result.row_count,
                    "affected": result.affected,
                    "batch_rows": state.batch_rows,
                },
            ),
        )
        batches = 0
        for columns in result.iter_batches(state.batch_rows):
            if state.cancel_event.is_set():
                state.cancel_event.clear()
                self.stats.cancelled += 1
                await self._send_error(
                    state,
                    OperationalError(
                        "statement cancelled by the client mid-stream"
                    ),
                )
                return
            frame = protocol.encode_batch(columns)
            batches += 1
            self.stats.batches_streamed += 1
            self.stats.bytes_streamed += len(frame)
            if len(frame) > self.stats.peak_batch_bytes:
                self.stats.peak_batch_bytes = len(frame)
            await self._send(state, frame)
        await self._send(
            state, protocol.encode_frame(Msg.RESULT_DONE, {"batches": batches})
        )


# ----------------------------------------------------------------------
# hosting helpers
# ----------------------------------------------------------------------
class ServerThread:
    """Host a :class:`ReproServer` on a background event-loop thread.

    ``with ServerThread(database) as server: repro.connect(server.url)``
    is the test/benchmark/example idiom; production deployments use
    :func:`serve` (or ``python -m repro.net.server``) on a foreground
    loop instead.
    """

    def __init__(self, database: Optional[Database] = None, **kwargs):
        self.server = ReproServer(database, **kwargs)
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="repro-net-server", daemon=True
        )

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def start(self) -> "ServerThread":
        self._thread.start()
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self._loop
        ).result(timeout=30)
        return self

    @property
    def address(self) -> tuple[str, int]:
        return self.server.address

    @property
    def url(self) -> str:
        return self.server.url

    def stop(self, drain_timeout: Optional[float] = None) -> None:
        """Tear the server down; *drain_timeout* > 0 drains gracefully."""
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(
            self.server.shutdown(drain_timeout), self._loop
        ).result(timeout=60)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=30)
        self._loop.close()

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve(
    database: Optional[Database] = None,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
    **kwargs,
) -> None:
    """Run a server on the current thread until interrupted."""

    async def _main() -> None:
        server = ReproServer(database, host, port, **kwargs)
        bound_host, bound_port = await server.start()
        print(f"repro server listening on repro://{bound_host}:{bound_port}")
        try:
            await server.serve_forever()
        finally:
            await server.aclose()

    asyncio.run(_main())


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve a repro database over TCP."
    )
    parser.add_argument("--host", default=DEFAULT_HOST)
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--path", default=None, help="farm directory to open (default: in-memory)"
    )
    parser.add_argument(
        "--durable",
        action="store_true",
        help="keep commits durable via the write-ahead log (needs --path)",
    )
    parser.add_argument("--max-sessions", type=int, default=None)
    parser.add_argument("--batch-rows", type=int, default=None)
    args = parser.parse_args(argv)
    if args.path is not None:
        database = Database.open(args.path, durable="wal" if args.durable else False)
    else:
        database = Database()
    try:
        serve(
            database,
            args.host,
            args.port,
            max_sessions=args.max_sessions,
            batch_rows=args.batch_rows,
        )
    except KeyboardInterrupt:
        pass
    finally:
        database.close()
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
