"""The wire protocol: checksummed frames and columnar result batches.

One conversation is a sequence of *frames*.  Framing mirrors the
write-ahead log (`engine/wal.py`) deliberately — the same
``[u32 length][u32 crc32(payload)][payload]`` prelude, so torn or
corrupted byte streams are detected, never interpreted::

    frame   = [u32 payload length][u32 crc32(payload)][payload]
    payload = [u8 message type][u32 header length][header JSON][blobs]

The JSON header carries the message structure; bulk data (result
columns, NULL masks) travels in the raw *blob* section after it,
described by ``header["columns"]`` specs.  A result set streams as::

    RESULT_HEADER  {kind, names, meta, row_count, affected, batch_rows}
    RESULT_BATCH   {columns: [spec...]} + column/mask blobs   (repeated)
    RESULT_DONE    {batches}

Columns are encoded exactly as the kernel stores them — numeric tails
as machine dtype bytes, strings as a JSON array, the NULL mask as raw
bool bytes — so a decoded batch reassembles into
:class:`~repro.gdk.column.Column` objects byte-identical to the
server-side originals (the property suite round-trips every frame
type over randomized payloads).

Errors travel as ``ERROR`` frames naming a PEP 249 exception class;
:func:`raise_remote_error` re-raises the closest local class, so
``except repro.OperationalError`` works identically against a remote
or an in-process session.
"""

from __future__ import annotations

import enum
import json
import struct
import zlib
from typing import Any, Callable, Iterable, Optional, Sequence

import numpy as np

from repro import errors
from repro.errors import ProgrammingError, ProtocolError
from repro.gdk.atoms import NUMPY_DTYPE, Atom
from repro.gdk.column import Column

#: bumped on every incompatible wire change; both sides must match.
PROTOCOL_VERSION = 2

#: magic token the client presents in its HELLO frame.
CLIENT_MAGIC = "REPRO"

#: default rows per streamed result batch (``REPRO_NET_BATCH_ROWS``).
DEFAULT_BATCH_ROWS = 65536

#: upper bound on one frame; anything larger is a corrupt stream.
MAX_FRAME_BYTES = 256 * 1024 * 1024

#: ``[u32 payload length][u32 crc32(payload)]``.
FRAME_PRELUDE = struct.Struct("<II")
_U32 = struct.Struct("<I")


class Msg(enum.IntEnum):
    """Message types.  Client requests < 0x80 <= server responses."""

    HELLO = 0x01
    EXECUTE = 0x02
    PREPARE = 0x03
    EXECUTE_PREPARED = 0x04
    EXECUTEMANY = 0x05
    BEGIN = 0x06
    COMMIT = 0x07
    ROLLBACK = 0x08
    CANCEL = 0x09
    STATS = 0x0A
    CLOSE_STATEMENT = 0x0B
    GOODBYE = 0x0C
    PING = 0x0D

    WELCOME = 0x81
    OK = 0x82
    RESULT_HEADER = 0x83
    RESULT_BATCH = 0x84
    RESULT_DONE = 0x85
    PREPARED = 0x86
    ERROR = 0x87
    STATS_DATA = 0x88
    PONG = 0x89


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(
    msg: Msg, header: dict, blobs: Sequence[bytes] = ()
) -> bytes:
    """One complete frame: prelude + typed payload + blob section."""
    header_bytes = json.dumps(header, ensure_ascii=False).encode("utf-8")
    payload = b"".join(
        [bytes([int(msg)]), _U32.pack(len(header_bytes)), header_bytes, *blobs]
    )
    return FRAME_PRELUDE.pack(len(payload), zlib.crc32(payload)) + payload


def decode_payload(payload: bytes) -> tuple[Msg, dict, bytes]:
    """Split a verified payload into (message type, header, blob bytes)."""
    if len(payload) < 5:
        raise ProtocolError(f"frame payload truncated ({len(payload)} bytes)")
    try:
        msg = Msg(payload[0])
    except ValueError:
        raise ProtocolError(
            f"unknown message type 0x{payload[0]:02x}"
        ) from None
    (header_length,) = _U32.unpack_from(payload, 1)
    if 5 + header_length > len(payload):
        raise ProtocolError("frame header exceeds payload")
    try:
        header = json.loads(payload[5 : 5 + header_length].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed frame header: {exc}") from None
    if not isinstance(header, dict):
        raise ProtocolError("frame header must be a JSON object")
    return msg, header, payload[5 + header_length :]


def check_payload(length: int, crc: int, payload: bytes) -> None:
    """Validate one prelude against the payload it announced."""
    if len(payload) != length:
        raise ProtocolError(
            f"frame truncated: announced {length} bytes, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise ProtocolError("frame checksum mismatch (corrupted stream)")


def check_frame_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )


def decode_frame(data: bytes) -> tuple[Msg, dict, bytes, int]:
    """Decode the first frame in *data*; returns (..., bytes consumed).

    Used by the property suite and any buffer-at-a-time consumer; the
    streaming endpoints read the prelude and payload separately via
    :func:`check_payload`.
    """
    if len(data) < FRAME_PRELUDE.size:
        raise ProtocolError(
            f"frame prelude truncated ({len(data)} of {FRAME_PRELUDE.size} bytes)"
        )
    length, crc = FRAME_PRELUDE.unpack_from(data)
    check_frame_length(length)
    end = FRAME_PRELUDE.size + length
    payload = data[FRAME_PRELUDE.size : end]
    check_payload(length, crc, payload)
    return (*decode_payload(payload), end)


def read_frame(read_exactly: Callable[[int], bytes]) -> tuple[Msg, dict, bytes]:
    """Read one frame through a blocking ``read_exactly(n)`` callable."""
    prelude = read_exactly(FRAME_PRELUDE.size)
    length, crc = FRAME_PRELUDE.unpack(prelude)
    check_frame_length(length)
    payload = read_exactly(length)
    check_payload(length, crc, payload)
    return decode_payload(payload)


# ----------------------------------------------------------------------
# columnar batch codec
# ----------------------------------------------------------------------
def encode_columns(columns: Iterable[Column]) -> tuple[list[dict], list[bytes]]:
    """Column specs + blob chunks, in the kernel's own representation."""
    specs: list[dict] = []
    chunks: list[bytes] = []
    for column in columns:
        if column.atom is Atom.STR:
            data = json.dumps(
                [str(v) for v in column.values], ensure_ascii=False
            ).encode("utf-8")
            spec = {"atom": "str", "n": len(column), "vlen": len(data)}
        else:
            data = np.ascontiguousarray(column.values).tobytes()
            spec = {
                "atom": column.atom.value,
                "dtype": str(column.values.dtype),
                "n": len(column),
                "vlen": len(data),
            }
        chunks.append(data)
        if column.mask is not None:
            mask_bytes = np.ascontiguousarray(column.mask).tobytes()
            spec["mlen"] = len(mask_bytes)
            chunks.append(mask_bytes)
        else:
            spec["mlen"] = 0
        specs.append(spec)
    return specs, chunks


def decode_columns(specs: list[dict], blob: bytes) -> list[Column]:
    """Rebuild the columns an :func:`encode_columns` peer sent."""
    columns: list[Column] = []
    offset = 0
    for spec in specs:
        try:
            atom = Atom(spec["atom"])
            count = int(spec["n"])
            vlen = int(spec["vlen"])
            mlen = int(spec["mlen"])
        except (KeyError, ValueError, TypeError) as exc:
            raise ProtocolError(f"malformed column spec {spec!r}: {exc}") from None
        if count < 0 or vlen < 0 or mlen < 0 or offset + vlen + mlen > len(blob):
            raise ProtocolError(f"column spec {spec!r} exceeds the blob section")
        data = blob[offset : offset + vlen]
        offset += vlen
        if atom is Atom.STR:
            try:
                items = json.loads(data.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(f"malformed string column: {exc}") from None
            if not isinstance(items, list) or len(items) != count:
                raise ProtocolError("string column length mismatch")
            values = np.empty(count, dtype=object)
            for i, item in enumerate(items):
                values[i] = str(item)
        else:
            dtype = NUMPY_DTYPE[atom]
            if str(dtype) != spec.get("dtype"):
                raise ProtocolError(
                    f"column dtype {spec.get('dtype')!r} does not match "
                    f"atom {atom.value!r}"
                )
            if vlen != count * dtype.itemsize:
                raise ProtocolError("numeric column byte-length mismatch")
            values = np.frombuffer(data, dtype=dtype).copy()
        mask: Optional[np.ndarray] = None
        if mlen:
            if mlen != count:
                raise ProtocolError("NULL mask byte-length mismatch")
            mask = np.frombuffer(
                blob[offset : offset + mlen], dtype=np.bool_
            ).copy()
            offset += mlen
        columns.append(Column(atom, values, mask))
    if offset != len(blob):
        raise ProtocolError(
            f"{len(blob) - offset} trailing bytes after the last column"
        )
    return columns


def encode_batch(columns: Sequence[Column]) -> bytes:
    """One RESULT_BATCH frame carrying a slice of every result column."""
    specs, chunks = encode_columns(columns)
    return encode_frame(Msg.RESULT_BATCH, {"columns": specs}, chunks)


def decode_batch(header: dict, blob: bytes) -> list[Column]:
    specs = header.get("columns")
    if not isinstance(specs, list):
        raise ProtocolError("RESULT_BATCH frame without column specs")
    return decode_columns(specs, blob)


# ----------------------------------------------------------------------
# parameters
# ----------------------------------------------------------------------
def jsonable_params(params: Any) -> Any:
    """Bind parameters as a wire-safe structure (NumPy scalars unwrapped).

    Accepts the same shapes the engine does — ``None``, a sequence for
    ``?`` placeholders, a mapping for ``:name`` — and only scalar
    values JSON can carry exactly (int, float incl. NaN, str, bool,
    None).
    """
    if params is None:
        return None

    def scalar(value: Any) -> Any:
        if isinstance(value, np.generic):
            value = value.item()
        if value is None or isinstance(value, (bool, int, float, str)):
            return value
        raise ProgrammingError(
            f"cannot send parameter of type {type(value).__name__!r} "
            "over the wire (int, float, str, bool or None)"
        )

    if isinstance(params, dict):
        return {str(key): scalar(value) for key, value in params.items()}
    if isinstance(params, (list, tuple)):
        return [scalar(value) for value in params]
    raise ProgrammingError(
        "parameters must be a sequence (?), a mapping (:name) or None"
    )


def decoded_params(params: Any) -> Any:
    """Wire parameters back into what ``bind_parameters`` expects."""
    if isinstance(params, list):
        return tuple(params)
    return params


# ----------------------------------------------------------------------
# error transport
# ----------------------------------------------------------------------
#: exception classes a server may name in an ERROR frame.  Anything
#: outside this registry maps to its ``fallback`` PEP 249 class.
_ERROR_CLASS_NAMES = (
    "SciQLError",
    "Warning",
    "InterfaceError",
    "DatabaseError",
    "DataError",
    "OperationalError",
    "IntegrityError",
    "InternalError",
    "ProgrammingError",
    "NotSupportedError",
    "LexerError",
    "ParseError",
    "SemanticError",
    "CatalogError",
    "TypeError_",
    "MALError",
    "GDKError",
    "DimensionError",
    "CoercionError",
    "PersistenceError",
    "CorruptionError",
    "NetworkError",
    "ProtocolError",
    "QueryGovernanceError",
    "QueryCancelledError",
    "QueryTimeoutError",
    "ResourceError",
)

ERROR_CLASSES: dict[str, type] = {
    name: getattr(errors, name) for name in _ERROR_CLASS_NAMES
}

#: PEP 249 fallbacks by hierarchy, for pipeline classes the client
#: build might not know (forward compatibility across versions).
_FALLBACKS = (
    "ProgrammingError",
    "DataError",
    "IntegrityError",
    "InternalError",
    "NotSupportedError",
    "OperationalError",
    "InterfaceError",
    "DatabaseError",
)


def error_header(exc: BaseException) -> dict:
    """The ERROR frame header describing *exc* for the peer."""
    name = type(exc).__name__
    fallback = "OperationalError"
    for candidate in _FALLBACKS:
        if isinstance(exc, getattr(errors, candidate)):
            fallback = candidate
            break
    header = {"error_class": name, "fallback": fallback, "message": str(exc)}
    if isinstance(exc, (errors.LexerError, errors.ParseError)):
        header["line"] = exc.line
        header["column"] = exc.column
    return header


def raise_remote_error(header: dict) -> None:
    """Re-raise the server-side failure an ERROR frame describes."""
    name = header.get("error_class", "")
    cls = ERROR_CLASSES.get(name)
    if cls is None:
        cls = ERROR_CLASSES.get(
            header.get("fallback", ""), errors.OperationalError
        )
    message = header.get("message", "unknown server error")
    if issubclass(cls, (errors.LexerError, errors.ParseError)):
        # Their constructors append "(line, column)" to the message,
        # which the server-side str() already carries — rebuild the
        # instance without re-suffixing, location attributes intact.
        exc = cls.__new__(cls)
        Exception.__init__(exc, message)
        exc.line = int(header.get("line", 0))
        exc.column = int(header.get("column", 0))
        raise exc
    raise cls(message)
