"""The network front door: socket server, wire protocol, client driver.

MonetDB serves its shared kernel through the MAPI socket protocol —
many clients, one engine, result sets streamed in chunks.  This
package is the reproduction's equivalent layer on top of
:class:`repro.Database`:

* :mod:`repro.net.protocol` — a length-prefixed, CRC32-checksummed
  binary framing with a columnar batch codec (raw dtype bytes + NULL
  masks, the same representation the GDK kernel stores);
* :mod:`repro.net.server` — an asyncio TCP server whose accept loop
  hands each client a ``Database.connect()`` session and runs
  statements on a thread pool, so the event loop never blocks on a
  query; per-session admission control, bounded pipelining and
  write-drain backpressure;
* :mod:`repro.net.client` — a thin synchronous driver reusing the
  PEP 249 ``Connection``/``Cursor`` surface, plus a small
  connection pool.

``repro.connect("repro://host:port")`` dispatches here.
"""

from repro.net.client import (
    ConnectionPool,
    RemoteConnection,
    RemoteCursor,
    RemotePreparedStatement,
    connect_url,
    parse_url,
)
from repro.net.protocol import DEFAULT_BATCH_ROWS, PROTOCOL_VERSION
from repro.net.server import DEFAULT_PORT, ReproServer, ServerThread, serve

__all__ = [
    "ConnectionPool",
    "DEFAULT_BATCH_ROWS",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "RemoteConnection",
    "RemoteCursor",
    "RemotePreparedStatement",
    "ReproServer",
    "ServerThread",
    "connect_url",
    "parse_url",
    "serve",
]
