"""The client driver: PEP 249 sessions over a ``repro://`` socket.

``repro.connect("repro://host:port")`` returns a
:class:`RemoteConnection` whose surface mirrors the in-process
:class:`~repro.engine.connection.Connection`: cursors, ``?``/``:name``
parameter binding, ``prepare()``, ``executemany`` bulk ingest,
transactions (``begin``/``commit``/``rollback`` and the SQL
statements), ``fetchnumpy`` — with byte-identical results, because
batches arrive in the kernel's own columnar encoding and reassemble
into the same :class:`Column`/:class:`Result` objects.

Result sets **stream**: :meth:`RemoteCursor.execute` returns after
the result header, and ``fetch*`` pulls columnar batches off the
socket on demand — a 100M-row scan holds one batch client-side, and
the un-read tail exerts TCP backpressure on the server.
``RemoteConnection.execute`` (the convenience path) drains the stream
into a regular :class:`Result` instead, exactly like the in-process
method it mirrors.

Errors map onto the PEP 249 hierarchy: server-side failures re-raise
as their local class (``ProgrammingError``, ``OperationalError``
first-committer-wins conflicts, ...), transport failures raise
:class:`~repro.errors.NetworkError` (an ``OperationalError``), and
framing violations raise :class:`~repro.errors.ProtocolError` (an
``InterfaceError``).  A :class:`ConnectionPool` amortises connection
setup for many short-lived sessions.
"""

from __future__ import annotations

import queue as queue_mod
import socket
import threading
import time
from typing import Any, Iterable, Iterator, Optional
from urllib.parse import parse_qsl, urlsplit

import numpy as np

from repro import errors, knobs
from repro.engine.result import Result
from repro.errors import (
    InterfaceError,
    NetworkError,
    ProgrammingError,
    ProtocolError,
)
from repro.gdk.atoms import Atom
from repro.gdk.column import Column
from repro.net import protocol
from repro.net.protocol import Msg

#: options a repro:// URL may carry in its query string.
_URL_INT_OPTIONS = ("batch_rows", "pool_size", "statement_timeout_ms")

#: the exponential reconnect backoff never sleeps longer than this.
_BACKOFF_CAP_S = 2.0


def _net_retries() -> int:
    """Reconnect attempts for idempotent operations (``REPRO_NET_RETRIES``)."""
    value = knobs.raw("REPRO_NET_RETRIES")
    if value is None or not value.strip():
        return 2
    try:
        return max(0, int(value))
    except ValueError:
        raise ProgrammingError(
            f"invalid REPRO_NET_RETRIES value {value!r}: expected an integer"
        ) from None


def _net_backoff_s() -> float:
    """Base backoff in seconds (``REPRO_NET_RETRY_BACKOFF_MS``)."""
    value = knobs.raw("REPRO_NET_RETRY_BACKOFF_MS")
    if value is None or not value.strip():
        return 0.1
    try:
        return max(0.0, float(value)) / 1000.0
    except ValueError:
        raise ProgrammingError(
            f"invalid REPRO_NET_RETRY_BACKOFF_MS value {value!r}: "
            "expected milliseconds"
        ) from None


def parse_url(url: str) -> tuple[str, int, dict]:
    """Split ``repro://host:port[?batch_rows=N]`` into (host, port, options)."""
    parts = urlsplit(url)
    if parts.scheme != "repro":
        raise ProgrammingError(f"not a repro:// URL: {url!r}")
    if not parts.hostname:
        raise ProgrammingError(f"repro:// URL without a host: {url!r}")
    from repro.net.server import DEFAULT_PORT

    options: dict[str, Any] = {}
    if parts.username:
        options["user"] = parts.username
    if parts.password:
        options["password"] = parts.password
    for key, value in parse_qsl(parts.query):
        if key in _URL_INT_OPTIONS:
            try:
                options[key] = int(value)
            except ValueError:
                raise ProgrammingError(
                    f"invalid {key} value {value!r} in {url!r}"
                ) from None
        else:
            raise ProgrammingError(f"unknown URL option {key!r} in {url!r}")
    return parts.hostname, parts.port or DEFAULT_PORT, options


def connect_url(url: str, **kwargs) -> "RemoteConnection":
    """Open a :class:`RemoteConnection` from a ``repro://`` URL."""
    host, port, options = parse_url(url)
    options.pop("pool_size", None)
    options.update(kwargs)
    return RemoteConnection(host, port, **options)


def _concat_columns(batches: list[list[Column]]) -> list[Column]:
    """Concatenate per-batch column slices into whole result columns."""
    if not batches:
        return []
    out: list[Column] = []
    for index, first in enumerate(batches[0]):
        parts = [batch[index] for batch in batches]
        values = np.concatenate([part.values for part in parts])
        if any(part.mask is not None for part in parts):
            mask = np.concatenate([part.effective_mask() for part in parts])
        else:
            mask = None
        out.append(Column(first.atom, values, mask))
    return out


class RemoteConnection:
    """One server session over TCP, with the PEP 249 surface."""

    # PEP 249: exceptions available as Connection attributes.
    Warning = errors.Warning
    Error = errors.Error
    InterfaceError = errors.InterfaceError
    DatabaseError = errors.DatabaseError
    DataError = errors.DataError
    OperationalError = errors.OperationalError
    IntegrityError = errors.IntegrityError
    InternalError = errors.InternalError
    ProgrammingError = errors.ProgrammingError
    NotSupportedError = errors.NotSupportedError

    def __init__(
        self,
        host: str,
        port: int,
        *,
        user: Optional[str] = None,
        password: Optional[str] = None,
        batch_rows: Optional[int] = None,
        timeout: Optional[float] = None,
        statement_timeout_ms: Optional[int] = None,
    ):
        self.host = host
        self.port = port
        self._closed = False
        #: serialises whole request/response conversations (PEP 249
        #: threadsafety 2: threads may share the connection).
        self._lock = threading.RLock()
        #: guards raw socket writes so CANCEL can be sent mid-stream.
        self._write_lock = threading.Lock()
        self._active_cursor: Optional[RemoteCursor] = None
        self._sock: Optional[socket.socket] = None
        self._timeout = timeout
        self._hello = {
            "magic": protocol.CLIENT_MAGIC,
            "protocol": protocol.PROTOCOL_VERSION,
            "user": user,
            "password": password,
            "batch_rows": batch_rows,
            "statement_timeout_ms": statement_timeout_ms,
        }
        self._in_transaction = False
        try:
            # _establish opens its own fresh socket per attempt; no
            # reconnect step needed between retries.
            self._idempotent(self._establish, reconnect=False)
        except BaseException:
            self._closed = True
            raise

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _establish(self) -> None:
        """Open the socket and run the HELLO/WELCOME handshake."""
        try:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self._timeout
            )
            self._sock.settimeout(self._timeout)
        except OSError as exc:
            raise NetworkError(
                f"cannot connect to repro://{self.host}:{self.port}: {exc}"
            ) from None
        try:
            self._send(Msg.HELLO, self._hello)
            _, header, _ = self._expect(Msg.WELCOME)
        except BaseException:
            self._sock.close()
            raise
        self.server_version = header.get("server_version")
        self.batch_rows = header.get("batch_rows")

    def _reconnect(self) -> None:
        """Replace a dead socket with a fresh session (idle state only)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._active_cursor = None
        self._establish()

    def _idempotent(self, fn, *, reconnect: bool = True):
        """Run *fn*, reconnecting with exponential backoff on transport loss.

        Only idempotent conversations (the handshake itself, ping,
        stats) route through here; statements never silently re-run,
        and an open transaction disables retry entirely — its server
        state died with the old socket.
        """
        retries = _net_retries()
        delay = _net_backoff_s()
        for attempt in range(retries + 1):
            try:
                if attempt and reconnect:
                    self._reconnect()
                return fn()
            except NetworkError:
                if attempt == retries or self._in_transaction or self._closed:
                    raise
                if delay > 0:
                    time.sleep(delay)
                delay = min(delay * 2.0, _BACKOFF_CAP_S)

    def _read_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout:
                raise NetworkError(
                    f"timed out reading from repro://{self.host}:{self.port}"
                ) from None
            except OSError as exc:
                raise NetworkError(f"connection lost: {exc}") from None
            if not chunk:
                raise NetworkError(
                    "connection closed by the server mid-frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _send(self, msg: Msg, header: dict, blobs=()) -> None:
        frame = protocol.encode_frame(msg, header, blobs)
        with self._write_lock:
            try:
                self._sock.sendall(frame)
            except OSError as exc:
                raise NetworkError(f"connection lost: {exc}") from None

    def _read_frame(self) -> tuple[Msg, dict, bytes]:
        return protocol.read_frame(self._read_exactly)

    def _expect(self, *expected: Msg) -> tuple[Msg, dict, bytes]:
        """Read one frame; raise mapped errors, enforce the expected type."""
        msg, header, blob = self._read_frame()
        if msg is Msg.ERROR:
            protocol.raise_remote_error(header)
        if expected and msg not in expected:
            raise ProtocolError(
                f"expected {'/'.join(e.name for e in expected)}, "
                f"got {msg.name}"
            )
        return msg, header, blob

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("connection is closed")

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Send GOODBYE (best effort) and close the socket."""
        if self._closed:
            return
        self._closed = True
        try:
            self._send(Msg.GOODBYE, {})
        except (NetworkError, InterfaceError):
            pass
        finally:
            self._sock.close()

    def __enter__(self) -> "RemoteConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def _drain_active(self) -> None:
        """Materialise any still-streaming cursor before a new request.

        The wire carries one result stream at a time; starting a new
        statement first buffers the remaining batches of the active
        one client-side (like MonetDB's driver does), so interleaved
        cursor use stays correct — sequential streams stay O(batch).
        """
        cursor = self._active_cursor
        if cursor is not None:
            cursor._buffer_remaining()
            self._active_cursor = None

    def _request(self, msg: Msg, header: dict) -> tuple[Msg, dict, bytes]:
        with self._lock:
            self._check_open()
            self._drain_active()
            self._send(msg, header)
            return self._expect()

    def cancel(self) -> None:
        """Ask the server to abandon the in-flight statement.

        Safe to call from another thread while a statement streams
        *or* while it is still executing: the server both marks the
        stream and cancels the running statement through its
        cooperative token, so the statement fails with
        ``QueryCancelledError`` (an ``OperationalError``) at the next
        instruction boundary.  Best-effort: a statement that already
        completed is unaffected.
        """
        self._check_open()
        self._send(Msg.CANCEL, {})

    def ping(self) -> bool:
        """One PING/PONG round-trip; False when the server is gone.

        Never raises for transport failure — the pool's health-check
        idiom.  A failed ping closes the connection, so callers can
        discard it without a second probe.
        """
        if self._closed:
            return False
        with self._lock:
            try:
                self._drain_active()
                self._send(Msg.PING, {})
                self._expect(Msg.PONG)
                return True
            except errors.Error:
                self._closed = True
                try:
                    self._sock.close()
                except OSError:
                    pass
                return False

    # ------------------------------------------------------------------
    # PEP 249 connection surface
    # ------------------------------------------------------------------
    def cursor(self) -> "RemoteCursor":
        self._check_open()
        return RemoteCursor(self)

    def execute(self, sql: str, params: Any = None) -> Result:
        """Execute one statement; returns a fully materialised Result.

        Mirrors the in-process ``Connection.execute``.  For scans too
        large to hold, use a cursor — its ``fetch*`` methods consume
        the stream incrementally.
        """
        cursor = self.cursor()
        cursor.execute(sql, params)
        return cursor._materialise()

    def executemany(self, sql: str, seq_of_params: Iterable[Any]) -> Result:
        """Bulk execution; single-row INSERTs take the server's
        columnar ingest path, the Result totals affected rows."""
        cursor = self.cursor()
        cursor.executemany(sql, seq_of_params)
        return cursor._materialise()

    def prepare(self, sql: str) -> "RemotePreparedStatement":
        """Compile once server-side; re-execute under fresh bindings."""
        with self._lock:
            msg, header, _ = self._request(Msg.PREPARE, {"sql": sql})
            if msg is not Msg.PREPARED:
                raise ProtocolError(f"expected PREPARED, got {msg.name}")
            return RemotePreparedStatement(
                self,
                header["statement_id"],
                sql,
                tuple(header.get("parameters", ())),
            )

    def begin(self) -> None:
        """Open an explicit transaction (snapshot isolation)."""
        self._txn_command(Msg.BEGIN)

    def commit(self) -> None:
        """Publish the open transaction; first committer wins."""
        self._txn_command(Msg.COMMIT)

    def rollback(self) -> None:
        """Discard the open transaction."""
        self._txn_command(Msg.ROLLBACK)

    def _txn_command(self, msg: Msg) -> None:
        with self._lock:
            _, header, _ = self._request(msg, {})
            self._in_transaction = bool(header.get("in_transaction"))

    @property
    def in_transaction(self) -> bool:
        """True after ``begin()`` until commit/rollback (as last acked)."""
        return self._in_transaction

    def stats(self) -> dict:
        """Server + engine observability counters, one snapshot.

        Idempotent, so a dropped socket reconnects with backoff
        (``REPRO_NET_RETRIES`` / ``REPRO_NET_RETRY_BACKOFF_MS``)
        before the ``NetworkError`` surfaces.
        """
        return self._idempotent(self._stats_once)

    def _stats_once(self) -> dict:
        with self._lock:
            msg, header, _ = self._request(Msg.STATS, {})
            if msg is not Msg.STATS_DATA:
                raise ProtocolError(f"expected STATS_DATA, got {msg.name}")
            return header


class RemoteCursor:
    """A PEP 249 cursor pulling columnar batches off the socket."""

    def __init__(self, connection: RemoteConnection):
        self.connection = connection
        self.arraysize = 1
        self._closed = False
        self._reset()

    def _reset(self) -> None:
        self._header: Optional[dict] = None
        self._affected = -1
        #: batches already pulled off the wire but not yet consumed.
        self._batches: list[list[Column]] = []
        #: row offset into the first buffered batch.
        self._offset = 0
        self._exhausted = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        if self.connection._active_cursor is self and not self.connection.closed:
            with self.connection._lock:
                self.connection._drain_active()
        self._closed = True
        self._reset()

    def __enter__(self) -> "RemoteCursor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection._check_open()

    @property
    def closed(self) -> bool:
        return self._closed or self.connection.closed

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, sql: str, params: Any = None) -> "RemoteCursor":
        """Execute one statement; fetch methods stream the result.

        Returns the cursor itself — unlike the in-process cursor,
        which returns its (always fully materialised) Result.
        Returning a Result here would force the whole stream into
        memory up front; use :attr:`result` or
        ``connection.execute(...)`` when that is what you want.
        """
        self._check_open()
        self._start_request(
            Msg.EXECUTE,
            {"sql": sql, "params": protocol.jsonable_params(params)},
        )
        return self

    def executemany(
        self, sql: str, seq_of_params: Iterable[Any]
    ) -> "RemoteCursor":
        self._check_open()
        self._start_request(
            Msg.EXECUTEMANY,
            {
                "sql": sql,
                "params_seq": [
                    protocol.jsonable_params(params)
                    for params in seq_of_params
                ],
            },
        )
        return self

    def _start_request(self, msg: Msg, header: dict) -> None:
        connection = self.connection
        with connection._lock:
            reply, reply_header, _ = connection._request(msg, header)
            self._reset()
            if reply is Msg.OK:
                self._affected = reply_header.get("affected", 0)
                connection._in_transaction = bool(
                    reply_header.get("in_transaction")
                )
                return
            if reply is not Msg.RESULT_HEADER:
                raise ProtocolError(
                    f"expected RESULT_HEADER or OK, got {reply.name}"
                )
            self._header = reply_header
            self._affected = reply_header.get("affected", 0)
            self._exhausted = False
            connection._active_cursor = self

    # ------------------------------------------------------------------
    # streaming
    # ------------------------------------------------------------------
    def _pull_batch(self) -> bool:
        """Read one more RESULT_BATCH into the buffer; False at DONE."""
        if self._exhausted:
            return False
        connection = self.connection
        with connection._lock:
            if connection._active_cursor is not self:
                # Another statement displaced us; everything left was
                # buffered by _buffer_remaining already.
                return False
            try:
                msg, header, blob = connection._expect(
                    Msg.RESULT_BATCH, Msg.RESULT_DONE
                )
            except BaseException:
                # Mid-stream failure (cancel, network, server error):
                # the stream is over either way.
                self._exhausted = True
                connection._active_cursor = None
                raise
            if msg is Msg.RESULT_DONE:
                self._exhausted = True
                connection._active_cursor = None
                return False
            self._batches.append(protocol.decode_batch(header, blob))
            return True

    def _buffer_remaining(self) -> None:
        """Pull every outstanding batch into the client-side buffer."""
        while not self._exhausted:
            if not self._pull_batch():
                break

    def _ensure_rows(self) -> bool:
        """True when the buffer holds at least one unconsumed row."""
        while True:
            if self._batches:
                first = self._batches[0]
                if first and self._offset < len(first[0]):
                    return True
                self._batches.pop(0)
                self._offset = 0
                continue
            if not self._pull_batch():
                return False

    def _require_result(self) -> dict:
        self._check_open()
        if self._header is None:
            raise ProgrammingError(
                "no result set to fetch from; execute a query first"
            )
        return self._header

    # ------------------------------------------------------------------
    # PEP 249 attributes
    # ------------------------------------------------------------------
    @property
    def description(self) -> Optional[list[tuple]]:
        """PEP 249 column descriptions, or None for non-query statements."""
        self._check_open()
        if self._header is None:
            return None
        names = self._header.get("names", [])
        atoms = list((self._header.get("meta") or {}).get("atoms") or [])
        atoms += [None] * (len(names) - len(atoms))
        return [
            (name, atom, None, None, None, None, True)
            for name, atom in zip(names, atoms)
        ]

    @property
    def rowcount(self) -> int:
        """Result rows (queries, known from the header) or affected rows."""
        self._check_open()
        if self._header is not None:
            return self._header.get("row_count", -1)
        return self._affected

    def setinputsizes(self, sizes) -> None:
        self._check_open()

    def setoutputsize(self, size, column=None) -> None:
        self._check_open()

    # ------------------------------------------------------------------
    # fetching
    # ------------------------------------------------------------------
    def fetchone(self) -> Optional[tuple]:
        """The next row, pulling a new batch off the wire when needed."""
        self._require_result()
        if not self._ensure_rows():
            return None
        columns = self._batches[0]
        row = tuple(column.get(self._offset) for column in columns)
        self._offset += 1
        return row

    def fetchmany(self, size: Optional[int] = None) -> list[tuple]:
        self._require_result()
        if size is None:
            size = self.arraysize
        out: list[tuple] = []
        while len(out) < size:
            row = self.fetchone()
            if row is None:
                break
            out.append(row)
        return out

    def fetchall(self) -> list[tuple]:
        self._require_result()
        out: list[tuple] = []
        while self._ensure_rows():
            columns = self._batches.pop(0)
            lists = [column.to_pylist()[self._offset :] for column in columns]
            self._offset = 0
            out.extend(zip(*lists))
        return out

    def _remaining_columns(self) -> list[Column]:
        """All unconsumed rows as whole columns (drains the stream)."""
        self._buffer_remaining()
        if self._batches and self._offset:
            self._batches[0] = [
                column.slice(self._offset, len(column))
                for column in self._batches[0]
            ]
            self._offset = 0
        columns = _concat_columns(self._batches)
        self._batches = []
        header = self._header or {}
        if not columns:
            # Stream fully consumed (or empty): rebuild typed empty
            # columns from the header so to_numpy stays shape-faithful.
            atoms = list((header.get("meta") or {}).get("atoms") or [])
            if len(atoms) == len(header.get("names", [])):
                columns = [Column.empty(Atom(atom)) for atom in atoms]
        return columns

    def _materialise(self) -> Result:
        """The whole remaining stream as an engine Result object."""
        header = self._header
        if header is None:
            return Result(affected=max(self._affected, 0))
        return Result(
            header.get("kind", "table"),
            list(header.get("names", [])),
            self._remaining_columns(),
            dict(header.get("meta") or {}),
            header.get("affected", 0),
        )

    def fetchnumpy(self) -> dict[str, np.ndarray]:
        """All remaining rows as columnar ndarrays (name -> array).

        Identical semantics (and bytes) to the in-process
        ``Cursor.fetchnumpy``: NULLs widen numerics to float64 NaN,
        strings/bools become object arrays with ``None``.
        """
        self._require_result()
        return self._materialise().to_numpy()

    @property
    def result(self) -> Optional[Result]:
        """Materialise the remaining stream (DB-API extension)."""
        self._check_open()
        if self._header is None and self._affected < 0:
            return None
        return self._materialise()

    def __iter__(self) -> Iterator[tuple]:
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row


class RemotePreparedStatement:
    """A server-side compiled statement, addressed by id."""

    def __init__(
        self,
        connection: RemoteConnection,
        statement_id: int,
        sql: str,
        parameters: tuple,
    ):
        self.connection = connection
        self.statement_id = statement_id
        self.sql = sql
        #: bind-parameter keys in occurrence order.
        self.parameters = parameters
        self._closed = False

    def execute(self, params: Any = None) -> Result:
        """Run the compiled plan under *params* (materialised Result)."""
        self._check_open()
        cursor = self.connection.cursor()
        cursor._start_request(
            Msg.EXECUTE_PREPARED,
            {
                "statement_id": self.statement_id,
                "params": protocol.jsonable_params(params),
            },
        )
        return cursor._materialise()

    def executemany(self, seq_of_params: Iterable[Any]) -> Result:
        self._check_open()
        cursor = self.connection.cursor()
        cursor._start_request(
            Msg.EXECUTEMANY,
            {
                "statement_id": self.statement_id,
                "params_seq": [
                    protocol.jsonable_params(params)
                    for params in seq_of_params
                ],
            },
        )
        return cursor._materialise()

    def close(self) -> None:
        """Release the server-side plan handle."""
        if self._closed or self.connection.closed:
            self._closed = True
            return
        self._closed = True
        self.connection._request(
            Msg.CLOSE_STATEMENT, {"statement_id": self.statement_id}
        )

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("prepared statement is closed")


class ConnectionPool:
    """A small client-side pool of :class:`RemoteConnection` objects.

    ``with pool.acquire() as conn: ...`` hands out an idle connection
    (creating one while under *size*) and returns it on exit; broken
    connections are discarded, not recycled.  Every recycled
    connection is **pinged on acquire** — a dead socket (server
    restart, chaos proxy, idle-kill firewall) is evicted and replaced
    instead of surfacing as a mid-statement ``NetworkError``.  With
    *idle_timeout* set, a background reaper closes connections that
    sat unused longer than that many seconds, so a burst does not pin
    server admission slots forever.  Intended for many short-lived
    logical sessions over few TCP connections — connection churn is
    the one cost the server cannot amortise.
    """

    def __init__(
        self,
        url: str,
        size: int = 4,
        *,
        idle_timeout: Optional[float] = None,
        ping_on_acquire: bool = True,
        **kwargs,
    ):
        if size < 1:
            raise ProgrammingError(f"pool size must be >= 1, got {size}")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ProgrammingError(
                f"idle_timeout must be positive, got {idle_timeout}"
            )
        self.url = url
        self.size = size
        self.idle_timeout = idle_timeout
        self.ping_on_acquire = ping_on_acquire
        self._kwargs = kwargs
        #: idle entries are (connection, check-in monotonic time).
        self._idle: queue_mod.Queue = queue_mod.Queue()
        self._lock = threading.Lock()
        self._created = 0
        self._closed = False
        self._reap_stop = threading.Event()
        if idle_timeout is not None:
            self._reaper = threading.Thread(
                target=self._reap_loop, name="repro-pool-reaper", daemon=True
            )
            self._reaper.start()

    def _connect(self) -> RemoteConnection:
        return connect_url(self.url, **self._kwargs)

    def _discard(self, conn: RemoteConnection) -> None:
        with self._lock:
            self._created -= 1
        conn.close()

    def _usable(self, conn: RemoteConnection, checked_in: float) -> bool:
        """Health-check one idle connection before handing it out."""
        if conn.closed:
            return False
        if (
            self.idle_timeout is not None
            and time.monotonic() - checked_in > self.idle_timeout
        ):
            return False
        # ping() closes the connection itself on failure, so a False
        # here leaves nothing half-alive behind.
        return not self.ping_on_acquire or conn.ping()

    def _checkout(self, timeout: Optional[float]) -> RemoteConnection:
        if self._closed:
            raise InterfaceError("connection pool is closed")
        while True:
            try:
                conn, checked_in = self._idle.get_nowait()
            except queue_mod.Empty:
                break
            if self._usable(conn, checked_in):
                return conn
            self._discard(conn)
        with self._lock:
            if self._created < self.size:
                self._created += 1
                try:
                    return self._connect()
                except BaseException:
                    self._created -= 1
                    raise
        try:
            conn, checked_in = self._idle.get(timeout=timeout)
        except queue_mod.Empty:
            raise NetworkError(
                f"no pooled connection became free within {timeout}s"
            ) from None
        if not self._usable(conn, checked_in):
            self._discard(conn)
            return self._checkout(timeout)
        return conn

    def _checkin(self, conn: RemoteConnection) -> None:
        if self._closed or conn.closed:
            self._discard(conn)
            return
        self._idle.put((conn, time.monotonic()))

    # ------------------------------------------------------------------
    # idle reaper
    # ------------------------------------------------------------------
    def _reap_loop(self) -> None:
        interval = max(0.05, min(self.idle_timeout / 2.0, 1.0))
        while not self._reap_stop.wait(interval):
            self.reap_idle()

    def reap_idle(self) -> int:
        """Close idle connections past *idle_timeout*; returns the count.

        The reaper thread calls this periodically; tests may call it
        directly for determinism.
        """
        if self.idle_timeout is None:
            return 0
        now = time.monotonic()
        keep: list[tuple[RemoteConnection, float]] = []
        reaped = 0
        while True:
            try:
                conn, checked_in = self._idle.get_nowait()
            except queue_mod.Empty:
                break
            if conn.closed or now - checked_in > self.idle_timeout:
                self._discard(conn)
                reaped += 1
            else:
                keep.append((conn, checked_in))
        for entry in keep:
            self._idle.put(entry)
        return reaped

    class _Lease:
        def __init__(self, pool: "ConnectionPool", conn: RemoteConnection):
            self._pool = pool
            self.connection = conn

        def __enter__(self) -> RemoteConnection:
            return self.connection

        def __exit__(self, *exc_info) -> None:
            self._pool._checkin(self.connection)

    def acquire(self, timeout: Optional[float] = 30.0) -> "_Lease":
        """A context manager leasing one connection from the pool."""
        return self._Lease(self, self._checkout(timeout))

    def close(self) -> None:
        """Close every idle connection; leased ones close on check-in."""
        self._closed = True
        self._reap_stop.set()
        while True:
            try:
                conn, _ = self._idle.get_nowait()
            except queue_mod.Empty:
                break
            conn.close()

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
