"""CSV exchange — the ``COPY INTO`` facility.

Section 1 of the paper notes that library interaction with databases
"is often confined to a simplified data import/export facility"; this
module provides that facility so external tools (R, spreadsheets,
LINPACK-style pipelines) can exchange data with the engine:

* :func:`export_csv` — any query result (or whole table/array) to CSV;
* :func:`import_csv` — bulk-load a CSV into an existing table, or
  create the table first with inferred column types;
* :func:`import_array_csv` — load ``(coordinates..., values...)`` rows
  into an existing array through the coercion path (cells listed in
  the file are overwritten; others keep their current value).

NULLs are represented by empty fields; quoting follows RFC 4180 via the
standard library's csv module.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.errors import SciQLError
from repro.gdk.atoms import Atom
from repro.engine import Connection
from repro.engine.result import Result


def _format_value(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def export_csv(
    connection: Connection,
    source: str,
    path: str | Path,
    header: bool = True,
    delimiter: str = ",",
) -> int:
    """Write a query result (or a whole table/array) to a CSV file.

    *source* is either an object name or a full SELECT statement.
    Returns the number of data rows written.
    """
    if not source.lstrip().upper().startswith(("SELECT", "EXPLAIN")):
        source = f"SELECT * FROM {source}"
    result = connection.execute(source)
    if not result.is_query:
        raise SciQLError("export_csv needs a query result")
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        if header:
            writer.writerow(result.names)
        for row in result.rows():
            writer.writerow([_format_value(v) for v in row])
    return result.row_count


def _parse_typed(text: str, atom: Atom) -> Any:
    if text == "":
        return None
    if atom in (Atom.INT, Atom.LNG):
        return int(text)
    if atom is Atom.DBL:
        return float(text)
    if atom is Atom.BIT:
        return text.strip().lower() in ("true", "t", "1")
    return text


def _infer_column_type(samples: list[str]) -> str:
    """The narrowest SQL type accepting every non-empty sample."""
    non_empty = [s for s in samples if s != ""]
    if not non_empty:
        return "VARCHAR(255)"

    def all_parse(parser) -> bool:
        for sample in non_empty:
            try:
                parser(sample)
            except ValueError:
                return False
        return True

    if all(s.strip().lower() in ("true", "false", "t", "f") for s in non_empty):
        return "BOOLEAN"
    if all_parse(int):
        magnitude = max(abs(int(s)) for s in non_empty)
        return "BIGINT" if magnitude >= 2**31 else "INT"
    if all_parse(float):
        return "DOUBLE"
    return "VARCHAR(255)"


def import_csv(
    connection: Connection,
    table: str,
    path: str | Path,
    header: bool = True,
    delimiter: str = ",",
    create: bool = False,
    batch_rows: int = 10_000,
) -> int:
    """Bulk-load a CSV file into a table.

    With ``create=True`` the table is created first: column names come
    from the header (or ``col_0..``), types are inferred from the data.
    Loading bypasses per-row SQL statements: rows are appended through
    the bulk path in batches.  Returns the number of rows loaded.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        return 0
    if header:
        names = [n.strip().lower() for n in rows[0]]
        data = rows[1:]
    else:
        names = [f"col_{i}" for i in range(len(rows[0]))]
        data = rows

    if create:
        if table.lower() in connection.catalog:
            raise SciQLError(f"table {table!r} already exists")
        specs = []
        for index, name in enumerate(names):
            samples = [row[index] for row in data[:200] if index < len(row)]
            specs.append(f"{name} {_infer_column_type(samples)}")
        connection.execute(f"CREATE TABLE {table} ({', '.join(specs)})")

    from repro.gdk.column import Column

    # Stage the whole load as one transaction: concurrent readers see
    # either no rows or all of them, never a half-loaded table.
    loaded = 0
    with connection.staging() as txn:
        target = connection.catalog.get_table(table)
        txn.note_write(table)
        atoms = [target.column_def(name).atom for name in names]
        for start in range(0, len(data), batch_rows):
            batch = data[start : start + batch_rows]
            columns: dict[str, Column] = {}
            for index, (name, atom) in enumerate(zip(names, atoms)):
                items = [
                    _parse_typed(row[index] if index < len(row) else "", atom)
                    for row in batch
                ]
                columns[name] = Column.from_pylist(atom, items)
            loaded += target.append_rows(columns)
    return loaded


def import_array_csv(
    connection: Connection,
    array: str,
    path: str | Path,
    header: bool = True,
    delimiter: str = ",",
) -> int:
    """Load ``(coordinates..., attributes...)`` rows into an array.

    Columns must follow the array's declaration order (dimensions
    first).  Cells named in the file are overwritten (SciQL INSERT
    semantics); all other cells are untouched.  Returns the number of
    cells written.
    """
    import numpy as np

    from repro.gdk.column import Column

    target = connection.catalog.get_array(array)
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if header:
        rows = rows[1:]
    if not rows:
        return 0
    ndims = len(target.dimensions)
    expected = ndims + len(target.attributes)
    if any(len(row) != expected for row in rows):
        raise SciQLError(
            f"array CSV needs {expected} columns "
            f"({ndims} coordinates + {len(target.attributes)} attributes)"
        )
    coordinates = [
        np.array([int(row[i]) for row in rows], dtype=np.int64)
        for i in range(ndims)
    ]
    with connection.staging() as txn:
        # Resolve the target and its cell oids inside the staged fork:
        # oids depend on the array shape, and a concurrent ALTER
        # committed between lookup and write would silently scatter
        # values into the wrong cells otherwise.
        target = connection.catalog.get_array(array)
        txn.note_write(array)
        oids = target.cell_oids(coordinates)
        valid = oids >= 0
        written = int(valid.sum())
        for offset, attribute in enumerate(target.attributes):
            items = [
                _parse_typed(row[ndims + offset], attribute.atom)
                for row, ok in zip(rows, valid.tolist())
                if ok
            ]
            target.replace_values(
                attribute.name,
                oids[valid],
                Column.from_pylist(attribute.atom, items),
            )
    return written
