"""Data exchange facilities (CSV import/export — the COPY INTO role)."""

from repro.io.csv_io import export_csv, import_array_csv, import_csv

__all__ = ["export_csv", "import_array_csv", "import_csv"]
