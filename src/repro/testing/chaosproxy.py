"""A fault-injecting TCP proxy for network chaos tests.

:class:`ChaosProxy` sits between a ``repro://`` client and a
:class:`~repro.net.server.ReproServer`, forwarding bytes verbatim
until a fault is armed:

* :meth:`set_delay` — per-chunk latency in both directions (slow,
  not broken, links);
* :meth:`stall_after` — stop forwarding a direction once *n* bytes
  passed, without closing anything (a black-holing middlebox);
* :meth:`cut_after` — forward exactly *n* bytes of a direction and
  then hard-close both sides (pick *n* inside a frame to truncate it
  mid-payload, which the CRC framing must surface as
  ``ProtocolError``/``NetworkError``, never as garbage data);
* :meth:`disconnect_all` — RST every live link immediately (a
  crashed middlebox / yanked cable).

Faults are armed per *direction* (``"c2s"`` client→server, ``"s2c"``
server→client); byte counters are per accepted connection, so each
test connection sees the fault at the same deterministic offset.
:meth:`reset` returns the proxy to transparent forwarding.  Designed
for the chaos matrix in ``tests/net/test_chaos.py``; deliberately
threaded and dependency-free so it runs anywhere the suite does.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Optional

_CHUNK = 65536
DIRECTIONS = ("c2s", "s2c")


def _hard_close(sock: socket.socket) -> None:
    """Kill a connection abruptly, waking any thread blocked on it.

    ``shutdown`` (not just ``close``) is essential: the pump threads
    block in ``recv`` on these sockets, and a bare ``close`` from a
    sibling thread defers the FIN until that recv returns — the peer
    would never notice.  ``shutdown`` tears the connection down at
    the file-description level immediately; SO_LINGER 0 makes the
    eventual close an RST rather than a polite FIN where possible.
    """
    try:
        sock.setsockopt(
            socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
        )
    except OSError:
        pass
    try:
        sock.shutdown(socket.SHUT_RDWR)
    except OSError:
        pass
    try:
        sock.close()
    except OSError:
        pass


class _Link:
    """One accepted client connection and its upstream twin."""

    def __init__(self, proxy: "ChaosProxy", client: socket.socket):
        self.proxy = proxy
        self.client = client
        self.upstream = socket.create_connection(
            (proxy.target_host, proxy.target_port), timeout=30.0
        )
        self.closed = threading.Event()
        #: bytes forwarded so far, per direction.
        self.forwarded = {"c2s": 0, "s2c": 0}
        self._threads = [
            threading.Thread(
                target=self._pump,
                args=(self.client, self.upstream, "c2s"),
                daemon=True,
                name="chaos-c2s",
            ),
            threading.Thread(
                target=self._pump,
                args=(self.upstream, self.client, "s2c"),
                daemon=True,
                name="chaos-s2c",
            ),
        ]
        for thread in self._threads:
            thread.start()

    def close(self) -> None:
        if self.closed.is_set():
            return
        self.closed.set()
        _hard_close(self.client)
        _hard_close(self.upstream)

    def _pump(self, src: socket.socket, dst: socket.socket, direction: str) -> None:
        try:
            while not self.closed.is_set():
                try:
                    data = src.recv(_CHUNK)
                except OSError:
                    break
                if not data:
                    break
                delay = self.proxy.delay
                if delay:
                    time.sleep(delay)
                stall_at = self.proxy.faults[direction]["stall_at"]
                cut_at = self.proxy.faults[direction]["cut_at"]
                sent = self.forwarded[direction]
                if cut_at is not None and sent + len(data) >= cut_at:
                    # Forward the exact prefix, then kill the link —
                    # the peer sees a frame truncated mid-payload.
                    keep = max(0, cut_at - sent)
                    if keep:
                        try:
                            dst.sendall(data[:keep])
                        except OSError:
                            pass
                        self.forwarded[direction] += keep
                    self.close()
                    return
                if stall_at is not None and sent + len(data) > stall_at:
                    # Black hole: swallow everything from here on but
                    # keep both sockets open (the worst middlebox).
                    self.closed.wait()
                    return
                try:
                    dst.sendall(data)
                except OSError:
                    break
                self.forwarded[direction] += len(data)
        finally:
            self.close()


class ChaosProxy:
    """A transparent TCP proxy with armable byte-level faults."""

    def __init__(self, target_host: str, target_port: int, host: str = "127.0.0.1"):
        self.target_host = target_host
        self.target_port = target_port
        self.delay = 0.0
        #: per-direction byte-offset faults; None means inactive.
        self.faults: dict[str, dict[str, Optional[int]]] = {
            direction: {"stall_at": None, "cut_at": None}
            for direction in DIRECTIONS
        }
        self._lock = threading.Lock()
        self._links: list[_Link] = []
        self._closed = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen()
        self.host, self.port = self._listener.getsockname()[:2]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True, name="chaos-accept"
        )
        self._accept_thread.start()

    @property
    def url(self) -> str:
        """The ``repro://`` URL clients should connect to."""
        return f"repro://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # fault arming
    # ------------------------------------------------------------------
    def _check_direction(self, direction: str) -> None:
        if direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            )

    def set_delay(self, seconds: float) -> None:
        """Sleep *seconds* before forwarding every chunk (both ways)."""
        self.delay = max(0.0, seconds)

    def stall_after(self, nbytes: int, direction: str = "s2c") -> None:
        """Stop forwarding *direction* after *nbytes*, sockets left open."""
        self._check_direction(direction)
        self.faults[direction]["stall_at"] = max(0, int(nbytes))

    def cut_after(self, nbytes: int, direction: str = "s2c") -> None:
        """Forward exactly *nbytes* of *direction*, then RST both sides."""
        self._check_direction(direction)
        self.faults[direction]["cut_at"] = max(0, int(nbytes))

    def bytes_forwarded(self, direction: str = "s2c") -> int:
        """Total bytes forwarded in *direction* across live links.

        With one client connected this is the link's byte offset —
        the anchor for arming :meth:`cut_after` / :meth:`stall_after`
        "a little past here", inside the next frame.
        """
        self._check_direction(direction)
        with self._lock:
            return sum(
                link.forwarded[direction]
                for link in self._links
                if not link.closed.is_set()
            )

    def disconnect_all(self) -> int:
        """Hard-close every live link right now; returns how many died."""
        with self._lock:
            links = [link for link in self._links if not link.closed.is_set()]
        for link in links:
            link.close()
        return len(links)

    def reset(self) -> None:
        """Back to transparent forwarding (existing links keep their fate)."""
        self.delay = 0.0
        for direction in DIRECTIONS:
            self.faults[direction] = {"stall_at": None, "cut_at": None}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            try:
                link = _Link(self, client)
            except OSError:
                _hard_close(client)
                continue
            with self._lock:
                self._links = [
                    live for live in self._links if not live.closed.is_set()
                ]
                self._links.append(link)

    def close(self) -> None:
        """Stop accepting and kill every link."""
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        self.disconnect_all()

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
