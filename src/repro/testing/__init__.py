"""Test-support utilities shipped with the library.

:mod:`repro.testing.faultpoints` is the deterministic crash-injection
harness the durability suite drives; :mod:`repro.testing.verify` holds
the canonical catalog digest used to assert byte-identical recovery.
Both are import-light so production code can call
:func:`~repro.testing.faultpoints.crash_point` unconditionally.
"""

from repro.testing.faultpoints import FaultInjected, activate, crash_point

__all__ = ["FaultInjected", "activate", "crash_point"]
