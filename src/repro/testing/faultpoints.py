"""Deterministic fault injection for the durability/crash-recovery suite.

The persistence and commit paths are threaded with *named fault
points* — calls to :func:`crash_point` placed exactly between the
steps whose ordering the crash-safety story depends on (WAL append vs
fsync vs publish, the two renames of the farm swap, ...).  A fault
point is free when inactive: one dict lookup plus one ``os.environ``
lookup.

Two activation styles:

* **Subprocess crashes** — set ``REPRO_FAULTPOINT=<name>`` (or
  ``<name>:<k>`` to crash on the k-th hit) in a child process'
  environment.  When the named point is reached the process dies via
  ``os._exit`` with exit code :data:`CRASH_EXIT_CODE` — no ``atexit``,
  no buffer flushing, no destructors: the closest a test can get to
  ``kill -9`` while staying deterministic about *where* execution
  stopped.  The crash-matrix suite (``tests/engine/test_recovery.py``)
  kills a workload at every registered point this way and asserts
  recovery.

* **In-process faults** — :func:`activate` arms a point inside the
  current process and (by default) raises :class:`FaultInjected`
  instead of exiting, for tests that want to assert "a failure *here*
  leaves the farm untouched" without paying for a subprocess.

Every point must be declared in :data:`REGISTERED_POINTS`; hitting an
undeclared name raises, so the crash matrix provably covers every
point that exists in the code.
"""

from __future__ import annotations

import os
from collections import Counter
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from repro import knobs

#: exit status of a process killed by an environment-armed fault point.
CRASH_EXIT_CODE = 42

#: environment variable arming a fault point: ``name`` or ``name:k``.
ENV_VAR = "REPRO_FAULTPOINT"

#: every fault point that exists in the code, in rough execution order
#: of a durable commit.  tests/engine/test_recovery.py kills a workload
#: at each of these and asserts exact recovery, so adding a point here
#: (and a ``crash_point`` call in the code) automatically extends the
#: crash matrix.
REGISTERED_POINTS: tuple[str, ...] = (
    # wal.py — inside WriteAheadLog.append_commit
    "wal.before_append",    # commit record not yet written
    "wal.record_written",   # record written, not yet fsync'd
    "wal.synced",           # record durable, in-memory head not published
    # database.py — commit/checkpoint driver
    "commit.published",     # head published, commit not yet acknowledged
    "checkpoint.before_publish",  # WAL full, farm not yet republished
    "checkpoint.before_reset",    # farm republished, WAL not yet reset
    # persist.py — file staging and the farm swap
    "persist.file_staged",  # one farm file written to its .tmp sibling
    "persist.dict_staged",  # string dictionary written, codes not yet
    "persist.zones_computed",  # payloads written, descriptor (zones) not yet
    "publish.staged",       # staging farm complete, swap not started
    "publish.retired",      # old farm renamed aside, new not yet in place
    "publish.swapped",      # new farm in place, old .retired not removed
    # connection.py / database.py — query-lifecycle governance
    "govern.kill_requested",   # kill_query about to flip the token
    "govern.cancel_rollback",  # governed abort rolled the txn back,
                               # error not yet surfaced to the caller
    # net/server.py — client-gone reclaim
    "net.disconnect_reclaim",  # client vanished, session rollback/close
                               # not yet run
)

#: per-point hit counters (shared by env and in-process activation).
_hits: Counter = Counter()

#: in-process activations: name -> (remaining_hits_before_fire, action).
_armed: dict[str, tuple[int, Callable[[str], None]]] = {}


class FaultInjected(RuntimeError):
    """Raised by an in-process fault point armed via :func:`activate`."""


def _hard_exit(name: str) -> None:
    os._exit(CRASH_EXIT_CODE)


def _raise_injected(name: str) -> None:
    raise FaultInjected(f"injected fault at {name!r}")


def crash_point(name: str) -> None:
    """Declare that execution reached the fault point *name*.

    No-op unless the point is armed via :data:`ENV_VAR` or
    :func:`activate`.  Raises :class:`LookupError` for names missing
    from :data:`REGISTERED_POINTS` — unregistered points would escape
    the crash matrix.
    """
    if name not in REGISTERED_POINTS:
        raise LookupError(f"unregistered fault point {name!r}")
    armed = _armed.get(name)
    if armed is not None:
        _hits[name] += 1
        remaining, action = armed
        if _hits[name] >= remaining:
            del _armed[name]
            action(name)
        return
    spec = knobs.raw(ENV_VAR)
    if not spec:
        return
    target, _, count = spec.partition(":")
    if target != name:
        return
    _hits[name] += 1
    if _hits[name] >= int(count or 1):
        _hard_exit(name)


@contextmanager
def activate(
    name: str,
    hits: int = 1,
    action: Optional[Callable[[str], None]] = None,
) -> Iterator[None]:
    """Arm fault point *name* inside this process for the block's span.

    The *action* (default: raise :class:`FaultInjected`) fires on the
    *hits*-th time the point is reached, then the point disarms itself.
    Counters reset on entry so nesting/sequencing stays deterministic.
    """
    if name not in REGISTERED_POINTS:
        raise LookupError(f"unregistered fault point {name!r}")
    _hits[name] = 0
    _armed[name] = (hits, action or _raise_injected)
    try:
        yield
    finally:
        _armed.pop(name, None)
        _hits[name] = 0


def reset() -> None:
    """Clear all hit counters and in-process activations."""
    _hits.clear()
    _armed.clear()
