"""Canonical catalog digests for recovery verification.

:func:`catalog_digest` folds every observable byte of a catalog — the
schema definitions and the exact payload/mask bytes of every storage
BAT — into one SHA-256.  Two catalogs share a digest iff they are
byte-identical, which is the invariant the crash-matrix suite asserts:
*crash anywhere, reopen, and the recovered catalog digests equal to
the last acknowledged commit*.
"""

from __future__ import annotations

import hashlib
import json

from repro.catalog import Catalog
from repro.catalog.objects import Array, Table
from repro.gdk.atoms import Atom
from repro.gdk.bat import BAT


def _feed_bat(digest: "hashlib._Hash", name: str, bat: BAT) -> None:
    digest.update(name.encode())
    digest.update(f"|{bat.atom.value}|{bat.hseqbase}|{len(bat)}|".encode())
    tail = bat.tail
    if bat.atom is Atom.STR:
        digest.update(json.dumps(list(tail.values), ensure_ascii=False).encode())
    else:
        digest.update(tail.values.tobytes())
    digest.update(b"mask:")
    digest.update(tail.effective_mask().tobytes())


def catalog_digest(catalog: Catalog) -> str:
    """Hex SHA-256 over the schema and the exact bytes of every BAT."""
    digest = hashlib.sha256()
    for name in catalog.names():
        obj = catalog.get(name)
        digest.update(f"object:{name}:{obj.kind}\n".encode())
        if isinstance(obj, Table):
            for column in obj.columns:
                digest.update(
                    f"col:{column.name}:{column.atom.value}"
                    f":{column.default!r}:{column.has_default}\n".encode()
                )
        elif isinstance(obj, Array):
            for dim in obj.dimensions:
                digest.update(
                    f"dim:{dim.name}:{dim.atom.value}"
                    f":{dim.start}:{dim.step}:{dim.stop}\n".encode()
                )
            for attr in obj.attributes:
                digest.update(
                    f"attr:{attr.name}:{attr.atom.value}"
                    f":{attr.default!r}:{attr.has_default}\n".encode()
                )
        for column in obj.column_names():
            _feed_bat(digest, column, obj.bind(column))
    return digest.hexdigest()
