"""Recursive-descent parser for the SQL/SciQL dialect.

Grammar notes specific to SciQL (all from Section 2 of the paper):

* ``CREATE ARRAY name (x INT DIMENSION[0:1:4], ..., v INT DEFAULT 0)``;
* projection items may carry the dimension qualifier ``[expr]``, which
  coerces the result into an array;
* ``GROUP BY name[x:x+2][y:y+2]`` is structural grouping — detected by
  an identifier directly followed by ``[`` in the GROUP BY clause;
* expressions may address cells by (relative) position:
  ``A[x-1][y]`` or ``A[x][y].v``;
* ``ALTER ARRAY name ALTER DIMENSION d SET RANGE [a:b:c]``.

Bind parameters (PEP 249): ``?`` anywhere a primary expression is
allowed, and ``:name`` when the ``:`` directly precedes an identifier
in primary-expression position — the range/tile uses of ``:`` always
consume their separator token first, so the two never clash.  One
statement must not mix the positional and named styles.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import tokenize
from repro.sql.tokens import Token, TokenType

_COMPARISON_OPS = ("=", "<>", "!=", "<", "<=", ">", ">=")


class Parser:
    """Parses one token stream into statements."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0
        #: bind-parameter keys in occurrence order: ints for ``?``
        #: markers (their 0-based position), strings for ``:name``.
        self.parameters: list[int | str] = []
        self._positional_count = 0
        self._named = False

    # ------------------------------------------------------------------
    # token plumbing
    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> Token:
        index = min(self.position + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def _check(self, token_type: TokenType, text: str | None = None) -> bool:
        token = self._peek()
        if token.type is not token_type:
            return False
        return text is None or token.text == text

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _match(self, token_type: TokenType, text: str | None = None) -> Token | None:
        if self._check(token_type, text):
            return self._advance()
        return None

    def _match_keyword(self, *names: str) -> Token | None:
        if self._check_keyword(*names):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, text: str | None = None) -> Token:
        token = self._peek()
        if not self._check(token_type, text):
            wanted = text or token_type.value
            raise ParseError(
                f"expected {wanted!r}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(
                f"expected {name}, found {token.text or 'end of input'!r}",
                token.line,
                token.column,
            )
        return self._advance()

    def _expect_ident(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENT:
            return self._advance().text
        raise ParseError(
            f"expected identifier, found {token.text or 'end of input'!r}",
            token.line,
            token.column,
        )

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def parse_statement(self) -> ast.Statement:
        """Parse exactly one statement (trailing ``;`` allowed)."""
        statement = self._statement()
        self._match(TokenType.SEMICOLON)
        if not self._check(TokenType.EOF):
            raise self._error("unexpected input after statement")
        return statement

    def parse_script(self) -> list[ast.Statement]:
        """Parse a ``;``-separated sequence of statements."""
        statements: list[ast.Statement] = []
        while not self._check(TokenType.EOF):
            statements.append(self._statement())
            if not self._match(TokenType.SEMICOLON):
                break
        if not self._check(TokenType.EOF):
            raise self._error("unexpected input after statement")
        return statements

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("EXPLAIN"):
            self._advance()
            # VERIFY is deliberately not a reserved keyword (it stays
            # usable as an identifier); EXPLAIN peeks for it by text.
            peeked = self._peek()
            if peeked.type is TokenType.IDENT and peeked.text == "verify":
                self._advance()
                return ast.Explain(self._statement(), verify=True)
            return ast.Explain(self._statement())
        if token.is_keyword("SELECT"):
            return self._query_expression()
        if token.is_keyword("CREATE"):
            return self._create()
        if token.is_keyword("INSERT"):
            return self._insert()
        if token.is_keyword("UPDATE"):
            return self._update()
        if token.is_keyword("DELETE"):
            return self._delete()
        if token.is_keyword("DROP"):
            return self._drop()
        if token.is_keyword("ALTER"):
            return self._alter()
        if token.is_keyword("SHOW"):
            return self._show()
        if token.is_keyword("KILL"):
            return self._kill()
        raise self._error(f"cannot parse statement starting with {token.text!r}")

    # ------------------------ administration -------------------------
    def _show(self) -> ast.ShowQueries:
        self._expect_keyword("SHOW")
        # QUERIES is deliberately not a reserved keyword (it stays
        # usable as an identifier); SHOW peeks for it by text.
        token = self._peek()
        if token.type is TokenType.IDENT and token.text.lower() == "queries":
            self._advance()
            return ast.ShowQueries()
        raise self._error("expected QUERIES after SHOW")

    def _kill(self) -> ast.KillQuery:
        self._expect_keyword("KILL")
        token = self._peek()
        if token.type is not TokenType.INTEGER:
            raise self._error("expected a query id after KILL")
        self._advance()
        return ast.KillQuery(int(token.value))

    # ------------------------------ DDL ------------------------------
    def _create(self) -> ast.Statement:
        self._expect_keyword("CREATE")
        if self._match_keyword("TABLE"):
            return self._create_table()
        if self._match_keyword("ARRAY"):
            return self._create_array()
        raise self._error("expected TABLE or ARRAY after CREATE")

    def _if_not_exists(self) -> bool:
        if self._match_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            return True
        return False

    def _create_table(self) -> ast.CreateTable:
        if_not_exists = self._if_not_exists()
        name = self._expect_ident()
        self._expect(TokenType.LPAREN)
        columns: list[ast.ColumnSpec] = []
        while True:
            if self._match_keyword("PRIMARY"):
                # PRIMARY KEY (...) — accepted and ignored (tables keep
                # bag semantics; dimension columns carry the key role
                # for arrays).
                self._expect_keyword("KEY")
                self._expect(TokenType.LPAREN)
                self._expect_ident()
                while self._match(TokenType.COMMA):
                    self._expect_ident()
                self._expect(TokenType.RPAREN)
            else:
                columns.append(self._column_spec(allow_dimension=False))
            if not self._match(TokenType.COMMA):
                break
        self._expect(TokenType.RPAREN)
        return ast.CreateTable(name, tuple(columns), if_not_exists)

    def _create_array(self) -> ast.CreateArray:
        if_not_exists = self._if_not_exists()
        name = self._expect_ident()
        self._expect(TokenType.LPAREN)
        elements = [self._column_spec(allow_dimension=True)]
        while self._match(TokenType.COMMA):
            elements.append(self._column_spec(allow_dimension=True))
        self._expect(TokenType.RPAREN)
        return ast.CreateArray(name, tuple(elements), if_not_exists)

    def _column_spec(self, allow_dimension: bool) -> ast.ColumnSpec:
        name = self._expect_ident()
        type_name = self._type_name()
        is_dimension = False
        dimension_range = None
        default = None
        has_default = False
        while True:
            if allow_dimension and self._match_keyword("DIMENSION"):
                is_dimension = True
                if self._match(TokenType.LBRACKET):
                    dimension_range = self._dimension_range_body()
            elif self._match_keyword("DEFAULT"):
                default = self._expression()
                has_default = True
            elif self._match_keyword("NOT"):
                self._expect_keyword("NULL")  # accepted, not enforced
            else:
                break
        return ast.ColumnSpec(
            name, type_name, is_dimension, dimension_range, default, has_default
        )

    def _type_name(self) -> str:
        token = self._peek()
        if token.type in (TokenType.IDENT, TokenType.KEYWORD):
            self._advance()
            type_name = token.text.upper()
        else:
            raise self._error("expected a type name")
        if self._match(TokenType.LPAREN):  # VARCHAR(32), DECIMAL(10,2), ...
            self._expect(TokenType.INTEGER)
            if self._match(TokenType.COMMA):
                self._expect(TokenType.INTEGER)
            self._expect(TokenType.RPAREN)
        return type_name

    def _dimension_range_body(self) -> ast.DimensionRange:
        """Parses ``start : step : stop ]`` (the ``[`` is consumed)."""
        start = self._expression()
        self._expect(TokenType.COLON)
        step = self._expression()
        self._expect(TokenType.COLON)
        stop = self._expression()
        self._expect(TokenType.RBRACKET)
        return ast.DimensionRange(start, step, stop)

    def _drop(self) -> ast.DropObject:
        self._expect_keyword("DROP")
        if self._match_keyword("TABLE"):
            kind = "table"
        elif self._match_keyword("ARRAY"):
            kind = "array"
        else:
            raise self._error("expected TABLE or ARRAY after DROP")
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_ident()
        return ast.DropObject(name, kind, if_exists)

    def _alter(self) -> ast.AlterArrayDimension:
        self._expect_keyword("ALTER")
        self._expect_keyword("ARRAY")
        array = self._expect_ident()
        self._expect_keyword("ALTER")
        self._expect_keyword("DIMENSION")
        dimension = self._expect_ident()
        self._expect_keyword("SET")
        self._expect_keyword("RANGE")
        self._expect(TokenType.LBRACKET)
        dimension_range = self._dimension_range_body()
        return ast.AlterArrayDimension(array, dimension, dimension_range)

    # ------------------------------ DML ------------------------------
    def _insert(self) -> ast.Statement:
        self._expect_keyword("INSERT")
        self._expect_keyword("INTO")
        table = self._expect_ident()
        columns: tuple[str, ...] = ()
        if self._check(TokenType.LPAREN) and not self._peek(1).is_keyword("SELECT"):
            self._expect(TokenType.LPAREN)
            names = [self._expect_ident()]
            while self._match(TokenType.COMMA):
                names.append(self._expect_ident())
            self._expect(TokenType.RPAREN)
            columns = tuple(names)
        if self._match_keyword("VALUES"):
            rows = [self._value_row()]
            while self._match(TokenType.COMMA):
                rows.append(self._value_row())
            return ast.InsertValues(table, columns, tuple(rows))
        if self._check(TokenType.LPAREN):
            self._expect(TokenType.LPAREN)
            query = self._select()
            self._expect(TokenType.RPAREN)
            return ast.InsertSelect(table, columns, query)
        if self._check_keyword("SELECT"):
            return ast.InsertSelect(table, columns, self._select())
        raise self._error("expected VALUES or SELECT in INSERT")

    def _value_row(self) -> tuple[ast.Expression, ...]:
        self._expect(TokenType.LPAREN)
        values = [self._expression()]
        while self._match(TokenType.COMMA):
            values.append(self._expression())
        self._expect(TokenType.RPAREN)
        return tuple(values)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = [self._assignment()]
        while self._match(TokenType.COMMA):
            assignments.append(self._assignment())
        where = self._expression() if self._match_keyword("WHERE") else None
        return ast.Update(table, tuple(assignments), where)

    def _assignment(self) -> tuple[str, ast.Expression]:
        column = self._expect_ident()
        self._expect(TokenType.OPERATOR, "=")
        return column, self._expression()

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE")
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._expression() if self._match_keyword("WHERE") else None
        return ast.Delete(table, where)

    # ----------------------------- SELECT ----------------------------
    def _query_expression(self) -> ast.Statement:
        """A SELECT block optionally chained with UNION/EXCEPT/INTERSECT."""
        query: ast.Statement = self._select()
        while True:
            if self._match_keyword("UNION"):
                op = "union"
            elif self._match_keyword("EXCEPT"):
                op = "except"
            elif self._match_keyword("INTERSECT"):
                op = "intersect"
            else:
                return query
            keep_all = bool(self._match_keyword("ALL"))
            if keep_all and op != "union":
                raise self._error(f"{op.upper()} ALL is not supported")
            right = self._select()
            query = ast.SetOperation(op, keep_all, query, right)

    def _select(self) -> ast.SelectStatement:
        self._expect_keyword("SELECT")
        distinct = bool(self._match_keyword("DISTINCT"))
        items = [self._select_item()]
        while self._match(TokenType.COMMA):
            items.append(self._select_item())

        sources: list[ast.TableSource] = []
        if self._match_keyword("FROM"):
            sources.append(self._table_source())
            while self._match(TokenType.COMMA):
                sources.append(self._table_source())

        where = self._expression() if self._match_keyword("WHERE") else None

        group_by = None
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by = self._group_by()

        having = self._expression() if self._match_keyword("HAVING") else None

        order_by: list[ast.OrderItem] = []
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._order_item())
            while self._match(TokenType.COMMA):
                order_by.append(self._order_item())

        limit = None
        offset = None
        if self._match_keyword("LIMIT"):
            limit = int(self._expect(TokenType.INTEGER).value)
        if self._match_keyword("OFFSET"):
            offset = int(self._expect(TokenType.INTEGER).value)

        return ast.SelectStatement(
            tuple(items),
            tuple(sources),
            where,
            group_by,
            having,
            tuple(order_by),
            limit,
            offset,
            distinct,
        )

    def _select_item(self) -> ast.SelectItem:
        if self._match(TokenType.LBRACKET):
            # SciQL dimension qualifier: [expr]
            expression = self._expression()
            self._expect(TokenType.RBRACKET)
            return ast.SelectItem(expression, self._alias(), dimension=True)
        if self._check(TokenType.STAR):
            self._advance()
            return ast.SelectItem(ast.Star())
        if (
            self._check(TokenType.IDENT)
            and self._peek(1).type is TokenType.DOT
            and self._peek(2).type is TokenType.STAR
        ):
            qualifier = self._advance().text
            self._advance()  # .
            self._advance()  # *
            return ast.SelectItem(ast.Star(qualifier))
        expression = self._expression()
        return ast.SelectItem(expression, self._alias())

    def _alias(self) -> str | None:
        if self._match_keyword("AS"):
            return self._expect_ident()
        if self._check(TokenType.IDENT):
            return self._advance().text
        return None

    def _table_source(self) -> ast.TableSource:
        source = self._primary_source()
        while True:
            if self._match_keyword("CROSS"):
                self._expect_keyword("JOIN")
                right = self._primary_source()
                source = ast.JoinSource(source, right, "cross")
            elif self._check_keyword("INNER", "JOIN", "LEFT"):
                kind = "inner"
                if self._match_keyword("LEFT"):
                    self._match_keyword("OUTER")
                    kind = "left"
                else:
                    self._match_keyword("INNER")
                self._expect_keyword("JOIN")
                right = self._primary_source()
                self._expect_keyword("ON")
                condition = self._expression()
                source = ast.JoinSource(source, right, kind, condition)
            else:
                return source

    def _primary_source(self) -> ast.TableSource:
        if self._match(TokenType.LPAREN):
            query = self._query_expression()
            self._expect(TokenType.RPAREN)
            self._match_keyword("AS")
            alias = self._expect_ident()
            return ast.SubquerySource(query, alias)
        name = self._expect_ident()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_ident()
        elif self._check(TokenType.IDENT):
            alias = self._advance().text
        return ast.NamedSource(name, alias)

    def _group_by(self) -> ast.GroupBy:
        if self._check(TokenType.IDENT) and self._peek(1).type is TokenType.LBRACKET:
            return self._tile_group_by()
        expressions = [self._expression()]
        while self._match(TokenType.COMMA):
            expressions.append(self._expression())
        return ast.ValueGroupBy(tuple(expressions))

    def _tile_group_by(self) -> ast.TileGroupBy:
        array = self._expect_ident()
        dimensions: list[ast.TileDimension] = []
        while self._match(TokenType.LBRACKET):
            low = self._expression()
            high = None
            if self._match(TokenType.COLON):
                high = self._expression()
            self._expect(TokenType.RBRACKET)
            dimensions.append(ast.TileDimension(low, high))
        if not dimensions:
            raise self._error("structural GROUP BY needs at least one [..] group")
        return ast.TileGroupBy(array, tuple(dimensions))

    def _order_item(self) -> ast.OrderItem:
        expression = self._expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        else:
            self._match_keyword("ASC")
        return ast.OrderItem(expression, descending)

    # --------------------------- expressions -------------------------
    def _expression(self) -> ast.Expression:
        return self._or_expression()

    def _or_expression(self) -> ast.Expression:
        left = self._and_expression()
        while self._match_keyword("OR"):
            right = self._and_expression()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _and_expression(self) -> ast.Expression:
        left = self._not_expression()
        while self._match_keyword("AND"):
            right = self._not_expression()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _not_expression(self) -> ast.Expression:
        if self._match_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expression())
        return self._comparison()

    def _comparison(self) -> ast.Expression:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in _COMPARISON_OPS:
            self._advance()
            right = self._additive()
            return ast.BinaryOp(token.text, left, right)
        if self._match_keyword("IS"):
            negated = bool(self._match_keyword("NOT"))
            self._expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = bool(self._match_keyword("NOT"))
        if self._match_keyword("IN"):
            self._expect(TokenType.LPAREN)
            items = [self._expression()]
            while self._match(TokenType.COMMA):
                items.append(self._expression())
            self._expect(TokenType.RPAREN)
            return ast.InList(left, tuple(items), negated)
        if self._match_keyword("BETWEEN"):
            low = self._additive()
            self._expect_keyword("AND")
            high = self._additive()
            return ast.Between(left, low, high, negated)
        if self._match_keyword("LIKE"):
            pattern = self._additive()
            like = ast.FunctionCall("like", (left, pattern))
            return ast.UnaryOp("NOT", like) if negated else like
        if negated:
            raise self._error("expected IN, BETWEEN or LIKE after NOT")
        return left

    def _additive(self) -> ast.Expression:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.type is TokenType.OPERATOR and token.text in ("+", "-", "||"):
                self._advance()
                right = self._multiplicative()
                left = ast.BinaryOp(token.text, left, right)
            else:
                return left

    def _multiplicative(self) -> ast.Expression:
        left = self._unary()
        while True:
            token = self._peek()
            if token.type is TokenType.STAR:
                self._advance()
                left = ast.BinaryOp("*", left, self._unary())
            elif token.type is TokenType.OPERATOR and token.text in ("/", "%"):
                self._advance()
                left = ast.BinaryOp(token.text, left, self._unary())
            elif token.is_keyword("MOD"):
                self._advance()
                left = ast.BinaryOp("%", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.text in ("-", "+"):
            self._advance()
            operand = self._unary()
            if token.text == "-":
                if isinstance(operand, ast.Literal) and isinstance(
                    operand.value, (int, float)
                ):
                    return ast.Literal(-operand.value)
                return ast.UnaryOp("-", operand)
            return operand
        return self._primary()

    def _primary(self) -> ast.Expression:
        token = self._peek()
        if token.type is TokenType.INTEGER or token.type is TokenType.FLOAT:
            self._advance()
            return ast.Literal(token.value)
        if token.type is TokenType.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.is_keyword("TRUE"):
            self._advance()
            return ast.Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return ast.Literal(False)
        if token.is_keyword("NULL"):
            self._advance()
            return ast.Literal(None)
        if token.is_keyword("CASE"):
            return self._case()
        if token.is_keyword("CAST"):
            return self._cast()
        if token.type is TokenType.PARAM:
            self._advance()
            return self._placeholder(None)
        if token.type is TokenType.COLON and self._peek(1).type is TokenType.IDENT:
            # A leading ``:`` can only be a named parameter here: range
            # and tile separators consume their ``:`` before recursing
            # into expression parsing.
            self._advance()
            return self._placeholder(self._advance().text)
        if token.type is TokenType.LPAREN:
            self._advance()
            expression = self._expression()
            self._expect(TokenType.RPAREN)
            return expression
        if token.type is TokenType.IDENT:
            return self._identifier_expression()
        raise self._error(f"unexpected token {token.text!r} in expression")

    def _placeholder(self, name: str | None) -> ast.Placeholder:
        if name is None:
            if self._named:
                raise self._error("cannot mix ? and :name parameters")
            key: int | str = self._positional_count
            self._positional_count += 1
        else:
            if self._positional_count:
                raise self._error("cannot mix ? and :name parameters")
            self._named = True
            key = name
        self.parameters.append(key)
        return ast.Placeholder(key)

    def _case(self) -> ast.CaseExpression:
        self._expect_keyword("CASE")
        whens: list[tuple[ast.Expression, ast.Expression]] = []
        while self._match_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            value = self._expression()
            whens.append((condition, value))
        if not whens:
            raise self._error("CASE needs at least one WHEN branch")
        otherwise = self._expression() if self._match_keyword("ELSE") else None
        self._expect_keyword("END")
        return ast.CaseExpression(tuple(whens), otherwise)

    def _cast(self) -> ast.CastExpression:
        self._expect_keyword("CAST")
        self._expect(TokenType.LPAREN)
        operand = self._expression()
        self._expect_keyword("AS")
        type_name = self._type_name()
        self._expect(TokenType.RPAREN)
        return ast.CastExpression(operand, type_name)

    def _identifier_expression(self) -> ast.Expression:
        name = self._expect_ident()
        if self._check(TokenType.LPAREN):
            return self._function_call(name)
        if self._check(TokenType.LBRACKET):
            return self._cell_reference(name)
        if self._match(TokenType.DOT):
            attribute = self._expect_ident()
            return ast.ColumnRef(attribute, qualifier=name)
        return ast.ColumnRef(name)

    def _function_call(self, name: str) -> ast.FunctionCall:
        self._expect(TokenType.LPAREN)
        if self._check(TokenType.STAR):
            self._advance()
            self._expect(TokenType.RPAREN)
            return ast.FunctionCall(name.lower(), (), star=True)
        distinct = bool(self._match_keyword("DISTINCT"))
        args: list[ast.Expression] = []
        if not self._check(TokenType.RPAREN):
            args.append(self._expression())
            while self._match(TokenType.COMMA):
                args.append(self._expression())
        self._expect(TokenType.RPAREN)
        return ast.FunctionCall(name.lower(), tuple(args), distinct=distinct)

    def _cell_reference(self, array: str) -> ast.CellRef:
        indexes: list[ast.Expression] = []
        while self._match(TokenType.LBRACKET):
            indexes.append(self._expression())
            self._expect(TokenType.RBRACKET)
        attribute = None
        if self._match(TokenType.DOT):
            attribute = self._expect_ident()
        return ast.CellRef(array, tuple(indexes), attribute)


def parse(text: str) -> ast.Statement:
    """Parse one statement."""
    return Parser(text).parse_statement()


def parse_with_parameters(text: str) -> tuple[ast.Statement, tuple[int | str, ...]]:
    """Parse one statement, also returning its bind-parameter keys.

    The keys come back in occurrence order; named parameters may
    repeat (``:a + :a`` yields ``("a", "a")``).
    """
    parser = Parser(text)
    statement = parser.parse_statement()
    return statement, tuple(parser.parameters)


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a semicolon-separated script."""
    return Parser(text).parse_script()
