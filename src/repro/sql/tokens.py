"""Token definitions for the SQL/SciQL lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    OPERATOR = "operator"
    LPAREN = "("
    RPAREN = ")"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    DOT = "."
    COLON = ":"
    STAR = "*"
    PARAM = "?"
    EOF = "eof"


#: Reserved words (SQL:2003 subset + the SciQL extensions of the paper).
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT",
        "OFFSET", "ASC", "DESC", "AS", "AND", "OR", "NOT", "NULL", "IS", "IN",
        "BETWEEN", "LIKE", "CASE", "WHEN", "THEN", "ELSE", "END", "CREATE",
        "TABLE", "ARRAY", "DIMENSION", "DEFAULT", "INSERT", "INTO", "VALUES",
        "UPDATE", "SET", "DELETE", "DROP", "ALTER", "RANGE", "EXISTS", "IF",
        "DISTINCT", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER", "CROSS", "ON",
        "MOD", "CAST", "TRUE", "FALSE", "PRIMARY", "KEY",
        "UNION", "EXCEPT", "INTERSECT", "ALL", "EXPLAIN",
        "SHOW", "KILL",
    }
)

#: Multi-character operators, longest first so the lexer is greedy.
OPERATORS = ("<>", "<=", ">=", "!=", "||", "=", "<", ">", "+", "-", "/", "%")


@dataclass(frozen=True)
class Token:
    """One lexical unit with source position (1-based)."""

    type: TokenType
    text: str
    value: Any
    line: int
    column: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.text in names

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.name}, {self.text!r})"
