"""Abstract syntax tree of the SQL/SciQL dialect.

The node set covers the SQL:2003 subset plus every SciQL extension the
paper exercises:

* ``CREATE ARRAY`` with named dimensions and range constraints;
* dimension-qualified projection columns (``SELECT [x], [y], v``) that
  coerce the result into an array (Section 2, "Array and Table
  Coercions");
* structural grouping (``GROUP BY A[x:x+2][y:y+2]``);
* relative cell access in expressions (``A[x-1][y]``);
* ``ALTER ARRAY ... ALTER DIMENSION ... SET RANGE [a:b:c]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    """A constant: int, float, string, bool, or None (NULL)."""

    value: Any


@dataclass(frozen=True)
class Placeholder:
    """A bind-parameter marker: positional ``?`` or named ``:name``.

    ``key`` is the 0-based position for ``?`` markers (assigned in
    lexical order) or the identifier for ``:name`` markers.  The value
    arrives at execution time through the DB-API parameter binding.
    """

    key: Union[int, str]


@dataclass(frozen=True)
class ColumnRef:
    """``name`` or ``qualifier.name``."""

    name: str
    qualifier: Optional[str] = None


@dataclass(frozen=True)
class Star:
    """``*`` or ``qualifier.*`` in a projection list."""

    qualifier: Optional[str] = None


@dataclass(frozen=True)
class BinaryOp:
    """Infix operator application."""

    op: str  # +, -, *, /, %, ||, =, <>, <, <=, >, >=, AND, OR
    left: "Expression"
    right: "Expression"


@dataclass(frozen=True)
class UnaryOp:
    """Prefix operator: ``-``, ``+`` or ``NOT``."""

    op: str
    operand: "Expression"


@dataclass(frozen=True)
class FunctionCall:
    """Function or aggregate application.

    ``COUNT(*)`` is represented with ``star=True`` and empty args.
    """

    name: str
    args: tuple["Expression", ...]
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class CaseExpression:
    """Searched CASE: WHEN cond THEN value ... [ELSE value] END."""

    whens: tuple[tuple["Expression", "Expression"], ...]
    otherwise: Optional["Expression"] = None


@dataclass(frozen=True)
class IsNull:
    """``expr IS [NOT] NULL``."""

    operand: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    """``expr [NOT] IN (item, ...)``."""

    operand: "Expression"
    items: tuple["Expression", ...]
    negated: bool = False


@dataclass(frozen=True)
class Between:
    """``expr [NOT] BETWEEN low AND high``."""

    operand: "Expression"
    low: "Expression"
    high: "Expression"
    negated: bool = False


@dataclass(frozen=True)
class CellRef:
    """SciQL relative cell access: ``A[e1][e2]`` or ``A[e1][e2].attr``.

    Addresses the cell of array ``array`` at the coordinates given by
    the index expressions; without an explicit ``attribute`` the
    array's single cell attribute is meant.  Out-of-range coordinates
    yield NULL (cells outside the dimensions do not exist).
    """

    array: str
    indexes: tuple["Expression", ...]
    attribute: Optional[str] = None


@dataclass(frozen=True)
class CastExpression:
    """``CAST(expr AS type)``."""

    operand: "Expression"
    type_name: str


Expression = Union[
    Literal,
    Placeholder,
    ColumnRef,
    Star,
    BinaryOp,
    UnaryOp,
    FunctionCall,
    CaseExpression,
    IsNull,
    InList,
    Between,
    CellRef,
    CastExpression,
]


# ----------------------------------------------------------------------
# query structure
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SelectItem:
    """One projection item.

    ``dimension=True`` marks the SciQL qualifier ``[expr]``: the item
    becomes a dimension of the (array-valued) result.
    """

    expression: Expression
    alias: Optional[str] = None
    dimension: bool = False


@dataclass(frozen=True)
class NamedSource:
    """A base table/array in FROM, with optional alias."""

    name: str
    alias: Optional[str] = None


@dataclass(frozen=True)
class SubquerySource:
    """A parenthesised SELECT in FROM."""

    query: "SelectStatement"
    alias: str


@dataclass(frozen=True)
class JoinSource:
    """``left [INNER|LEFT] JOIN right ON condition`` (or CROSS JOIN)."""

    left: "TableSource"
    right: "TableSource"
    kind: str  # "inner" | "left" | "cross"
    condition: Optional[Expression] = None


TableSource = Union[NamedSource, SubquerySource, JoinSource]


@dataclass(frozen=True)
class TileDimension:
    """One bracket group of a structural GROUP BY.

    ``A[x:x+2]`` parses to anchor expression ``x`` with bounds
    ``(x, x+2)``; the single-cell form ``A[x]`` leaves ``high=None``.
    """

    low: Expression
    high: Optional[Expression] = None


@dataclass(frozen=True)
class TileGroupBy:
    """Structural grouping: ``GROUP BY name[...][...] ...``."""

    array: str
    dimensions: tuple[TileDimension, ...]


@dataclass(frozen=True)
class ValueGroupBy:
    """Classic value-based grouping."""

    expressions: tuple[Expression, ...]


GroupBy = Union[TileGroupBy, ValueGroupBy]


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expression: Expression
    descending: bool = False


@dataclass(frozen=True)
class SelectStatement:
    """A full query block."""

    items: tuple[SelectItem, ...]
    sources: tuple[TableSource, ...] = ()
    where: Optional[Expression] = None
    group_by: Optional[GroupBy] = None
    having: Optional[Expression] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class SetOperation:
    """``left UNION [ALL] right`` / EXCEPT / INTERSECT.

    EXCEPT and INTERSECT use SQL set semantics (duplicates removed;
    NULLs compare equal for membership).  UNION without ALL dedupes.
    """

    op: str  # "union" | "except" | "intersect"
    all: bool
    left: "QueryExpression"
    right: "QueryExpression"


QueryExpression = Union[SelectStatement, SetOperation]


# ----------------------------------------------------------------------
# DDL
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DimensionRange:
    """``[start:step:stop]`` with constant integer expressions."""

    start: Expression
    step: Expression
    stop: Expression


@dataclass(frozen=True)
class ColumnSpec:
    """One element of a CREATE TABLE/ARRAY definition list.

    ``dimension_range`` is set for ``<name> <type> DIMENSION[...]``
    elements; ``None`` range with ``is_dimension`` marks an unbounded
    dimension (rejected later for CREATE, used internally by
    coercions).
    """

    name: str
    type_name: str
    is_dimension: bool = False
    dimension_range: Optional[DimensionRange] = None
    default: Optional[Expression] = None
    has_default: bool = False


@dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnSpec, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateArray:
    name: str
    elements: tuple[ColumnSpec, ...]
    if_not_exists: bool = False


@dataclass(frozen=True)
class DropObject:
    name: str
    kind: str  # "table" | "array"
    if_exists: bool = False


@dataclass(frozen=True)
class AlterArrayDimension:
    """ALTER ARRAY name ALTER DIMENSION dim SET RANGE [a:b:c]."""

    array: str
    dimension: str
    range: DimensionRange


# ----------------------------------------------------------------------
# DML
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class InsertValues:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...]


@dataclass(frozen=True)
class InsertSelect:
    table: str
    columns: tuple[str, ...]
    query: SelectStatement


@dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Delete:
    table: str
    where: Optional[Expression] = None


@dataclass(frozen=True)
class Explain:
    """``EXPLAIN [VERIFY] <statement>`` — the optimized MAL program text.

    With ``verify`` the plan is additionally re-checked by the static
    analyzer after every optimizer pass (regardless of the
    ``REPRO_VERIFY_PLANS`` knob) and the listing gains a verification
    summary line; a broken plan raises ``PlanVerificationError``.
    """

    statement: "Statement"
    verify: bool = False


@dataclass(frozen=True)
class ShowQueries:
    """``SHOW QUERIES`` — one row per running statement on the engine.

    An administrative statement: it never compiles to MAL, it reads the
    database's query registry directly (qid, session, status, elapsed,
    rows, bytes, sql).
    """


@dataclass(frozen=True)
class KillQuery:
    """``KILL <qid>`` — cooperatively cancel a running statement.

    The victim aborts at its next instruction boundary with
    ``QueryCancelledError``; its session survives with any open
    transaction rolled back.
    """

    qid: int


Statement = Union[
    SelectStatement,
    SetOperation,
    Explain,
    ShowQueries,
    KillQuery,
    CreateTable,
    CreateArray,
    DropObject,
    AlterArrayDimension,
    InsertValues,
    InsertSelect,
    Update,
    Delete,
]
