"""The SQL/SciQL tokenizer.

Hand-written single-pass scanner.  SQL conventions honoured:

* keywords and identifiers are case-insensitive (keywords are upper-
  cased, identifiers lower-cased);
* ``"double quoted"`` identifiers preserve case;
* ``'string literals'`` with doubled-quote escaping;
* ``--`` line comments and ``/* ... */`` block comments;
* ``?`` yields a parameter-marker token (DB-API ``qmark`` binding);
  named ``:name`` markers are recognised by the parser from the
  ``:`` + identifier token pair, because a bare ``:`` must remain a
  separator inside SciQL range syntax (``[0:1:4]``, ``A[x:x+2]``).
"""

from __future__ import annotations

from repro.errors import LexerError
from repro.sql.tokens import KEYWORDS, OPERATORS, Token, TokenType

_SINGLE_CHAR = {
    "(": TokenType.LPAREN,
    ")": TokenType.RPAREN,
    "[": TokenType.LBRACKET,
    "]": TokenType.RBRACKET,
    ",": TokenType.COMMA,
    ";": TokenType.SEMICOLON,
    ".": TokenType.DOT,
    ":": TokenType.COLON,
    "*": TokenType.STAR,
    "?": TokenType.PARAM,
}


class Lexer:
    """Tokenizes one statement string."""

    def __init__(self, text: str):
        self.text = text
        self.position = 0
        self.line = 1
        self.column = 1

    def tokenize(self) -> list[Token]:
        """Produce all tokens, terminated by an EOF token."""
        tokens: list[Token] = []
        while True:
            self._skip_whitespace_and_comments()
            if self.position >= len(self.text):
                tokens.append(Token(TokenType.EOF, "", None, self.line, self.column))
                return tokens
            tokens.append(self._next_token())

    # ------------------------------------------------------------------
    def _peek(self, ahead: int = 0) -> str:
        index = self.position + ahead
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> str:
        out = self.text[self.position : self.position + count]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
        self.position += count
        return out

    def _skip_whitespace_and_comments(self) -> None:
        while self.position < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.position < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.position < len(self.text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexerError("unterminated block comment", self.line, self.column)
            else:
                return

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column)
        if ch.isalpha() or ch == "_":
            return self._word(line, column)
        if ch == "'":
            return self._string(line, column)
        if ch == '"':
            return self._quoted_identifier(line, column)
        for operator in OPERATORS:
            if self.text.startswith(operator, self.position):
                self._advance(len(operator))
                return Token(TokenType.OPERATOR, operator, operator, line, column)
        if ch in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[ch], ch, ch, line, column)
        raise LexerError(f"unexpected character {ch!r}", line, column)

    def _number(self, line: int, column: int) -> Token:
        start = self.position
        seen_dot = False
        seen_exp = False
        while self.position < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                # A dot not followed by a digit terminates the number
                # (e.g. ``3.v`` never occurs; ``A.x`` handles the dot).
                if not self._peek(1).isdigit():
                    break
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                seen_exp = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        text = self.text[start : self.position]
        if seen_dot or seen_exp:
            return Token(TokenType.FLOAT, text, float(text), line, column)
        return Token(TokenType.INTEGER, text, int(text), line, column)

    def _word(self, line: int, column: int) -> Token:
        start = self.position
        while self.position < len(self.text) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        text = self.text[start : self.position]
        upper = text.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, upper, line, column)
        return Token(TokenType.IDENT, text.lower(), text.lower(), line, column)

    def _string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        parts: list[str] = []
        while True:
            if self.position >= len(self.text):
                raise LexerError("unterminated string literal", line, column)
            ch = self._advance()
            if ch == "'":
                if self._peek() == "'":  # doubled quote escape
                    parts.append("'")
                    self._advance()
                else:
                    break
            else:
                parts.append(ch)
        value = "".join(parts)
        return Token(TokenType.STRING, value, value, line, column)

    def _quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        start = self.position
        while self.position < len(self.text) and self._peek() != '"':
            self._advance()
        if self.position >= len(self.text):
            raise LexerError("unterminated quoted identifier", line, column)
        text = self.text[start : self.position]
        self._advance()  # closing quote
        return Token(TokenType.IDENT, text, text, line, column)


def tokenize(text: str) -> list[Token]:
    """Convenience wrapper: tokenize *text*."""
    return Lexer(text).tokenize()
