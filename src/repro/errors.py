"""Exception hierarchy for the SciQL reproduction.

Every error raised by the library derives from :class:`SciQLError`, so
client code can catch one base class.  The hierarchy is layered to be
DB-API 2.0 (PEP 249) compliant: :data:`Error` is an alias of
:class:`SciQLError`, and the standard PEP 249 classes
(:class:`InterfaceError`, :class:`DatabaseError` and its children)
slot in between the base class and the pipeline-specific errors.  The
pipeline errors mirror the stages of the MonetDB/SciQL pipeline:
lexing/parsing, semantic analysis, catalog manipulation, MAL
interpretation and kernel (GDK) execution — each derives from the
PEP 249 class a database driver would use for that failure mode, so
both ``except repro.ProgrammingError`` and ``except repro.ParseError``
work.
"""

from __future__ import annotations


class SciQLError(Exception):
    """Base class for all errors raised by this library (PEP 249 ``Error``)."""


#: PEP 249 name for the base error class.
Error = SciQLError


class Warning(Exception):  # noqa: A001 - PEP 249 mandates the name
    """PEP 249 ``Warning``: important non-fatal notices (unused today)."""


# ----------------------------------------------------------------------
# PEP 249 layer
# ----------------------------------------------------------------------
class InterfaceError(SciQLError):
    """Misuse of the database interface itself (closed cursor, ...)."""


class DatabaseError(SciQLError):
    """Base class for errors related to the database."""


class DataError(DatabaseError):
    """Problems with the processed data (bad coercion, bad coordinates)."""


class OperationalError(DatabaseError):
    """Errors related to the database's operation (I/O, interpretation)."""


class IntegrityError(DatabaseError):
    """Relational integrity violations (unused: tables keep bag semantics)."""


class InternalError(DatabaseError):
    """The database hit an internal inconsistency (kernel-level errors)."""


class ProgrammingError(DatabaseError):
    """Errors in the submitted SQL or its bind parameters."""


class NotSupportedError(DatabaseError):
    """A requested feature the engine does not provide (e.g. rollback)."""


# ----------------------------------------------------------------------
# pipeline-stage errors
# ----------------------------------------------------------------------
class LexerError(ProgrammingError):
    """Raised when the tokenizer meets an unrecognisable character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(ProgrammingError):
    """Raised when the token stream does not match the SQL/SciQL grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class SemanticError(ProgrammingError):
    """Raised during name binding and type checking of a parsed statement."""


class CatalogError(ProgrammingError):
    """Raised on catalog violations: duplicate names, missing objects, ..."""


class TypeError_(ProgrammingError):
    """Raised when expression operands cannot be reconciled to one type."""


class MALError(OperationalError):
    """Raised by the MAL interpreter: unknown operation, arity mismatch."""


class GDKError(InternalError):
    """Raised by the column kernel on malformed operator input."""


class PlanVerificationError(InternalError):
    """A MAL plan failed static verification.

    Raised by the plan analyzer (``repro.mal.analysis``) when a program
    violates an op signature, SSA/def-before-use, the free-after-last-
    reader discipline, or a structural fragment invariant.  ``phase``
    names the optimizer pass (or ``"malgen"``) that produced the broken
    program; ``index``/``instruction`` pinpoint the offending line.
    """

    def __init__(
        self,
        message: str,
        phase: str = "plan",
        index: int = -1,
        instruction: str = "",
    ):
        detail = f"[{phase}] {message}"
        if index >= 0:
            detail += f" (instruction #{index}: {instruction})"
        super().__init__(detail)
        self.phase = phase
        self.index = index
        self.instruction = instruction


class DimensionError(DataError):
    """Raised for invalid dimension ranges or out-of-domain cell access."""


class CoercionError(DataError):
    """Raised when a table cannot be coerced into an array (or vice versa)."""


class NetworkError(OperationalError):
    """A network-level failure while talking to a repro server.

    Raised by the client driver when the TCP connection is refused,
    times out, or drops mid-conversation (the server rolls the session
    back in that case), and by the server when a client vanishes
    mid-statement.  Derives from :class:`OperationalError`, so generic
    PEP 249 retry logic applies unchanged.
    """


class ProtocolError(InterfaceError):
    """The wire conversation itself is broken.

    Raised when a frame fails its CRC32 check, is truncated, exceeds
    the frame-size bound, announces an unknown message type, or the
    handshake versions do not match.  Unlike :class:`NetworkError`
    this is never worth retrying on the same byte stream — the
    connection is out of sync and must be re-established.
    """


class QueryGovernanceError(OperationalError):
    """Base class for query-lifecycle aborts (cancel/deadline/budget).

    Raised cooperatively at an instruction boundary by the MAL
    interpreter when the statement's
    :class:`~repro.lifecycle.QueryContext` trips.  The session survives
    the abort: any open transaction is rolled back and the committed
    snapshot is untouched, so the next statement runs normally.
    """


class QueryCancelledError(QueryGovernanceError):
    """The statement was cancelled (``KILL <qid>``, ``kill_query`` or a
    remote CANCEL frame) before it completed."""


class QueryTimeoutError(QueryGovernanceError):
    """The statement exceeded its deadline (``statement_timeout`` /
    ``REPRO_STATEMENT_TIMEOUT_MS``)."""


class ResourceError(QueryGovernanceError):
    """The statement exceeded a resource budget.

    Today: the per-query memory budget (``REPRO_MEM_BUDGET_BYTES``),
    accounted from the bytes of every BAT an instruction materialises.
    """


class PersistenceError(OperationalError):
    """Raised when loading or saving a database farm directory fails."""


class CorruptionError(PersistenceError):
    """A stored file failed its checksum (or structural) verification.

    The damaged file is quarantined (renamed to ``<file>.corrupt``)
    before this is raised, so a retried load fails fast instead of
    silently returning garbage; the message names the file and the
    recovery options.
    """


class DurabilityWarning(UserWarning):
    """Durability was requested but cannot take effect.

    Emitted by ``connect(durable=True)`` / ``Database(durable=True)``
    when no farm *path* was given: an in-memory database has nowhere
    to log to, so the session proceeds **without** durability instead
    of silently pretending to have it.  Pass a path to make commits
    crash-safe.
    """


class RecoveryWarning(UserWarning):
    """Issued when opening a database required crash recovery.

    Emitted for graceful degradation the user should know about:
    a stranded ``.retired`` farm was adopted because the main farm
    directory vanished mid-swap, or a torn write-ahead-log tail (an
    unacknowledged in-flight commit) was truncated during replay.
    """
