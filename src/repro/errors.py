"""Exception hierarchy for the SciQL reproduction.

Every error raised by the library derives from :class:`SciQLError`, so
client code can catch one base class.  The sub-classes mirror the stages
of the MonetDB/SciQL pipeline: lexing/parsing, semantic analysis,
catalog manipulation, MAL interpretation and kernel (GDK) execution.
"""

from __future__ import annotations


class SciQLError(Exception):
    """Base class for all errors raised by this library."""


class LexerError(SciQLError):
    """Raised when the tokenizer meets an unrecognisable character sequence."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SciQLError):
    """Raised when the token stream does not match the SQL/SciQL grammar."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class SemanticError(SciQLError):
    """Raised during name binding and type checking of a parsed statement."""


class CatalogError(SciQLError):
    """Raised on catalog violations: duplicate names, missing objects, ..."""


class TypeError_(SciQLError):
    """Raised when expression operands cannot be reconciled to one type."""


class MALError(SciQLError):
    """Raised by the MAL interpreter: unknown operation, arity mismatch."""


class GDKError(SciQLError):
    """Raised by the column kernel on malformed operator input."""


class DimensionError(SciQLError):
    """Raised for invalid dimension ranges or out-of-domain cell access."""


class CoercionError(SciQLError):
    """Raised when a table cannot be coerced into an array (or vice versa)."""


class PersistenceError(SciQLError):
    """Raised when loading or saving a database farm directory fails."""
