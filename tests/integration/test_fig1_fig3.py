"""Exact reproduction of the paper's Figures 1 and 3 (experiments E1–E6).

Every assertion below matches a printed matrix or BAT in the paper;
grids are compared in (x, y) orientation (the paper draws y upward).
"""

import numpy as np
import pytest


def grid_yx(result):
    """Paper orientation: rows = y descending, columns = x ascending."""
    return np.flipud(result.grid().T)


class TestFigure1:
    def test_fig1a_creation(self, matrix_conn):
        """Figure 1(a): 4×4 matrix of zeros."""
        result = matrix_conn.execute("SELECT [x], [y], v FROM matrix")
        assert result.grid().tolist() == [[0] * 4] * 4

    def test_fig1b_guarded_update(self, matrix_conn):
        """Figure 1(b): CASE-guarded UPDATE over dimension variables."""
        matrix_conn.execute(
            "UPDATE matrix SET v = CASE WHEN x > y THEN x + y "
            "WHEN x < y THEN x - y ELSE 0 END"
        )
        result = matrix_conn.execute("SELECT [x], [y], v FROM matrix")
        assert grid_yx(result).tolist() == [
            [-3, -2, -1, 0],
            [-2, -1, 0, 5],
            [-1, 0, 3, 4],
            [0, 1, 2, 3],
        ]

    def test_fig1c_insert_and_delete(self, fig1c_conn):
        """Figure 1(c): INSERT overwrites x=y cells, DELETE punches x>y."""
        result = fig1c_conn.execute("SELECT [x], [y], v FROM matrix")
        expected = [
            [-3, -2, -1, 9],
            [-2, -1, 4, None],
            [-1, 1, None, None],
            [0, None, None, None],
        ]
        got = grid_yx(result)
        for row_got, row_expected in zip(got, expected):
            for value_got, value_expected in zip(row_got, row_expected):
                if value_expected is None:
                    assert np.isnan(value_got)
                else:
                    assert value_got == value_expected

    def test_fig1d_e_tiling(self, fig1c_conn):
        """Figure 1(d)/(e): 2×2 tiling with AVG and anchor filter."""
        result = fig1c_conn.execute(
            "SELECT [x], [y], AVG(v) FROM matrix "
            "GROUP BY matrix[x:x+2][y:y+2] "
            "HAVING x MOD 2 = 1 AND y MOD 2 = 1"
        )
        grid = result.grid()  # (x, y)
        assert grid[1, 3] == pytest.approx(-1.5)
        assert grid[3, 3] == pytest.approx(9.0)
        assert grid[1, 1] == pytest.approx(4 / 3)
        assert np.isnan(grid[3, 1])  # all-holes tile
        # every non-anchor cell is null
        nulls = np.isnan(grid)
        assert nulls.sum() == 13

    def test_fig1f_dimension_expansion(self, fig1c_conn):
        """Figure 1(f): expanding both dimensions by 1 in all directions."""
        fig1c_conn.execute("ALTER ARRAY matrix ALTER DIMENSION x SET RANGE [-1:1:5]")
        fig1c_conn.execute("ALTER ARRAY matrix ALTER DIMENSION y SET RANGE [-1:1:5]")
        result = fig1c_conn.execute("SELECT [x], [y], v FROM matrix")
        grid = result.grid()
        assert grid.shape == (6, 6)
        # border cells take the DEFAULT 0
        assert grid[0, :].tolist() == [0.0] * 6
        assert grid[:, 0].tolist() == [0.0] * 6
        assert grid[5, :].tolist() == [0.0] * 6
        assert grid[:, 5].tolist() == [0.0] * 6
        # the interior is the Figure 1(c) state shifted by (1, 1)
        assert grid[1, 1] == 0  # old (0,0)
        assert grid[4, 4] == 9  # old (3,3)
        assert np.isnan(grid[4, 1])  # old (3,0) hole survives


class TestFigure3:
    """The storage layout: one BAT per dimension/attribute."""

    def test_bat_contents(self, matrix_conn):
        array = matrix_conn.catalog.get_array("matrix")
        assert array.bind("x").tail_pylist() == [
            0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3,
        ]
        assert array.bind("y").tail_pylist() == [
            0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3, 0, 1, 2, 3,
        ]
        assert array.bind("v").tail_pylist() == [0] * 16

    def test_heads_are_dense_voids(self, matrix_conn):
        array = matrix_conn.catalog.get_array("matrix")
        for column in ("x", "y", "v"):
            bat = array.bind(column)
            assert bat.hseqbase == 0
            assert bat.head_oids().tolist() == list(range(16))

    def test_series_parameters_match_paper(self, matrix_conn):
        """x := array.series(0,1,4, 4,1); y := array.series(0,1,4, 1,4)."""
        array = matrix_conn.catalog.get_array("matrix")
        assert array.series_parameters(0) == (4, 1)
        assert array.series_parameters(1) == (1, 4)

    def test_table_view_matches_buns(self, matrix_conn):
        """SELECT x,y,v must enumerate the BATs' aligned BUNs."""
        result = matrix_conn.execute("SELECT x, y, v FROM matrix")
        array = matrix_conn.catalog.get_array("matrix")
        expected = list(
            zip(
                array.bind("x").tail_pylist(),
                array.bind("y").tail_pylist(),
                array.bind("v").tail_pylist(),
            )
        )
        assert result.rows() == expected
