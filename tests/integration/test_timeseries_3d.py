"""Sequence semantics (SensorLog) and 3-D array integration tests."""

import numpy as np
import pytest

import repro
from repro.apps import timeseries as ts
from repro.core import ArrayHandle


@pytest.fixture
def signal():
    out = ts.synthetic_signal(96, hole_fraction=0.08)
    # Inject spikes explicitly so random dropout cannot erase them.
    out[30] = 25.0
    out[60] = 25.0
    return out


@pytest.fixture
def log(conn, signal):
    return ts.SensorLog.from_numpy(conn, "sensor", signal)


class TestSensorLog:
    def test_roundtrip_with_holes(self, log, signal):
        assert np.allclose(log.to_numpy(), signal, equal_nan=True)

    def test_moving_average(self, log, signal):
        assert np.allclose(
            log.moving_average(5),
            ts.reference_moving_average(signal, 5),
            equal_nan=True,
        )

    def test_moving_min_max_bracket_mean(self, log, signal):
        minimum = log.moving("min", 2, 2)
        maximum = log.moving("max", 2, 2)
        average = log.moving("avg", 2, 2)
        valid = ~np.isnan(average)
        assert (minimum[valid] <= average[valid] + 1e-9).all()
        assert (average[valid] <= maximum[valid] + 1e-9).all()

    def test_trailing_sum(self, log, signal):
        trailing = log.trailing_sum(3)
        t = 10
        chunk = signal[t - 2 : t + 1]
        assert trailing[t] == pytest.approx(np.nansum(chunk))

    def test_difference(self, log, signal):
        assert np.allclose(
            log.difference(), ts.reference_difference(signal), equal_nan=True
        )

    def test_downsample(self, log, signal):
        assert np.allclose(
            log.downsample(4), ts.reference_downsample(signal, 4), equal_nan=True
        )

    def test_anomaly_detection_finds_spikes(self, log):
        anomalies = [t for t, _ in log.anomalies(window=9, threshold=3.0)]
        assert 30 in anomalies and 60 in anomalies

    def test_interpolation_fills_all_holes(self, log, signal):
        holes = int(np.isnan(signal).sum())
        assert holes > 0
        assert log.interpolate_holes(5) == holes
        assert not np.isnan(log.to_numpy()).any()

    def test_interpolation_preserves_real_samples(self, log, signal):
        log.interpolate_holes(5)
        out = log.to_numpy()
        real = ~np.isnan(signal)
        assert np.allclose(out[real], signal[real])

    def test_record_overwrites(self, conn):
        log = ts.SensorLog(conn, "s2", 4)
        log.record(2, 7.5)
        assert log.to_numpy()[2] == 7.5

    def test_drop_below_punches_holes(self, log, signal):
        threshold = float(np.nanpercentile(signal, 20))
        dropped = log.drop_below(threshold)
        assert dropped == int((signal < threshold).sum())

    def test_even_window_rejected(self, log):
        with pytest.raises(Exception):
            log.moving_average(4)


class TestThreeDimensionalArrays:
    """A stack of frames: x × y × t volume queries."""

    @pytest.fixture
    def volume(self, conn):
        data = np.arange(3 * 4 * 5).reshape(3, 4, 5).astype(np.int64)
        conn.execute(
            "CREATE ARRAY vol (x INT DIMENSION[0:1:3], y INT DIMENSION[0:1:4], "
            "t INT DIMENSION[0:1:5], v INT)"
        )
        handle = ArrayHandle(conn, "vol")
        from repro.gdk.atoms import Atom
        from repro.gdk.column import Column

        conn.catalog.get_array("vol").replace_values(
            "v", np.arange(60, dtype=np.int64), Column(Atom.INT, data.reshape(-1))
        )
        return conn, data

    def test_storage_order_x_major(self, volume):
        conn, data = volume
        array = conn.catalog.get_array("vol")
        assert array.series_parameters(0) == (20, 1)
        assert array.series_parameters(1) == (5, 3)
        assert array.series_parameters(2) == (1, 12)
        assert np.array_equal(array.grid("v"), data)

    def test_3d_tiling(self, volume):
        conn, data = volume
        result = conn.execute(
            "SELECT [x], [y], [t], SUM(v) FROM vol "
            "GROUP BY vol[x:x+2][y:y+2][t:t+2]"
        )
        grid = result.grid()
        assert grid[0, 0, 0] == data[0:2, 0:2, 0:2].sum()
        assert grid[2, 3, 4] == data[2, 3, 4]  # corner anchor

    def test_temporal_slab_selection(self, volume):
        conn, data = volume
        result = conn.execute(
            "SELECT [x], [y], v FROM vol WHERE t = 2"
        )
        assert np.array_equal(result.grid(), data[:, :, 2])

    def test_3d_cell_reference(self, volume):
        conn, data = volume
        result = conn.execute(
            "SELECT [x], [y], [t], v - vol[x][y][t-1] FROM vol"
        )
        grid = result.grid()
        assert np.isnan(grid[:, :, 0]).all()
        assert np.array_equal(grid[:, :, 1:], data[:, :, 1:] - data[:, :, :-1])

    def test_aggregate_over_one_axis(self, volume):
        """Collapse time: per-pixel mean over all frames via value GROUP BY."""
        conn, data = volume
        result = conn.execute(
            "SELECT [x], [y], AVG(v) FROM vol GROUP BY x, y"
        )
        assert np.allclose(result.grid(), data.mean(axis=2))

    def test_alter_3d_dimension(self, volume):
        conn, data = volume
        conn.execute("ALTER ARRAY vol ALTER DIMENSION t SET RANGE [0:1:7]")
        array = conn.catalog.get_array("vol")
        assert array.shape() == (3, 4, 7)
        assert np.array_equal(array.grid("v")[:, :, :5], data)
        assert np.isnan(array.grid("v")[:, :, 5:]).all()
