"""Scenario I and II integration tests (experiments E7–E10)."""

import numpy as np
import pytest

import repro
from repro.apps import imaging, rasters
from repro.apps.blob_baseline import BlobImageStore
from repro.apps.life import (
    GameOfLife,
    SQLGameOfLife,
    numpy_life_step,
    place_pattern,
)


class TestGameOfLifeSciQL:
    def test_blinker_oscillates(self, conn):
        game = GameOfLife(conn, 5, 5)
        place_pattern(game, "blinker", (1, 2))
        before = game.board()
        game.step()
        assert not np.array_equal(game.board(), before)
        game.step()
        assert np.array_equal(game.board(), before)

    def test_block_is_still_life(self, conn):
        game = GameOfLife(conn, 6, 6)
        place_pattern(game, "block", (2, 2))
        before = game.board()
        game.run(3)
        assert np.array_equal(game.board(), before)

    def test_glider_moves(self, conn):
        game = GameOfLife(conn, 10, 10)
        place_pattern(game, "glider", (1, 1))
        game.run(4)  # a glider translates by (1,1) every 4 generations
        expected = np.zeros((10, 10), dtype=np.int64)
        for dx, dy in ((1, 0), (2, 1), (0, 2), (1, 2), (2, 2)):
            expected[1 + dx + 1, 1 + dy + 1] = 1
        assert np.array_equal(game.board(), expected)

    def test_matches_numpy_reference(self, conn):
        game = GameOfLife(conn, 12, 12)
        game.seed_random(density=0.4, seed=3)
        reference = game.board()
        for _ in range(6):
            game.step()
            reference = numpy_life_step(reference)
            assert np.array_equal(game.board(), reference)

    def test_population_query(self, conn):
        game = GameOfLife(conn, 5, 5)
        place_pattern(game, "block", (1, 1))
        assert game.population() == 4

    def test_clear(self, conn):
        game = GameOfLife(conn, 5, 5)
        place_pattern(game, "block", (1, 1))
        game.clear()
        assert game.population() == 0

    def test_resize_keeps_cells(self, conn):
        game = GameOfLife(conn, 5, 5)
        place_pattern(game, "block", (1, 1))
        game.resize(8, 8)
        assert game.population() == 4
        assert game.board().shape == (8, 8)

    def test_render(self, conn):
        game = GameOfLife(conn, 4, 4)
        game.seed([(0, 0)])
        art = game.render()
        assert art.splitlines()[-1][0] == "#"

    def test_larger_than_life_matches_reference(self, conn):
        rule = dict(radius=2, birth=(7, 11), survive=(5, 13))
        game = GameOfLife(conn, 14, 14, **rule)
        game.seed_random(density=0.4, seed=3)
        board = game.board()
        for _ in range(3):
            board = numpy_life_step(board, **rule)
            game.step()
            assert np.array_equal(game.board(), board)

    def test_larger_than_life_radius_needs_bigger_board(self, conn):
        with pytest.raises(Exception):
            GameOfLife(conn, 4, 4, radius=2)

    def test_board_too_small_rejected(self, conn):
        with pytest.raises(Exception):
            GameOfLife(conn, 2, 2)


class TestGameOfLifeSQLBaseline:
    def test_agrees_with_sciql(self, conn):
        sciql = GameOfLife(conn, 7, 7)
        sql = SQLGameOfLife(conn, 7, 7)
        for game in (sciql, sql):
            place_pattern(game, "toad", (1, 2))
        for _ in range(3):
            sciql.step()
            sql.step()
            assert np.array_equal(sciql.board(), sql.board())

    def test_population(self, conn):
        sql = SQLGameOfLife(conn, 5, 5)
        place_pattern(sql, "block", (1, 1))
        assert sql.population() == 4


class TestImagingScenario:
    @pytest.fixture
    def building(self, conn):
        image = rasters.building_image(24)
        imaging.load_image(conn, "building", image)
        return conn, image

    def test_load_roundtrip(self, building):
        conn, image = building
        assert np.array_equal(imaging.fetch_image(conn, "building"), image)

    def test_invert(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        out = imaging.result_to_image(processor.invert())
        assert np.array_equal(out, imaging.reference_invert(image))

    def test_edge_detect(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        out = imaging.result_to_image(processor.edge_detect())
        assert np.array_equal(out, imaging.reference_edge_detect(image))

    def test_smooth(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert np.allclose(processor.smooth().grid(), imaging.reference_smooth(image))

    def test_smooth_large_radius(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert np.allclose(
            processor.smooth(5).grid(), imaging.reference_smooth(image, 5)
        )

    def test_erode_dilate(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert np.array_equal(
            imaging.result_to_image(processor.erode(2)),
            imaging.reference_erode(image, 2),
        )
        assert np.array_equal(
            imaging.result_to_image(processor.dilate(3)),
            imaging.reference_dilate(image, 3),
        )

    def test_dilate_of_erode_is_opening(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        eroded = imaging.result_to_image(processor.erode(1))
        conn.execute("DROP ARRAY IF EXISTS opened")
        imaging.load_image(conn, "opened", eroded)
        opened = imaging.result_to_image(
            imaging.ImageProcessor(conn, "opened").dilate(1)
        )
        # morphological opening never brightens a pixel
        assert (opened <= imaging.reference_dilate(eroded, 1)).all()
        assert (eroded <= image).all()

    def test_reduce_resolution(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert np.allclose(
            processor.reduce_resolution(2).grid(), imaging.reference_reduce(image, 2)
        )

    def test_reduce_resolution_factor_3(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert np.allclose(
            processor.reduce_resolution(3).grid(), imaging.reference_reduce(image, 3)
        )

    def test_rotate(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        out = imaging.result_to_image(processor.rotate())
        assert np.array_equal(out, image[::-1, :])

    def test_histogram(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        assert processor.histogram() == imaging.reference_histogram(image)

    def test_zoom(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        out = imaging.result_to_image(processor.zoom(2, 3, 10, 11))
        assert np.array_equal(out, image[2:10, 3:11])

    def test_brighten_clips(self, building):
        conn, image = building
        processor = imaging.ImageProcessor(conn, "building")
        out = imaging.result_to_image(processor.brighten(200))
        assert out.max() == 255
        assert np.array_equal(out, imaging.reference_brighten(image, 200))

    def test_water_filter(self, conn):
        image = rasters.remote_sensing_image(24)
        imaging.load_image(conn, "earth", image)
        processor = imaging.ImageProcessor(conn, "earth")
        water = processor.filter_water(48).grid()
        assert np.array_equal(np.isnan(water), image >= 48)
        assert (image < 48).any()  # the river exists

    def test_remove_water_punches_holes(self, conn):
        image = rasters.remote_sensing_image(24)
        imaging.load_image(conn, "earth", image)
        processor = imaging.ImageProcessor(conn, "earth")
        affected = processor.remove_water(48)
        assert affected == int((image < 48).sum())
        remaining = conn.execute("SELECT COUNT(v) FROM earth").scalar()
        assert remaining == int((image >= 48).sum())

    def test_areas_of_interest_mask(self, conn):
        image = rasters.remote_sensing_image(24)
        imaging.load_image(conn, "earth", image)
        mask = np.zeros((24, 24), dtype=np.int64)
        mask[4:10, 4:10] = 1
        imaging.create_mask(conn, "mask1", mask)
        processor = imaging.ImageProcessor(conn, "earth")
        out = processor.areas_of_interest_mask("mask1").grid()
        assert np.array_equal(np.isnan(out), mask == 0)

    def test_areas_of_interest_boxes(self, conn):
        image = rasters.remote_sensing_image(24)
        imaging.load_image(conn, "earth", image)
        imaging.create_boxes_table(conn, "maskt", [(0, 0, 3, 3)])
        processor = imaging.ImageProcessor(conn, "earth")
        rows = processor.areas_of_interest_boxes("maskt").rows()
        assert len(rows) == 16
        assert all(v == image[x, y] for x, y, v in rows)


class TestBlobBaseline:
    def test_store_fetch_roundtrip(self, conn):
        store = BlobImageStore(conn)
        image = rasters.building_image(16)
        store.store("img", image)
        assert np.array_equal(store.fetch("img"), image)

    def test_operations_match_references(self, conn):
        store = BlobImageStore(conn)
        image = rasters.building_image(16)
        store.store("img", image)
        assert np.array_equal(
            store.edge_detect("img"), imaging.reference_edge_detect(image)
        )
        assert store.histogram("img") == imaging.reference_histogram(image)

    def test_update_writes_back(self, conn):
        store = BlobImageStore(conn)
        image = rasters.building_image(16)
        store.store("img", image)
        store.invert("img")
        assert np.array_equal(store.fetch("img"), imaging.reference_invert(image))

    def test_missing_blob(self, conn):
        store = BlobImageStore(conn)
        with pytest.raises(Exception):
            store.fetch("ghost")


class TestPgmExchange:
    def test_binary_roundtrip(self, tmp_path):
        image = rasters.remote_sensing_image(16)
        rasters.write_pgm(tmp_path / "x.pgm", image)
        assert np.array_equal(rasters.read_pgm(tmp_path / "x.pgm"), image)

    def test_ascii_roundtrip(self, tmp_path):
        image = rasters.checkerboard(8)
        rasters.write_pgm(tmp_path / "x.pgm", image, binary=False)
        assert np.array_equal(rasters.read_pgm(tmp_path / "x.pgm"), image)

    def test_load_pgm_into_database(self, tmp_path, conn):
        image = rasters.building_image(16)
        rasters.write_pgm(tmp_path / "b.pgm", image)
        loaded = rasters.read_pgm(tmp_path / "b.pgm")
        imaging.load_image(conn, "img", loaded)
        assert conn.execute("SELECT COUNT(*) FROM img").scalar() == 256
