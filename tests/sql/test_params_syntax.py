"""Lexing and parsing of bind-parameter markers (? and :name)."""

import pytest

from repro.errors import ParseError
from repro.sql import ast_nodes as ast
from repro.sql.lexer import tokenize
from repro.sql.parser import Parser, parse, parse_with_parameters
from repro.sql.tokens import TokenType


class TestLexer:
    def test_question_mark_token(self):
        tokens = tokenize("SELECT ? FROM t")
        assert TokenType.PARAM in [t.type for t in tokens]

    def test_colon_stays_a_separate_token(self):
        tokens = tokenize("[0:1:4]")
        assert [t.type for t in tokens[:6]] == [
            TokenType.LBRACKET,
            TokenType.INTEGER,
            TokenType.COLON,
            TokenType.INTEGER,
            TokenType.COLON,
            TokenType.INTEGER,
        ]


class TestPositional:
    def test_indexes_assigned_in_order(self):
        statement, keys = parse_with_parameters(
            "SELECT a FROM t WHERE a = ? AND b = ? OR c = ?"
        )
        assert keys == (0, 1, 2)

    def test_placeholder_node(self):
        statement, keys = parse_with_parameters("SELECT a FROM t WHERE a = ?")
        assert isinstance(statement.where.right, ast.Placeholder)
        assert statement.where.right.key == 0

    def test_in_values_row(self):
        statement, keys = parse_with_parameters(
            "INSERT INTO t VALUES (?, ?, 3)"
        )
        assert keys == (0, 1)
        assert statement.rows[0][0] == ast.Placeholder(0)
        assert statement.rows[0][2] == ast.Literal(3)

    def test_in_cell_reference_index(self):
        statement, keys = parse_with_parameters("SELECT m[x-?][y].v FROM m")
        assert keys == (0,)


class TestNamed:
    def test_named_keys(self):
        statement, keys = parse_with_parameters(
            "SELECT a FROM t WHERE a = :lo AND b = :hi"
        )
        assert keys == ("lo", "hi")

    def test_repeated_name(self):
        _, keys = parse_with_parameters(
            "SELECT a FROM t WHERE a = :v OR b = :v"
        )
        assert keys == ("v", "v")

    def test_mixing_styles_rejected(self):
        with pytest.raises(ParseError, match="mix"):
            parse("SELECT a FROM t WHERE a = ? AND b = :b")
        with pytest.raises(ParseError, match="mix"):
            parse("SELECT a FROM t WHERE a = :a AND b = ?")


class TestNoClashWithRangeSyntax:
    """The ``:`` of SciQL ranges and tiles must stay a separator."""

    def test_tile_group_by_still_parses(self):
        statement = parse(
            "SELECT [x], AVG(v) FROM m GROUP BY m[x:x+2][y:y+2]"
        )
        group = statement.group_by
        assert isinstance(group, ast.TileGroupBy)
        # the bound after ':' is an expression, not a named parameter
        assert isinstance(group.dimensions[0].high, ast.BinaryOp)

    def test_dimension_range_still_parses(self):
        statement = parse(
            "CREATE ARRAY a (x INT DIMENSION[0:1:4], v INT)"
        )
        assert statement.elements[0].dimension_range is not None

    def test_script_parser_collects_parameters(self):
        parser = Parser("SELECT ? ; SELECT 1")
        parser.parse_script()
        assert parser.parameters == [0]
